"""Lock-discipline rules (LK001-LK004) over the threaded modules.

The MVCC storage engine, the workflow engine's worker pool and the
service facade all rely on ``with self._lock`` discipline that nothing
verified until now.  From each class owning ``threading`` lock
attributes (see :class:`ClassInfo.locks`) these rules build:

* per-node *held-lock sets* from ``with self._lock:`` regions,
* a *lock-order graph* whose edges are "acquired B while holding A",
  including acquisitions reached transitively through resolved calls,
* per-function ``.acquire()`` / ``.release()`` inventories.

Lock identity is ``(class qualname, attribute)``: every instance of a
class shares the discipline even though instances have distinct lock
objects — a cycle between two *classes'* locks is exactly the ABBA
deadlock shape worth reporting.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.code.model import (
    ClassInfo,
    CodebaseState,
    FunctionInfo,
    iter_own_nodes,
)
from repro.analysis.registry import rule

__all__: list[str] = []

#: Calls that block (or take unbounded time) and should never run
#: while a lock is held.
_BLOCKING_CALLS = {"time.sleep", "open", "input"}
_BLOCKING_ROOTS = {"socket", "urllib", "requests", "http", "subprocess"}
_BLOCKING_BASENAMES = {"read_text", "read_bytes", "write_text",
                       "write_bytes", "urlopen"}

#: Methods where unguarded writes are fine: the instance is not yet
#: (or no longer) shared when they run.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__del__",
                         "__post_init__"}


def _with_lock_attr(item: ast.withitem, lock_attrs) -> str | None:
    """The lock attribute a ``with self.X:`` item acquires, if any."""
    expr = item.context_expr
    if isinstance(expr, ast.Attribute) and expr.attr in lock_attrs \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self":
        return expr.attr
    return None


class _MethodRegions:
    """Held-lock annotations for one method of a lock-owning class."""

    __slots__ = ("info", "klass", "nodes", "acquisitions")

    def __init__(self, info: FunctionInfo, klass: ClassInfo) -> None:
        self.info = info
        self.klass = klass
        #: every non-nested node paired with the locks held around it
        self.nodes: list[tuple[ast.AST, frozenset[str]]] = []
        #: (attr, with-node, locks held just before acquiring)
        self.acquisitions: list[tuple[str, ast.AST, frozenset[str]]] = []
        for statement in info.node.body:
            self._visit(statement, frozenset())

    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        self.nodes.append((node, held))
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                self._visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held)
                attr = _with_lock_attr(item, self.klass.locks)
                if attr is not None:
                    acquired.append(attr)
            for attr in acquired:
                self.acquisitions.append((attr, node, held))
                held = held | {attr}
            for statement in node.body:
                self._visit(statement, held)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


class _LockModel:
    """Whole-tree lock analysis shared by the LK rules."""

    def __init__(self, state: CodebaseState) -> None:
        self.state = state
        #: classes that own at least one lock attribute
        self.lock_classes = {
            qualname: klass for qualname, klass in state.classes.items()
            if klass.locks
        }
        #: method qualname -> its held-region annotations
        self.regions: dict[str, _MethodRegions] = {}
        #: function qualname -> directly acquired lock ids
        self.direct: dict[str, set[tuple[str, str]]] = {}
        self._closure_cache: dict[str, frozenset[tuple[str, str]]] = {}
        for klass in self.lock_classes.values():
            for method_qualname in klass.methods.values():
                info = state.functions.get(method_qualname)
                if info is None:
                    continue
                regions = _MethodRegions(info, klass)
                self.regions[method_qualname] = regions
                acquired = {(klass.qualname, attr)
                            for attr, _, _ in regions.acquisitions}
                for site in info.calls:
                    attr = self._acquire_attr(site, klass)
                    if attr is not None:
                        acquired.add((klass.qualname, attr))
                if acquired:
                    self.direct[method_qualname] = acquired
        #: call-node id -> CallSite, for held-region lookups
        self.sites: dict[int, object] = {}
        for regions in self.regions.values():
            for site in regions.info.calls:
                self.sites[id(site.node)] = site

    @staticmethod
    def _acquire_attr(site, klass: ClassInfo) -> str | None:
        if site.name != "acquire" or not site.dotted:
            return None
        parts = site.dotted.split(".")
        if len(parts) == 3 and parts[0] == "self" \
                and parts[1] in klass.locks:
            return parts[1]
        return None

    def lock_type(self, lock: tuple[str, str]) -> str:
        klass = self.state.classes.get(lock[0])
        if klass is None:
            return "plain"
        return klass.locks.get(lock[1], "plain")

    def all_locks(self, qualname: str) -> frozenset[tuple[str, str]]:
        """Locks acquired by ``qualname`` or anything it (transitively)
        calls, over the resolved static call graph."""
        cached = self._closure_cache.get(qualname)
        if cached is not None:
            return cached
        seen: set[str] = set()
        locks: set[tuple[str, str]] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            locks.update(self.direct.get(current, ()))
            info = self.state.functions.get(current)
            if info is None:
                continue
            frontier.extend(info.nested)
            for site in info.calls:
                frontier.extend(site.targets)
        result = frozenset(locks)
        for visited in seen:
            self._closure_cache.setdefault(visited, result)
        self._closure_cache[qualname] = result
        return result

    def sorted_regions(self) -> Iterator[_MethodRegions]:
        for qualname in sorted(self.regions):
            yield self.regions[qualname]


def _lock_model(state: CodebaseState, context: dict) -> _LockModel:
    cache = context.setdefault("_lock_models", {})
    model = cache.get(id(state))
    if model is None:
        model = _LockModel(state)
        cache[id(state)] = model
    return model


def _lock_label(lock: tuple[str, str]) -> str:
    class_qualname, attr = lock
    return f"{class_qualname.rsplit('/', 1)[-1].split('.')[-1]}.{attr}"


@rule("LK001", "code", "error",
      "lock-order cycle or non-reentrant re-acquisition")
def _lk001_lock_order(rule_obj, state: CodebaseState,
                      context) -> Iterator:
    model = _lock_model(state, context)
    # edge (held, acquired) -> first evidence (function, lineno)
    edges: dict[tuple[tuple[str, str], tuple[str, str]],
                tuple[FunctionInfo, int]] = {}

    def add_edge(held_lock, acquired_lock, info, lineno):
        if held_lock == acquired_lock:
            return
        edges.setdefault((held_lock, acquired_lock), (info, lineno))

    for regions in model.sorted_regions():
        info = regions.info
        owner = regions.klass.qualname
        # nested `with` acquisitions inside this method
        for attr, node, held_before in regions.acquisitions:
            acquired_lock = (owner, attr)
            if attr in held_before \
                    and model.lock_type(acquired_lock) == "plain":
                yield rule_obj.emit(
                    state.location(info),
                    f"{info.name!r} re-acquires non-reentrant lock "
                    f"{_lock_label(acquired_lock)} it already holds — "
                    "this self-deadlocks every time the path runs",
                    suggestion="use threading.RLock, or split the "
                               "locked region so the inner path is "
                               "called with the lock already held",
                    source=info.file.display,
                    line=node.lineno,
                )
            for held_attr in held_before:
                add_edge((owner, held_attr), acquired_lock, info,
                         node.lineno)
        # acquisitions reached through calls made while holding a lock
        for node, held in regions.nodes:
            if not held or not isinstance(node, ast.Call):
                continue
            site = model.sites.get(id(node))
            if site is None:
                continue
            for target in site.targets:
                for acquired_lock in sorted(model.all_locks(target)):
                    for held_attr in sorted(held):
                        held_lock = (owner, held_attr)
                        if acquired_lock == held_lock:
                            if model.lock_type(held_lock) == "plain":
                                yield rule_obj.emit(
                                    state.location(info),
                                    f"{info.name!r} holds non-reentrant "
                                    f"lock {_lock_label(held_lock)} "
                                    f"while calling "
                                    f"{target.rsplit('/', 1)[-1]!r}, "
                                    "which acquires it again — "
                                    "guaranteed self-deadlock",
                                    suggestion="use threading.RLock or "
                                               "an unlocked _locked "
                                               "variant of the callee",
                                    source=info.file.display,
                                    line=site.lineno,
                                )
                            continue
                        add_edge(held_lock, acquired_lock, info,
                                 site.lineno)
    # cycles: strongly connected components of the order graph
    graph: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for (held_lock, acquired_lock) in edges:
        graph.setdefault(held_lock, set()).add(acquired_lock)
        graph.setdefault(acquired_lock, set())
    for component in _cyclic_components(graph):
        labels = " <-> ".join(_lock_label(lock)
                              for lock in sorted(component))
        evidence = sorted(
            ((info, lineno)
             for (held_lock, acquired_lock), (info, lineno)
             in edges.items()
             if held_lock in component and acquired_lock in component),
            key=lambda pair: (pair[0].qualname, pair[1]))
        info, lineno = evidence[0]
        yield rule_obj.emit(
            f"code:{min(lock[0] for lock in component)}",
            f"lock-order cycle between {labels}: two threads taking "
            "these locks in opposite orders deadlock",
            suggestion="impose a global acquisition order (document "
                       "it) or collapse the locks into one",
            source=info.file.display,
            line=lineno,
        )


def _cyclic_components(graph: dict) -> list[frozenset]:
    """Tarjan SCC, returning only components that contain a cycle."""
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    counter = [0]
    components: list[frozenset] = []

    def strongconnect(node):
        # iterative Tarjan: (node, child iterator) frames
        frames = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while frames:
            current, children = frames[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    frames.append((child, iter(sorted(graph.get(child,
                                                                ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[current] = min(low[current], index[child])
            if advanced:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    components.append(frozenset(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


@rule("LK002", "code", "warning",
      "unguarded write to a lock-guarded attribute")
def _lk002_unguarded_writes(rule_obj, state: CodebaseState,
                            context) -> Iterator:
    model = _lock_model(state, context)
    # pass 1: which attributes does each class ever write under a lock?
    guarded: dict[str, set[str]] = {}
    for regions in model.sorted_regions():
        owner = regions.klass.qualname
        for node, held in regions.nodes:
            if not held:
                continue
            for attr in _self_attr_writes(node):
                if attr not in regions.klass.locks:
                    guarded.setdefault(owner, set()).add(attr)
    # pass 2: writes to those attributes outside any lock region
    for regions in model.sorted_regions():
        info = regions.info
        owner = regions.klass.qualname
        guarded_attrs = guarded.get(owner, set())
        if not guarded_attrs or info.name in _CONSTRUCTION_METHODS \
                or info.name.endswith("_locked"):
            continue
        seen: set[tuple[str, int]] = set()
        for node, held in regions.nodes:
            if held:
                continue
            for attr in _self_attr_writes(node):
                if attr not in guarded_attrs:
                    continue
                key = (attr, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield rule_obj.emit(
                    state.location(info),
                    f"{info.name!r} writes self.{attr} without holding "
                    "a lock, but other methods guard that attribute "
                    "with one — concurrent readers can observe torn "
                    "state",
                    suggestion="wrap the write in the same `with "
                               "self.<lock>:` region, or rename the "
                               "method with a _locked suffix if "
                               "callers always hold the lock",
                    source=info.file.display,
                    line=node.lineno,
                )


def _self_attr_writes(node: ast.AST) -> list[str]:
    """Attribute names written as ``self.X = ...`` (or aug/ann-assign)
    by exactly this node."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    attrs: list[str] = []
    for target in targets:
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            attrs.append(target.attr)
    return attrs


@rule("LK003", "code", "error",
      "lock acquired but not (always) released")
def _lk003_release_paths(rule_obj, state: CodebaseState,
                         context) -> Iterator:
    for info in state.sorted_functions():
        acquires: dict[str, int] = {}
        releases: set[str] = set()
        for site in info.calls:
            base = _lock_call_base(site, "acquire")
            if base is not None:
                acquires.setdefault(base, site.lineno)
            base = _lock_call_base(site, "release")
            if base is not None:
                releases.add(base)
        if not acquires:
            continue
        finally_released = _finally_released(info.node)
        class_released = _class_release_bases(state, info)
        for base, lineno in sorted(acquires.items()):
            if base in releases:
                if base in finally_released or info.name == "__enter__":
                    continue
                yield rule_obj.emit(
                    state.location(info),
                    f"{info.name!r} releases {base} on only some "
                    "paths: an exception between acquire() and "
                    "release() leaks the lock permanently",
                    suggestion="use `with` or move release() into a "
                               "try/finally",
                    severity="warning",
                    source=info.file.display,
                    line=lineno,
                )
            elif base in class_released or info.name == "__enter__":
                # cross-method protocol (e.g. an admission controller
                # releasing in a paired method) — cannot verify
                # statically, so stay quiet
                continue
            else:
                yield rule_obj.emit(
                    state.location(info),
                    f"{info.name!r} acquires {base} but never releases "
                    "it — every call permanently consumes the lock",
                    suggestion="release in a finally block, or use "
                               "`with`",
                    source=info.file.display,
                    line=lineno,
                )


def _lock_call_base(site, verb: str) -> str | None:
    if site.name != verb or not site.dotted:
        return None
    base = site.dotted[: -(len(verb) + 1)]
    if base.startswith("self.") or "." not in base:
        return base
    return None


def _finally_released(func_node: ast.AST) -> set[str]:
    released: set[str] = set()
    for node in iter_own_nodes(func_node):
        if not isinstance(node, ast.Try):
            continue
        for statement in node.finalbody:
            for sub in ast.walk(statement):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr == "release":
                    chain: list[str] = []
                    current: ast.expr = sub.func.value
                    while isinstance(current, ast.Attribute):
                        chain.insert(0, current.attr)
                        current = current.value
                    if isinstance(current, ast.Name):
                        chain.insert(0, current.id)
                        released.add(".".join(chain))
    return released


def _class_release_bases(state: CodebaseState,
                         info: FunctionInfo) -> set[str]:
    """Bases released by *other* methods of the same class."""
    if not info.class_qualname:
        return set()
    klass = state.classes.get(info.class_qualname)
    if klass is None:
        return set()
    released: set[str] = set()
    for method_qualname in klass.methods.values():
        if method_qualname == info.qualname:
            continue
        other = state.functions.get(method_qualname)
        if other is None:
            continue
        for site in other.calls:
            base = _lock_call_base(site, "release")
            if base is not None:
                released.add(base)
    return released


@rule("LK004", "code", "warning",
      "blocking call while holding a lock")
def _lk004_blocking_under_lock(rule_obj, state: CodebaseState,
                               context) -> Iterator:
    model = _lock_model(state, context)
    for regions in model.sorted_regions():
        info = regions.info
        for node, held in regions.nodes:
            if not held or not isinstance(node, ast.Call):
                continue
            site = model.sites.get(id(node))
            if site is None:
                continue
            dotted = site.dotted
            blocking = ""
            if dotted in _BLOCKING_CALLS:
                blocking = dotted
            elif dotted and dotted.split(".", 1)[0] in _BLOCKING_ROOTS:
                blocking = dotted
            elif site.name in _BLOCKING_BASENAMES:
                blocking = dotted or site.name
            if not blocking:
                continue
            held_labels = ", ".join(
                _lock_label((regions.klass.qualname, attr))
                for attr in sorted(held))
            yield rule_obj.emit(
                state.location(info),
                f"{info.name!r} calls {blocking}() while holding "
                f"{held_labels} — every other thread needing the lock "
                "stalls for the full I/O duration",
                suggestion="copy the needed state under the lock, then "
                           "perform the blocking call outside it",
                source=info.file.display,
                line=site.lineno,
            )
