"""Source loading for the code analyzers: files -> parsed modules.

The loader is the only component of ``repro.analysis.code`` that
touches the filesystem, and it only ever *reads*.  Parsed ASTs are
cached per ``(path, mtime_ns, size)`` so repeated analyses of an
unchanged tree (watch loops, the benchmark's warm pass, repeated CLI
invocations inside one process) skip re-parsing entirely.

Module names are derived structurally — walk up while the parent
directory holds an ``__init__.py`` — so a diagnostic's location
(``code:repro.storage.database/Database.insert``) is stable across
machines and invocation directories, which is what lets suppression
baselines be committed to the repository.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable

from repro.errors import AnalysisError

__all__ = ["SourceFile", "ModuleLoader", "default_loader"]


class SourceFile:
    """One parsed Python source file."""

    __slots__ = ("path", "display", "module", "text", "lines", "tree")

    def __init__(self, path: Path, display: str, module: str,
                 text: str, tree: ast.Module) -> None:
        self.path = path
        self.display = display
        self.module = module
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree

    def __repr__(self) -> str:
        return f"SourceFile({self.module}, {self.display})"

    def line(self, lineno: int) -> str:
        """The 1-based source line (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _module_name(path: Path) -> str:
    """Dotted module name from package structure (stem when bare)."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


class ModuleLoader:
    """Loads and caches parsed source files.

    The cache key is ``(resolved path, mtime_ns, size)``: an edited
    file re-parses, an unchanged one is returned as the *same*
    :class:`SourceFile` object — which is also what the no-mutation
    property tests lean on to catch an analyzer scribbling on a tree.
    """

    def __init__(self) -> None:
        self._cache: dict[Path, tuple[int, int, SourceFile]] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def load_file(self, path: str | Path,
                  display_root: str | Path | None = None) -> SourceFile:
        """Parse one ``.py`` file (or return its cached parse)."""
        path = Path(path)
        if path.suffix != ".py":
            raise AnalysisError(
                f"cannot analyze {path}: not a Python source file"
            )
        try:
            resolved = path.resolve()
            stat = resolved.stat()
        except OSError as error:
            raise AnalysisError(
                f"cannot analyze {path}: {error}"
            ) from None
        cached = self._cache.get(resolved)
        if cached is not None and cached[0] == stat.st_mtime_ns \
                and cached[1] == stat.st_size:
            return cached[2]
        try:
            text = resolved.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise AnalysisError(
                f"cannot analyze {path}: {error}"
            ) from None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            raise AnalysisError(
                f"cannot analyze {path}: {error.msg} "
                f"(line {error.lineno})"
            ) from None
        source = SourceFile(resolved, _display(resolved, display_root),
                            _module_name(resolved), text, tree)
        self._cache[resolved] = (stat.st_mtime_ns, stat.st_size, source)
        return source

    def load_paths(self, paths: Iterable[str | Path],
                   display_root: str | Path | None = None
                   ) -> list[SourceFile]:
        """Load files and directories (recursively), sorted by path.

        Raises :class:`AnalysisError` for a missing path, a non-Python
        file argument, or an unparseable source file — the CLI maps
        that to exit code 2 ("unreadable input"), matching the JSON
        lint contract.
        """
        files: list[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                found = sorted(
                    p for p in entry.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
                if not found:
                    raise AnalysisError(
                        f"cannot analyze {entry}: directory holds no "
                        "Python source files"
                    )
                files.extend(found)
            elif entry.is_file():
                files.append(entry)
            else:
                raise AnalysisError(f"cannot analyze {entry}: no such file")
        seen: set[Path] = set()
        sources: list[SourceFile] = []
        for path in files:
            source = self.load_file(path, display_root=display_root)
            if source.path in seen:
                continue
            seen.add(source.path)
            sources.append(source)
        sources.sort(key=lambda s: s.display)
        return sources


def _display(path: Path, root: str | Path | None) -> str:
    """A human-facing path: relative to ``root`` (default cwd) when
    possible, else absolute — only used for rendering, never for
    fingerprints."""
    base = Path(root) if root is not None else Path(os.getcwd())
    try:
        return path.relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


_DEFAULT_LOADER = ModuleLoader()


def default_loader() -> ModuleLoader:
    """The shared process-wide loader (and its AST cache)."""
    return _DEFAULT_LOADER
