"""The analyzed-codebase view the source-level rules run over.

:class:`CodebaseState` snapshots a set of parsed source files into
plain indices:

* every function/method with its lexical path and resolved call sites
  (a *static approximation*: plain names, ``self.method(...)``,
  imported names and ``Class(...)`` constructions resolve; attribute
  calls on arbitrary objects deliberately do not — under-approximating
  reachability keeps the determinism pass focused instead of flagging
  the whole tree);
* the processor-implementation roots the determinism pass starts from:
  functions passed to ``register_function(...)``, factory closures that
  ``return`` a nested ``run`` definition (the idiom of
  ``repro.workflow.builtins``), and the engine's worker entrypoint —
  split into *cacheable* roots (kinds never constructed with
  ``config={"cacheable": False}``, cf. ``workflow/engine.py``) and the
  wider *worker-executed* set;
* per-class lock inventories (``self._lock = threading.Lock()``-style
  assignments) for the lock-discipline pass;
* every literal telemetry counter name for the hygiene pass.

Like every other analyzer subject, the state is a read-only snapshot:
rules observe it and never mutate the ASTs behind it (pinned by the
property tests).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.code.loader import ModuleLoader, SourceFile, default_loader

__all__ = ["CallSite", "FunctionInfo", "ClassInfo", "CodebaseState",
           "dotted_name", "iter_own_nodes"]


def iter_own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Every descendant of ``node`` except nested function/class
    bodies — those own their findings (they are separate
    :class:`FunctionInfo` entries)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        yield from iter_own_nodes(child)

#: ``threading`` factories whose result counts as a lock attribute.
_LOCK_FACTORIES = {
    "threading.Lock": "plain",
    "threading.RLock": "reentrant",
    "threading.Condition": "reentrant",
    "threading.Semaphore": "plain",
    "threading.BoundedSemaphore": "plain",
}

#: Worker entrypoints: methods that run processor implementations on
#: pool threads (kept as suffix patterns so the engine can move files
#: without breaking the analyzer).
_WORKER_ENTRYPOINT_SUFFIXES = (
    "/WorkflowEngine._execute",
    "/WorkflowEngine._invoke",
)


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> str:
    """Canonical dotted name of a ``Name``/``Attribute`` chain.

    The chain's head is substituted through the module's import
    aliases, so ``dt.now`` under ``from datetime import datetime as
    dt`` canonicalises to ``datetime.datetime.now``.  Chains rooted in
    anything but a plain name (a call result, a subscript) return
    ``""``.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.insert(0, current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    parts.insert(0, current.id)
    head = parts[0]
    if head in aliases:
        parts[0:1] = aliases[head].split(".")
    return ".".join(parts)


class CallSite:
    """One call expression inside a function."""

    __slots__ = ("node", "lineno", "kind", "name", "dotted", "targets")

    def __init__(self, node: ast.Call, kind: str, name: str,
                 dotted: str) -> None:
        self.node = node
        self.lineno = node.lineno
        self.kind = kind          # "name" | "self" | "attr" | "opaque"
        self.name = name          # basename of the callee
        self.dotted = dotted      # canonical dotted chain ("" if none)
        self.targets: tuple[str, ...] = ()  # resolved function qualnames

    def __repr__(self) -> str:
        return f"CallSite({self.dotted or self.name} @{self.lineno})"


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("qualname", "name", "file", "node", "defpath",
                 "class_qualname", "nested", "calls", "lineno")

    def __init__(self, file: SourceFile, node: ast.AST,
                 defpath: tuple[str, ...], class_qualname: str) -> None:
        self.file = file
        self.node = node
        self.defpath = defpath
        self.name = defpath[-1]
        self.qualname = f"{file.module}/{'.'.join(defpath)}"
        self.class_qualname = class_qualname
        self.nested: list[str] = []
        self.calls: list[CallSite] = []
        self.lineno = node.lineno

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class definition, with its lock inventory."""

    __slots__ = ("qualname", "name", "file", "node", "methods",
                 "locks", "bases", "lineno")

    def __init__(self, file: SourceFile, node: ast.ClassDef,
                 defpath: tuple[str, ...]) -> None:
        self.file = file
        self.node = node
        self.name = node.name
        self.qualname = f"{file.module}/{'.'.join(defpath)}"
        self.methods: dict[str, str] = {}   # method name -> func qualname
        self.locks: dict[str, str] = {}     # attr -> "plain" | "reentrant"
        self.bases: list[str] = []          # dotted base names
        self.lineno = node.lineno

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname}, locks={sorted(self.locks)})"


class _Registration:
    """A processor registration observed somewhere in the tree."""

    __slots__ = ("kind", "target", "scope", "file")

    def __init__(self, kind: str | None, target: str,
                 scope: tuple[str, ...], file: SourceFile) -> None:
        self.kind = kind      # literal kind string, if any
        self.target = target  # bare name of the registered function
        self.scope = scope    # defpath of the registering call site
        self.file = file


class _FileIndex:
    """Everything one walk of one file contributes to the state."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        self.aliases: dict[str, str] = {}
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        self.module_globals: set[str] = set()
        self.registrations: list[_Registration] = []
        self.factory_kinds: dict[str, str] = {}  # factory name -> kind
        self.opted_out_kinds: set[str] = set()
        self.counters: list[tuple[str, int]] = []  # (name, lineno)


def _index_file(file: SourceFile) -> _FileIndex:
    index = _FileIndex(file)
    _walk(file.tree.body, (), None, None, index)
    return index


def _walk(statements: Iterable[ast.stmt], defpath: tuple[str, ...],
          function: FunctionInfo | None, klass: ClassInfo | None,
          index: _FileIndex) -> None:
    """Recursive indexing walk; ``function`` is the innermost enclosing
    function, ``klass`` the class whose ``self`` is in scope (passed
    through method bodies so lock assignments attribute correctly)."""
    for statement in statements:
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            _record_import(statement, index)
            continue
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_path = defpath + (statement.name,)
            immediate_class = (klass.qualname
                               if klass is not None
                               and defpath == tuple(
                                   klass.qualname.split("/", 1)[1].split("."))
                               else "")
            info = FunctionInfo(index.file, statement, child_path,
                                immediate_class)
            index.functions.append(info)
            if function is not None:
                function.nested.append(info.qualname)
            if immediate_class and klass is not None:
                klass.methods.setdefault(statement.name, info.qualname)
            for decorator in statement.decorator_list:
                _scan_node(decorator, function, index, defpath)
            _walk(statement.body, child_path, info, klass, index)
            continue
        if isinstance(statement, ast.ClassDef):
            child_path = defpath + (statement.name,)
            info = ClassInfo(index.file, statement, child_path)
            info.bases = [dotted_name(base, index.aliases)
                          for base in statement.bases]
            index.classes.append(info)
            _walk(statement.body, child_path, function, info, index)
            continue
        if not defpath and isinstance(statement, (ast.Assign, ast.AnnAssign)):
            _record_module_assignment(statement, index)
        if klass is not None and function is not None:
            _record_lock_assignment(statement, klass, index)
        _scan_node(statement, function, index, defpath)


def _record_import(statement: ast.stmt, index: _FileIndex) -> None:
    if isinstance(statement, ast.Import):
        for alias in statement.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else bound
            index.aliases[bound] = target
    elif isinstance(statement, ast.ImportFrom):
        if statement.module is None or statement.level:
            return  # relative imports stay unresolved
        for alias in statement.names:
            bound = alias.asname or alias.name
            index.aliases[bound] = f"{statement.module}.{alias.name}"


def _record_module_assignment(statement: ast.stmt,
                              index: _FileIndex) -> None:
    targets = (statement.targets if isinstance(statement, ast.Assign)
               else [statement.target])
    for target in targets:
        if isinstance(target, ast.Name):
            index.module_globals.add(target.id)
    # dict-literal registration: {"kind": _factory, ...} at module level
    value = getattr(statement, "value", None)
    if isinstance(value, ast.Dict):
        for key, entry in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                    and isinstance(entry, ast.Name):
                index.factory_kinds.setdefault(entry.id, key.value)


def _record_lock_assignment(statement: ast.stmt, klass: ClassInfo,
                            index: _FileIndex) -> None:
    if not isinstance(statement, ast.Assign):
        return
    if not isinstance(statement.value, ast.Call):
        return
    factory = dotted_name(statement.value.func, index.aliases)
    lock_kind = _LOCK_FACTORIES.get(factory)
    if lock_kind is None:
        return
    for target in statement.targets:
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            klass.locks[target.attr] = lock_kind


def _scan_node(node: ast.AST, function: FunctionInfo | None,
               index: _FileIndex, scope: tuple[str, ...]) -> None:
    """Record call sites/registrations below ``node``, stopping at
    nested def/class boundaries (those are walked separately and own
    their calls).  Handles every container shape — ``withitem``,
    ``ExceptHandler``, comprehensions, lambdas — via generic child
    iteration."""
    if isinstance(node, ast.Call):
        site = _call_site(node, index.aliases)
        if function is not None:
            function.calls.append(site)
        _record_registration(node, site, index, scope)
        _record_counter(node, site, index)
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        _scan_node(child, function, index, scope)


def _call_site(node: ast.Call, aliases: dict[str, str]) -> CallSite:
    func = node.func
    if isinstance(func, ast.Name):
        dotted = dotted_name(func, aliases)
        return CallSite(node, "name", func.id, dotted)
    if isinstance(func, ast.Attribute):
        dotted = dotted_name(func, aliases)
        if dotted.startswith("self.") and dotted.count(".") == 1:
            return CallSite(node, "self", func.attr, dotted)
        return CallSite(node, "attr", func.attr, dotted)
    return CallSite(node, "opaque", "", "")


def _record_registration(node: ast.Call, site: CallSite,
                         index: _FileIndex,
                         scope: tuple[str, ...]) -> None:
    if site.name == "register_function" and len(node.args) >= 2 \
            and isinstance(node.args[1], ast.Name):
        kind = None
        if isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            kind = node.args[0].value
        index.registrations.append(_Registration(
            kind, node.args[1].id, scope, index.file))
    elif site.kind == "attr" and site.name == "register" \
            and len(node.args) >= 2 \
            and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str) \
            and isinstance(node.args[1], ast.Name):
        index.registrations.append(_Registration(
            node.args[0].value, node.args[1].id, scope, index.file))
    if site.name == "Processor":
        _record_processor_construction(node, index)


def _record_processor_construction(node: ast.Call,
                                   index: _FileIndex) -> None:
    kind: str | None = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
            and isinstance(node.args[1].value, str):
        kind = node.args[1].value
    config: ast.expr | None = None
    for keyword in node.keywords:
        if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant) \
                and isinstance(keyword.value.value, str):
            kind = keyword.value.value
        elif keyword.arg == "config":
            config = keyword.value
    if kind is None or not isinstance(config, ast.Dict):
        return
    for key, value in zip(config.keys, config.values):
        if isinstance(key, ast.Constant) and key.value == "cacheable" \
                and isinstance(value, ast.Constant) \
                and value.value is False:
            index.opted_out_kinds.add(kind)


def _record_counter(node: ast.Call, site: CallSite,
                    index: _FileIndex) -> None:
    if site.kind != "attr" or site.name != "counter":
        return
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        index.counters.append((node.args[0].value, node.lineno))


class CodebaseState:
    """Read-only snapshot of an analyzed source tree."""

    def __init__(self, files: list[SourceFile]) -> None:
        self.files = files
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.aliases: dict[str, dict[str, str]] = {}
        self.module_globals: dict[str, set[str]] = {}
        #: implementation qualname -> processor kind (or None if unknown)
        self.implementations: dict[str, str | None] = {}
        self.opted_out_kinds: set[str] = set()
        #: counter name -> list of (module, display, lineno) use sites
        self.counters_used: dict[str, list[tuple[str, str, int]]] = {}
        #: string literals of ``telemetry.report``-style modules
        self.documented_strings: set[str] = set()
        self.has_report_module = False
        self.cacheable_reachable: set[str] = set()
        self.worker_reachable: set[str] = set()
        self.call_edges = 0
        self._build()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_paths(cls, paths: Iterable[str],
                   loader: ModuleLoader | None = None,
                   display_root: str | None = None) -> "CodebaseState":
        loader = loader if loader is not None else default_loader()
        return cls(loader.load_paths(paths, display_root=display_root))

    def _build(self) -> None:
        indices = [_index_file(file) for file in self.files]
        registrations: list[_Registration] = []
        factory_kinds: dict[str, str] = {}
        for index in indices:
            module = index.file.module
            self.aliases[module] = index.aliases
            self.module_globals[module] = index.module_globals
            self.opted_out_kinds.update(index.opted_out_kinds)
            registrations.extend(index.registrations)
            for name, kind in index.factory_kinds.items():
                factory_kinds.setdefault(f"{module}/{name}", kind)
            for info in index.functions:
                self.functions[info.qualname] = info
            for info in index.classes:
                self.classes[info.qualname] = info
            for name, lineno in index.counters:
                self.counters_used.setdefault(name, []).append(
                    (module, index.file.display, lineno))
            if module.endswith("telemetry.report"):
                self.has_report_module = True
                for node in ast.walk(index.file.tree):
                    if isinstance(node, ast.Constant) \
                            and isinstance(node.value, str):
                        self.documented_strings.add(node.value)
        self._resolve_calls()
        self._collect_implementations(registrations, factory_kinds)
        self._compute_reachability()

    # -- call resolution ------------------------------------------------

    def _lookup_scoped(self, module: str, scope: tuple[str, ...],
                       name: str) -> str | None:
        """Resolve a bare name lexically: innermost enclosing scope
        first, then module level."""
        for depth in range(len(scope), -1, -1):
            prefix = ".".join(scope[:depth] + (name,))
            qualname = f"{module}/{prefix}"
            if qualname in self.functions or qualname in self.classes:
                return qualname
        return None

    def _resolve_symbol(self, module: str, scope: tuple[str, ...],
                        name: str) -> str | None:
        """A bare name to a function/class qualname (imports included)."""
        local = self._lookup_scoped(module, scope, name)
        if local is not None:
            return local
        target = self.aliases.get(module, {}).get(name)
        if target is None or "." not in target:
            return None
        target_module, symbol = target.rsplit(".", 1)
        qualname = f"{target_module}/{symbol}"
        if qualname in self.functions or qualname in self.classes:
            return qualname
        return None

    def _as_function_targets(self, qualname: str | None) -> tuple[str, ...]:
        if qualname is None:
            return ()
        if qualname in self.functions:
            return (qualname,)
        klass = self.classes.get(qualname)
        if klass is not None:
            init = klass.methods.get("__init__")
            if init is not None:
                return (init,)
        return ()

    def _method_in_hierarchy(self, klass: ClassInfo,
                             method: str) -> str | None:
        seen: set[str] = set()
        frontier = [klass]
        while frontier:
            current = frontier.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            module = current.file.module
            for base in current.bases:
                if not base:
                    continue
                resolved = self._resolve_symbol(module, (), base.split(".")[0])
                if resolved is None and "." in base:
                    head, rest = base.split(".", 1)
                    target = self.aliases.get(module, {}).get(head, head)
                    resolved = f"{target}/{rest}" \
                        if f"{target}/{rest}" in self.classes else None
                base_class = self.classes.get(resolved) \
                    if resolved is not None else None
                if base_class is not None:
                    frontier.append(base_class)
        return None

    def _resolve_calls(self) -> None:
        for info in self.functions.values():
            module = info.file.module
            for site in info.calls:
                targets: tuple[str, ...] = ()
                if site.kind == "name":
                    targets = self._as_function_targets(
                        self._resolve_symbol(module, info.defpath, site.name))
                elif site.kind == "self" and info.class_qualname:
                    klass = self.classes.get(info.class_qualname)
                    if klass is not None:
                        found = self._method_in_hierarchy(klass, site.name)
                        if found is not None:
                            targets = (found,)
                elif site.kind == "attr" and site.dotted \
                        and not site.dotted.startswith("self."):
                    head, _, rest = site.dotted.partition(".")
                    resolved_head = self.aliases.get(module, {}).get(head)
                    if resolved_head and rest:
                        qualname = f"{resolved_head}/{rest}"
                        if qualname in self.functions:
                            targets = (qualname,)
                        elif qualname in self.classes:
                            targets = self._as_function_targets(qualname)
                        else:
                            parent, _, method = rest.rpartition(".")
                            class_qual = f"{resolved_head}/{parent}"
                            klass = self.classes.get(class_qual)
                            if klass is not None \
                                    and method in klass.methods:
                                targets = (klass.methods[method],)
                site.targets = targets
                self.call_edges += len(targets)

    # -- determinism roots ---------------------------------------------

    def _collect_implementations(self, registrations: list[_Registration],
                                 factory_kinds: dict[str, str]) -> None:
        # 1. explicit register_function / .register(kind, fn) calls
        for registration in registrations:
            module = registration.file.module
            qualname = self._lookup_scoped(module, registration.scope,
                                           registration.target)
            if qualname is None or qualname not in self.functions:
                continue
            kind = registration.kind
            implementation = self._factory_payload(qualname)
            if implementation is not None:
                # a factory was registered: the nested closure is the
                # worker-executed code
                self.implementations.setdefault(implementation, kind)
            else:
                self.implementations.setdefault(qualname, kind)
        # 2. the builtin idiom: module-level dict {"kind": _factory}
        for factory_qualname, kind in factory_kinds.items():
            implementation = self._factory_payload(factory_qualname)
            if implementation is not None:
                self.implementations.setdefault(implementation, kind)

    def _factory_payload(self, qualname: str) -> str | None:
        """The nested function a factory returns (``def run...; return
        run``), if this function follows the factory idiom."""
        info = self.functions.get(qualname)
        if info is None:
            return None
        nested_by_name = {
            self.functions[q].name: q for q in info.nested
            if q in self.functions
        }
        if not nested_by_name:
            return None
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in nested_by_name:
                return nested_by_name[node.value.id]
        return None

    def _compute_reachability(self) -> None:
        cacheable_roots = [
            qualname for qualname, kind in self.implementations.items()
            if kind is None or kind not in self.opted_out_kinds
        ]
        worker_roots = list(self.implementations)
        for qualname in self.functions:
            if qualname.endswith(_WORKER_ENTRYPOINT_SUFFIXES):
                worker_roots.append(qualname)
        self.cacheable_reachable = self._closure(cacheable_roots)
        self.worker_reachable = self._closure(worker_roots)

    def _closure(self, roots: Iterable[str]) -> set[str]:
        seen: set[str] = set()
        frontier = list(roots)
        while frontier:
            qualname = frontier.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            info = self.functions.get(qualname)
            if info is None:
                continue
            frontier.extend(info.nested)
            for site in info.calls:
                frontier.extend(site.targets)
        return seen

    # -- iteration helpers ---------------------------------------------

    def functions_in(self, qualnames: set[str]) -> Iterator[FunctionInfo]:
        """The named functions, in deterministic qualname order."""
        for qualname in sorted(qualnames):
            info = self.functions.get(qualname)
            if info is not None:
                yield info

    def sorted_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def sorted_classes(self) -> Iterator[ClassInfo]:
        for qualname in sorted(self.classes):
            yield self.classes[qualname]

    def kind_of(self, qualname: str) -> str | None:
        return self.implementations.get(qualname)

    def enclosing_function(self, file: SourceFile,
                           lineno: int) -> FunctionInfo | None:
        """The innermost function containing ``lineno`` of ``file``
        (None for module-level code)."""
        best: FunctionInfo | None = None
        for info in self.functions.values():
            if info.file is not file:
                continue
            end = getattr(info.node, "end_lineno", None) or info.lineno
            if info.lineno <= lineno <= end:
                if best is None or info.lineno >= best.lineno:
                    best = info
        return best

    def location(self, info: FunctionInfo | ClassInfo) -> str:
        return f"code:{info.qualname}"

    def __repr__(self) -> str:
        return (f"CodebaseState({len(self.files)} files, "
                f"{len(self.functions)} functions, "
                f"{self.call_edges} call edges)")
