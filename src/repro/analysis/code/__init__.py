"""Source-level static analysis: the ``code`` rule family.

Where the other analyzers lint *data* (workflow documents, OPM graphs,
schemas, vault manifests), this subpackage lints the *source code*
that produces them — the determinism of cacheable processor
implementations (DET), the lock discipline of the threaded modules
(LK), and error-handling/telemetry hygiene (HY).  It is pure standard
library: ``ast`` + ``tokenize``, no new dependencies.

Importing this package registers the DET/LK/HY rules with the shared
default registry, exactly like the data-shape rule modules.
"""

from repro.analysis.code.loader import ModuleLoader, SourceFile, default_loader
from repro.analysis.code.model import CodebaseState

# Importing the rule modules registers their rules.
from repro.analysis.code import det_rules  # noqa: F401 - import registers rules
from repro.analysis.code import lock_rules  # noqa: F401 - import registers rules
from repro.analysis.code import hygiene_rules  # noqa: F401 - import registers rules

__all__ = [
    "ModuleLoader",
    "SourceFile",
    "default_loader",
    "CodebaseState",
]
