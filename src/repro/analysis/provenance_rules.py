"""Provenance rules (PR0xx): defects in OPM graphs.

Rules run on a :class:`GraphState` — a lenient, read-only view of an
OPM graph.  Leniency matters: :class:`~repro.provenance.opm.OPMGraph`
refuses to *construct* a dangling edge, but serialized provenance
arriving from elsewhere (an exchange partner, a damaged archive) can
carry one, and the linter's job is to describe the damage rather than
crash on it.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, rule
from repro.provenance.opm import EDGE_KINDS, OPMGraph

__all__ = ["GraphState"]


class _EdgeView:
    """One edge of a :class:`GraphState` (kind, effect, cause, role)."""

    __slots__ = ("kind", "effect", "cause", "role")

    def __init__(self, kind: str, effect: str, cause: str,
                 role: str = "") -> None:
        self.kind = kind
        self.effect = effect
        self.cause = cause
        self.role = role

    def __repr__(self) -> str:
        return f"_EdgeView({self.effect} -{self.kind}-> {self.cause})"


class GraphState:
    """A read-only snapshot of an OPM graph for the provenance rules.

    ``nodes`` maps node id to kind; ``annotations`` maps node id to its
    annotation dict (shallow copies — rules must not mutate the graph
    they analyze, and this view makes that structural).
    """

    def __init__(self, graph_id: str, nodes: Mapping[str, str],
                 edges: list[_EdgeView],
                 annotations: Mapping[str, Mapping[str, Any]],
                 labels: Mapping[str, str]) -> None:
        self.id = graph_id
        self.nodes = dict(nodes)
        self.edges = list(edges)
        self.annotations = {k: dict(v) for k, v in annotations.items()}
        self.labels = dict(labels)

    def __repr__(self) -> str:
        return (
            f"GraphState({self.id}, {len(self.nodes)} nodes, "
            f"{len(self.edges)} edges)"
        )

    @classmethod
    def from_graph(cls, graph: OPMGraph) -> "GraphState":
        return cls(
            graph.id,
            {node.id: node.kind for node in graph.nodes()},
            [_EdgeView(e.kind, e.effect, e.cause, e.role)
             for e in graph.edges()],
            {node.id: node.annotations for node in graph.nodes()},
            {node.id: node.label for node in graph.nodes()},
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphState":
        """Lenient load: dangling edges and odd kinds are preserved for
        the rules to report, never rejected."""
        nodes: dict[str, str] = {}
        annotations: dict[str, dict[str, Any]] = {}
        labels: dict[str, str] = {}
        for node in data.get("nodes", ()):
            node_id = str(node.get("id", ""))
            if not node_id:
                continue
            nodes[node_id] = str(node.get("kind", "artifact"))
            annotations[node_id] = dict(node.get("annotations") or {})
            labels[node_id] = str(node.get("label", node_id))
        edges = [
            _EdgeView(str(edge.get("kind", "")),
                      str(edge.get("effect", "")),
                      str(edge.get("cause", "")),
                      str(edge.get("role", "")))
            for edge in data.get("edges", ())
        ]
        return cls(str(data.get("id", "opm")), nodes, edges,
                   annotations, labels)

    # -- helpers used by the rules -------------------------------------

    def artifacts(self) -> list[str]:
        return sorted(n for n, kind in self.nodes.items()
                      if kind == "artifact")

    def edges_of_kind(self, kind: str) -> list[_EdgeView]:
        return [edge for edge in self.edges if edge.kind == kind]

    def is_migration_process(self, node_id: str) -> bool:
        if self.nodes.get(node_id) != "process":
            return False
        notes = self.annotations.get(node_id, {})
        return ("to_format" in notes
                or self.labels.get(node_id) == "format migration")


def _loc(state: GraphState, *parts: str) -> str:
    return "/".join((f"graph:{state.id}",) + parts)


@rule("PR001", "provenance", "error",
      "provenance graph contains a causal cycle")
def _provenance_cycle(self: Rule, state: GraphState,
                      context: dict) -> Iterator[Diagnostic]:
    # Kahn over effect -> cause edges; leftovers are cyclic.
    successors: dict[str, set[str]] = {n: set() for n in state.nodes}
    indegree = {n: 0 for n in state.nodes}
    for edge in state.edges:
        if edge.effect not in state.nodes or edge.cause not in state.nodes:
            continue  # PR003's business
        if edge.cause not in successors[edge.effect]:
            successors[edge.effect].add(edge.cause)
            indegree[edge.cause] += 1
    ready = [n for n, degree in indegree.items() if degree == 0]
    visited = 0
    while ready:
        current = ready.pop()
        visited += 1
        for cause in successors[current]:
            indegree[cause] -= 1
            if indegree[cause] == 0:
                ready.append(cause)
    if visited != len(state.nodes):
        cyclic = sorted(n for n, degree in indegree.items() if degree > 0)
        yield self.emit(
            _loc(state),
            "causal cycle involving "
            + ", ".join(cyclic[:6])
            + ("…" if len(cyclic) > 6 else ""),
            suggestion="OPM graphs describe past executions and must "
            "be acyclic",
        )


@rule("PR002", "provenance", "warning",
      "artifact participates in no causal edge")
def _orphan_artifact(self: Rule, state: GraphState,
                     context: dict) -> Iterator[Diagnostic]:
    touched: set[str] = set()
    for edge in state.edges:
        touched.add(edge.effect)
        touched.add(edge.cause)
    for artifact in state.artifacts():
        if artifact not in touched:
            yield self.emit(
                _loc(state, f"artifact:{artifact}"),
                f"artifact {artifact!r} has no generating process and "
                "no consumer — it is causally disconnected",
                suggestion="record wasGeneratedBy/used edges or drop "
                "the node",
            )


@rule("PR003", "provenance", "error",
      "edge endpoint references a node absent from the graph")
def _dangling_endpoint(self: Rule, state: GraphState,
                       context: dict) -> Iterator[Diagnostic]:
    for index, edge in enumerate(state.edges):
        for end, node_id in (("effect", edge.effect),
                             ("cause", edge.cause)):
            if node_id not in state.nodes:
                yield self.emit(
                    _loc(state, f"edge:{index}"),
                    f"{edge.kind} edge {end} {node_id!r} is not a node "
                    "of this graph",
                    suggestion="add the node or remove the edge",
                )


@rule("PR004", "provenance", "error",
      "migrated artifact lacks a wasDerivedFrom account")
def _missing_derivation(self: Rule, state: GraphState,
                        context: dict) -> Iterator[Diagnostic]:
    derived_from = {edge.effect for edge in
                    state.edges_of_kind("wasDerivedFrom")}
    for process_id in sorted(state.nodes):
        if not state.is_migration_process(process_id):
            continue
        generated = sorted(
            edge.effect for edge in state.edges_of_kind("wasGeneratedBy")
            if edge.cause == process_id
        )
        for artifact in generated:
            if artifact not in derived_from:
                yield self.emit(
                    _loc(state, f"artifact:{artifact}"),
                    f"artifact {artifact!r} was generated by migration "
                    f"process {process_id!r} but carries no "
                    "wasDerivedFrom link to its source",
                    suggestion="record wasDerivedFrom(derived, source) "
                    "so the lineage survives replica churn",
                )


@rule("PR005", "provenance", "error",
      "edge connects node kinds the OPM spec does not allow")
def _edge_kind_mismatch(self: Rule, state: GraphState,
                        context: dict) -> Iterator[Diagnostic]:
    for index, edge in enumerate(state.edges):
        expected = EDGE_KINDS.get(edge.kind)
        if expected is None:
            yield self.emit(
                _loc(state, f"edge:{index}"),
                f"unknown edge kind {edge.kind!r}",
                suggestion="use one of " + ", ".join(sorted(EDGE_KINDS)),
            )
            continue
        effect_kind, cause_kind = expected
        for end, node_id, wanted in (("effect", edge.effect, effect_kind),
                                     ("cause", edge.cause, cause_kind)):
            actual = state.nodes.get(node_id)
            if actual is not None and actual != wanted:
                yield self.emit(
                    _loc(state, f"edge:{index}"),
                    f"{edge.kind} requires a {wanted} {end} but "
                    f"{node_id!r} is a {actual}",
                    suggestion="fix the edge kind or the node kind",
                )
