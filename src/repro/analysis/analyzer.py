"""The analyzer facade: run rule families over in-memory objects.

:class:`Analyzer` is the one entry point: it owns a (copied) rule
registry, an optional suppression :class:`~repro.analysis.registry.Baseline`
and a telemetry sink, and exposes one ``analyze_*`` method per subject
kind plus :meth:`analyze_bundle` for composite lint documents.

Every pass is purely observational — subjects are snapshotted into
read-only views (:class:`GraphState`, :class:`SchemaSet`,
:class:`VaultState`) or traversed without mutation, a property pinned
by the test suite.

Telemetry: each family run increments ``analysis_runs_total{family=}``;
each surviving diagnostic increments
``analysis_diagnostics_total{rule=,severity=}``; baseline-suppressed
findings land in ``analysis_suppressed_total``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.provenance_rules import GraphState
from repro.analysis.registry import Baseline, RuleRegistry, default_registry
from repro.analysis.storage_rules import SchemaSet
from repro.analysis.store_rules import StoreState
from repro.analysis.vault_rules import DEFAULT_HORIZON_YEAR, VaultState
from repro.analysis.workflow_rules import workflow_context
from repro.errors import AnalysisError
from repro.provenance.opm import OPMGraph
from repro.workflow.model import Workflow

__all__ = ["Analyzer", "sniff_document"]


def sniff_document(document: Mapping[str, Any]) -> str:
    """Classify a JSON document: ``bundle``, ``workflow`` or ``graph``.

    A *bundle* carries any of the composite keys (``workflow``,
    ``workflows``, ``graph``, ``graphs``, ``tables``, ``vault``); a
    bare workflow document has ``processors``/``links``; a bare OPM
    document has ``nodes``/``edges``.
    """
    bundle_keys = {"workflow", "workflows", "graph", "graphs",
                   "tables", "vault", "provstore"}
    if bundle_keys & set(document):
        return "bundle"
    if "processors" in document or "links" in document:
        return "workflow"
    if "nodes" in document or "edges" in document:
        return "graph"
    raise AnalysisError(
        "unrecognised lint document: expected a bundle "
        "(workflow/graph/tables/vault keys), a workflow document "
        "(processors/links) or an OPM document (nodes/edges)"
    )


class Analyzer:
    """Runs enabled rules of each family over analyzable subjects.

    Parameters
    ----------
    registry:
        Rule registry; a copy of the default when omitted, so
        enable/disable on :attr:`registry` stays local to this
        analyzer.
    telemetry:
        Metrics sink; the process-wide default when omitted.
    baseline:
        Optional suppression baseline applied to every pass.
    """

    def __init__(self, registry: RuleRegistry | None = None,
                 telemetry: Any | None = None,
                 baseline: Baseline | None = None) -> None:
        self.registry = (registry.copy() if registry is not None
                         else default_registry().copy())
        if telemetry is None:
            from repro.telemetry import get_telemetry
            telemetry = get_telemetry()
        self.telemetry = telemetry
        self.baseline = baseline

    # ------------------------------------------------------------------
    # core pass
    # ------------------------------------------------------------------

    def _run_family(self, family: str, subject: Any,
                    context: dict) -> AnalysisReport:
        metrics = self.telemetry.metrics
        metrics.counter("analysis_runs_total", family=family).inc()
        report = AnalysisReport()
        report.families_run.append(family)
        for rule in self.registry.enabled_rules(family):
            for diagnostic in rule.run(subject, context):
                if self.baseline is not None \
                        and self.baseline.suppresses(diagnostic):
                    report.suppressed += 1
                    metrics.counter("analysis_suppressed_total").inc()
                    continue
                report.diagnostics.append(diagnostic)
                metrics.counter("analysis_diagnostics_total",
                                rule=diagnostic.rule_id,
                                severity=diagnostic.severity).inc()
        return report

    # ------------------------------------------------------------------
    # per-subject passes
    # ------------------------------------------------------------------

    def analyze_workflow(self, workflow: Workflow,
                         processor_registry: Any = None,
                         dimensions: Any = None) -> AnalysisReport:
        """Run the workflow rules on one workflow definition."""
        context = workflow_context(processor_registry, dimensions)
        return self._run_family("workflow", workflow, context)

    def analyze_graph(self,
                      graph: OPMGraph | GraphState) -> AnalysisReport:
        """Run the provenance rules on one OPM graph (or state view)."""
        state = (graph if isinstance(graph, GraphState)
                 else GraphState.from_graph(graph))
        return self._run_family("provenance", state, {})

    def analyze_storage(self,
                        database: Any | SchemaSet) -> AnalysisReport:
        """Run the storage rules on a database (or schema snapshot)."""
        schemas = (database if isinstance(database, SchemaSet)
                   else SchemaSet.from_database(database))
        return self._run_family("storage", schemas, {})

    def analyze_store(self,
                      store: Any | StoreState) -> AnalysisReport:
        """Run the provenance-store rules on an archival store (or
        state snapshot)."""
        state = (store if isinstance(store, StoreState)
                 else StoreState.from_store(store))
        return self._run_family("provstore", state, {})

    def analyze_vault(self, vault: Any | VaultState,
                      horizon_year: int = DEFAULT_HORIZON_YEAR
                      ) -> AnalysisReport:
        """Run the vault rules on a vault (or state snapshot)."""
        state = (vault if isinstance(vault, VaultState)
                 else VaultState.from_vault(vault,
                                            horizon_year=horizon_year))
        return self._run_family("vault", state, {})

    def analyze_code(self, subject: Any,
                     display_root: str | None = None) -> AnalysisReport:
        """Run the source-code rules (DET/LK/HY families).

        ``subject`` is either a prepared
        :class:`~repro.analysis.code.CodebaseState` or an iterable of
        paths (files and/or directories) to load.  Unreadable paths
        raise :class:`~repro.errors.AnalysisError` — the CLI maps that
        to exit code 2.
        """
        from repro.analysis.code import CodebaseState
        if isinstance(subject, CodebaseState):
            state = subject
        else:
            paths = ([subject] if isinstance(subject, (str, Path))
                     else list(subject))
            state = CodebaseState.from_paths(paths,
                                             display_root=display_root)
        metrics = self.telemetry.metrics
        metrics.counter("analysis_code_runs_total").inc()
        metrics.counter("analysis_code_files_total").inc(len(state.files))
        metrics.counter("analysis_code_functions_total").inc(
            len(state.functions))
        report = self._run_family("code", state, {})
        for diagnostic in report.diagnostics:
            metrics.counter("analysis_code_findings_total",
                            severity=diagnostic.severity).inc()
        return report

    # ------------------------------------------------------------------
    # composite documents
    # ------------------------------------------------------------------

    def analyze_document(self, document: Mapping[str, Any],
                         source: str = "") -> AnalysisReport:
        """Analyze one JSON document of any recognised shape."""
        shape = sniff_document(document)
        if shape == "workflow":
            report = self.analyze_workflow(Workflow.from_dict(document))
        elif shape == "graph":
            report = self.analyze_graph(GraphState.from_dict(document))
        else:
            report = self.analyze_bundle(document)
        if source:
            for diagnostic in report.diagnostics:
                diagnostic.source = source
        return report

    def analyze_bundle(self,
                       bundle: Mapping[str, Any]) -> AnalysisReport:
        """Analyze a composite lint bundle.

        Recognised keys: ``workflow`` (one document) / ``workflows``
        (list), ``graph``/``graphs``, ``tables`` (a SchemaSet
        document), ``vault`` (a VaultState document), ``provstore``
        (a StoreState document).
        """
        report = AnalysisReport()
        workflows = list(bundle.get("workflows", ()))
        if bundle.get("workflow") is not None:
            workflows.insert(0, bundle["workflow"])
        for document in workflows:
            report.merge(self.analyze_workflow(Workflow.from_dict(document)))
        graphs = list(bundle.get("graphs", ()))
        if bundle.get("graph") is not None:
            graphs.insert(0, bundle["graph"])
        for document in graphs:
            report.merge(self.analyze_graph(GraphState.from_dict(document)))
        if bundle.get("tables") is not None:
            report.merge(self.analyze_storage(SchemaSet.from_dict(bundle)))
        if bundle.get("vault") is not None:
            report.merge(self.analyze_vault(
                VaultState.from_dict(bundle["vault"])))
        if bundle.get("provstore") is not None:
            report.merge(self.analyze_store(
                StoreState.from_dict(bundle["provstore"])))
        return report
