"""Provenance-store rules (PR006-PR008): defects in archival segments.

Rules run on a :class:`StoreState` — a lenient, read-only snapshot of
a :class:`~repro.provenance.store.ProvenanceStore`'s segments.  As
with the graph rules, leniency is the point: the store itself cannot
*construct* a dangling edge, but a segment payload restored from a
damaged archive (or written by a future, buggier version) can carry
one, and the linter describes the damage instead of crashing.

* **PR006** — an edge endpoint inside a segment references a string id
  that is not interned as a node anywhere in the store (corrupted or
  truncated segment payload).
* **PR007** — a ``wasCachedFrom`` edge points at an originating
  process whose run was never archived: the replay chain exits the
  store and lineage queries dead-end.
* **PR008** — the active tail holds at least ``runs_per_segment``
  runs: auto-sealing did not fire, so recent provenance sits in the
  non-persisted tail and is lost on crash.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, rule
from repro.provenance.store.columnar import (
    CACHED_FROM,
    EDGE_NAMES,
    KIND_CODES,
)

__all__ = ["StoreState"]

_KIND_NAMES = {code: name for name, code in KIND_CODES.items()}


class _SegmentView:
    """One segment (sealed or tail) of a :class:`StoreState`."""

    __slots__ = ("segment_id", "sealed", "runs", "node_sids", "edges")

    def __init__(self, segment_id: str, sealed: bool, runs: int,
                 node_sids: set[int],
                 edges: list[tuple[str, int, int]]) -> None:
        self.segment_id = segment_id
        self.sealed = sealed
        self.runs = runs
        self.node_sids = set(node_sids)
        self.edges = list(edges)

    def __repr__(self) -> str:
        return (
            f"_SegmentView({self.segment_id}, "
            f"{'sealed' if self.sealed else 'tail'}, "
            f"{len(self.edges)} edges)"
        )


class StoreState:
    """A read-only snapshot of an archival provenance store.

    ``node_kinds`` maps sid to kind name for every node interned
    anywhere in the store; ``names`` maps sid to the original string
    (best-effort — unnamed sids render as ``sid:N``).
    """

    def __init__(self, segments: list[_SegmentView],
                 node_kinds: Mapping[int, str],
                 names: Mapping[int, str],
                 tail_runs: int, runs_per_segment: int) -> None:
        self.segments = list(segments)
        self.node_kinds = dict(node_kinds)
        self.names = dict(names)
        self.tail_runs = tail_runs
        self.runs_per_segment = runs_per_segment

    def __repr__(self) -> str:
        return (
            f"StoreState({len(self.segments)} segments, "
            f"{len(self.node_kinds)} nodes)"
        )

    def name_of(self, sid: int) -> str:
        return self.names.get(sid, f"sid:{sid}")

    @classmethod
    def from_store(cls, store: Any) -> "StoreState":
        segments: list[_SegmentView] = []
        node_kinds: dict[int, str] = {}
        names: dict[int, str] = {}
        raw = list(store.segments)
        if store.tail.n_runs:
            raw.append(store.tail)
        for segment in raw:
            for sid, kind_code in zip(segment.node_sids,
                                      segment.node_kinds):
                node_kinds[sid] = _KIND_NAMES.get(kind_code,
                                                  str(kind_code))
                names[sid] = store.pool.lookup(sid)
            edges = []
            for code, effect, cause in zip(segment.edge_kinds,
                                           segment.edge_effects,
                                           segment.edge_causes):
                kind = (EDGE_NAMES[code] if 0 <= code < len(EDGE_NAMES)
                        else str(code))
                edges.append((kind, effect, cause))
                for sid in (effect, cause):
                    if sid not in names:
                        names[sid] = store.pool.lookup(sid)
            segments.append(_SegmentView(
                segment.segment_id, segment.sealed, segment.n_runs,
                set(segment.node_sids), edges,
            ))
        return cls(segments, node_kinds, names,
                   tail_runs=store.tail.n_runs,
                   runs_per_segment=store.runs_per_segment)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreState":
        """Lenient load of a store snapshot document::

            {"runs_per_segment": 256, "tail_runs": 3,
             "segments": [{"segment_id": "seg-00001", "sealed": true,
                           "runs": 2,
                           "nodes": [{"sid": 1, "kind": "artifact",
                                      "name": "run-0001/a1"}, ...],
                           "edges": [{"kind": "used", "effect": 2,
                                      "cause": 1}, ...]}]}

        Unknown kinds and dangling sids are preserved for the rules to
        report, never rejected.
        """
        segments: list[_SegmentView] = []
        node_kinds: dict[int, str] = {}
        names: dict[int, str] = {}
        for seg in data.get("segments", ()):
            node_sids: set[int] = set()
            for node in seg.get("nodes", ()):
                sid = int(node.get("sid", -1))
                if sid < 0:
                    continue
                node_sids.add(sid)
                node_kinds[sid] = str(node.get("kind", "artifact"))
                if node.get("name"):
                    names[sid] = str(node["name"])
            edges = [
                (str(edge.get("kind", "")),
                 int(edge.get("effect", -1)),
                 int(edge.get("cause", -1)))
                for edge in seg.get("edges", ())
            ]
            segments.append(_SegmentView(
                str(seg.get("segment_id", f"seg?{len(segments)}")),
                bool(seg.get("sealed", True)),
                int(seg.get("runs", 0)),
                node_sids, edges,
            ))
        return cls(segments, node_kinds, names,
                   tail_runs=int(data.get("tail_runs", 0)),
                   runs_per_segment=int(data.get("runs_per_segment",
                                                 256)))

    # -- helpers used by the rules -------------------------------------

    def is_node(self, sid: int) -> bool:
        return sid in self.node_kinds


def _loc(state: StoreState, segment: _SegmentView, *parts: str) -> str:
    return "/".join((f"store/segment:{segment.segment_id}",) + parts)


@rule("PR006", "provstore", "error",
      "segment edge endpoint is not an interned node of the store")
def _dangling_segment_endpoint(self: Rule, state: StoreState,
                               context: dict) -> Iterator[Diagnostic]:
    for segment in state.segments:
        for index, (kind, effect, cause) in enumerate(segment.edges):
            ends = [("effect", effect), ("cause", cause)]
            if kind == CACHED_FROM:
                ends = ends[:1]  # the exiting cause is PR007's business
            for end, sid in ends:
                if not state.is_node(sid):
                    yield self.emit(
                        _loc(state, segment, f"edge:{index}"),
                        f"{kind} edge {end} {state.name_of(sid)!r} is "
                        "not interned as a node anywhere in the store",
                        suggestion="the segment payload is damaged or "
                        "truncated; restore it from the repository "
                        "rows (ProvenanceRepository re-syncs missing "
                        "runs on attach)",
                    )


@rule("PR007", "provstore", "warning",
      "wasCachedFrom chain exits the store")
def _cached_chain_exits(self: Rule, state: StoreState,
                        context: dict) -> Iterator[Diagnostic]:
    for segment in state.segments:
        for index, (kind, effect, cause) in enumerate(segment.edges):
            if kind != CACHED_FROM:
                continue
            if not state.is_node(cause):
                yield self.emit(
                    _loc(state, segment, f"edge:{index}"),
                    f"process {state.name_of(effect)!r} replays "
                    f"{state.name_of(cause)!r}, whose run was never "
                    "archived — the replay chain dead-ends outside "
                    "the store",
                    suggestion="archive the originating run before "
                    "its replays, or re-ingest it from the "
                    "repository rows",
                )


@rule("PR008", "provstore", "warning",
      "active tail holds a full segment of unsealed runs")
def _seal_overdue(self: Rule, state: StoreState,
                  context: dict) -> Iterator[Diagnostic]:
    if state.runs_per_segment > 0 \
            and state.tail_runs >= state.runs_per_segment:
        yield self.emit(
            "store/tail",
            f"the active tail holds {state.tail_runs} runs but "
            f"segments seal at {state.runs_per_segment} — auto-"
            "sealing did not run, so this provenance is not yet "
            "persisted as a segment",
            suggestion="call ProvenanceStore.seal() (or lower "
            "runs_per_segment); tail runs survive only via "
            "repository-row re-sync",
        )
