"""Workflow rules (WF0xx): static defects in workflow definitions.

These run on a plain :class:`~repro.workflow.model.Workflow` — no
engine, no registry resolution, no execution.  They deliberately
overlap ``Workflow.validate()`` (cycles, fan-in, dangling links): the
linter must be able to describe *every* defect of a statically loaded
document, while ``validate`` stops at the first and only covers what
would break execution.

Context keys
------------
``registry``
    A :class:`~repro.workflow.model.ProcessorRegistry` (or ``None`` to
    skip kind checking).  Defaults to the builtin registry.
``dimensions``
    The set of declared quality-dimension names (defaults to the
    standard registry's).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, rule
from repro.workflow.model import Workflow

__all__ = ["workflow_context"]


def workflow_context(processor_registry=None, dimensions=None) -> dict:
    """Build the context dict the workflow rules read."""
    if processor_registry is None:
        from repro.workflow.builtins import builtin_registry
        processor_registry = builtin_registry()
    if dimensions is None:
        from repro.core.dimensions import standard_registry
        dimensions = set(standard_registry().names())
    return {"registry": processor_registry, "dimensions": set(dimensions)}


def _loc(workflow: Workflow, *parts: str) -> str:
    return "/".join((f"workflow:{workflow.name}",) + parts)


def _known_endpoints(workflow: Workflow, link) -> bool:
    """True when both link endpoints name known processors (or IO)."""
    return (
        (link.source == Workflow.IO or link.source in workflow.processors)
        and (link.sink == Workflow.IO or link.sink in workflow.processors)
    )


def _successors(workflow: Workflow) -> dict[str, set[str]]:
    """processor -> downstream processors (IO and dangling links skipped)."""
    result: dict[str, set[str]] = {name: set() for name in workflow.processors}
    for link in workflow.links:
        if link.source == Workflow.IO or link.sink == Workflow.IO:
            continue
        if not _known_endpoints(workflow, link):
            continue
        result[link.source].add(link.sink)
    return result


def _reach(start: set[str], edges: dict[str, set[str]]) -> set[str]:
    seen = set(start)
    frontier = list(start)
    while frontier:
        current = frontier.pop()
        for neighbour in edges.get(current, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


@rule("WF001", "workflow", "warning",
      "processor unreachable from any workflow input or source")
def _unreachable_processor(self: Rule, workflow: Workflow,
                           context: dict) -> Iterator[Diagnostic]:
    fed_from_io = {
        link.sink for link in workflow.links
        if link.source == Workflow.IO and link.sink in workflow.processors
    }
    has_incoming = {
        link.sink for link in workflow.links
        if link.sink in workflow.processors
        and (link.source == Workflow.IO or link.source in workflow.processors)
    }
    sources = set(workflow.processors) - has_incoming
    reachable = _reach(fed_from_io | sources, _successors(workflow))
    for name in sorted(set(workflow.processors) - reachable):
        yield self.emit(
            _loc(workflow, f"processor:{name}"),
            f"processor {name!r} is unreachable from every workflow "
            "input and source",
            suggestion="wire an input into it or remove it",
        )


@rule("WF002", "workflow", "warning",
      "output port feeds neither a processor nor a workflow output")
def _dead_end_output(self: Rule, workflow: Workflow,
                     context: dict) -> Iterator[Diagnostic]:
    consumed = {(link.source, link.source_port) for link in workflow.links}
    for processor in workflow.processors.values():
        for port in processor.output_ports.values():
            if (processor.name, port.name) not in consumed:
                yield self.emit(
                    _loc(workflow,
                         f"processor:{processor.name}",
                         f"output:{port.name}"),
                    f"output port {processor.name}.{port.name} feeds "
                    "nothing",
                    suggestion="link it onward, map it to a workflow "
                    "output, or drop the port",
                )


@rule("WF003", "workflow", "warning",
      "workflow input never influences any workflow output")
def _unused_workflow_input(self: Rule, workflow: Workflow,
                           context: dict) -> Iterator[Diagnostic]:
    output_sources = {
        link.source for link in workflow.links
        if link.sink == Workflow.IO and link.source in workflow.processors
    }
    if not output_sources:
        return  # no outputs at all: nothing can be "unused relative to them"
    predecessors: dict[str, set[str]] = {}
    for source, sinks in _successors(workflow).items():
        for sink in sinks:
            predecessors.setdefault(sink, set()).add(source)
    contributing = _reach(output_sources, predecessors)
    for port in workflow.input_names():
        sinks = {
            link.sink for link in workflow.links
            if link.source == Workflow.IO and link.source_port == port
            and link.sink in workflow.processors
        }
        if sinks and not (sinks & contributing):
            yield self.emit(
                _loc(workflow, f"input:{port}"),
                f"workflow input {port!r} feeds only processors that "
                "never reach a workflow output",
                suggestion="connect its consumers to an output or "
                "remove the input",
            )


@rule("WF004", "workflow", "warning",
      "input port fed by more than one link")
def _duplicate_fan_in(self: Rule, workflow: Workflow,
                      context: dict) -> Iterator[Diagnostic]:
    fan_in: dict[tuple[str, str], list] = {}
    for link in workflow.links:
        if link.sink == Workflow.IO:
            continue
        fan_in.setdefault((link.sink, link.sink_port), []).append(link)
    for (sink, port), links in sorted(fan_in.items()):
        if len(links) < 2:
            continue
        distinct = {(link.source, link.source_port) for link in links}
        location = _loc(workflow, f"processor:{sink}", f"input:{port}")
        if len(distinct) == 1:
            yield self.emit(
                location,
                f"input port {sink}.{port} is fed by {len(links)} "
                "identical links",
                suggestion="drop the duplicate links",
            )
        else:
            feeders = ", ".join(
                f"{source}.{source_port}"
                for source, source_port in sorted(distinct)
            )
            yield self.emit(
                location,
                f"input port {sink}.{port} is fed by conflicting links "
                f"({feeders})",
                suggestion="keep exactly one feeder per input port",
                severity="error",
            )


@rule("WF005", "workflow", "info",
      "processor carries no quality annotation on any declared dimension")
def _missing_quality(self: Rule, workflow: Workflow,
                     context: dict) -> Iterator[Diagnostic]:
    dimensions = context.get("dimensions") or set()
    for processor in workflow.processors.values():
        covered = set(processor.quality) & dimensions
        if not covered:
            yield self.emit(
                _loc(workflow, f"processor:{processor.name}"),
                f"processor {processor.name!r} has no Q(...) coverage "
                "on any declared quality dimension",
                suggestion="let the Workflow Adapter attach e.g. "
                "Q(reliability)/Q(availability) annotations",
            )


@rule("WF006", "workflow", "error",
      "processor kind unknown to the processor registry")
def _unknown_kind(self: Rule, workflow: Workflow,
                  context: dict) -> Iterator[Diagnostic]:
    registry = context.get("registry")
    if registry is None:
        return
    known = set(registry.kinds())
    for processor in workflow.processors.values():
        if processor.kind not in known:
            yield self.emit(
                _loc(workflow, f"processor:{processor.name}"),
                f"processor {processor.name!r} has kind "
                f"{processor.kind!r}, which no registry implements",
                suggestion="register the kind or fix the typo",
            )


@rule("WF007", "workflow", "warning",
      "quality annotation names an undeclared dimension")
def _unknown_dimension(self: Rule, workflow: Workflow,
                       context: dict) -> Iterator[Diagnostic]:
    dimensions = context.get("dimensions")
    if not dimensions:
        return
    carriers = [(f"processor:{p.name}", p.quality)
                for p in workflow.processors.values()]
    carriers.append(("annotations", workflow.quality))
    for where, quality in carriers:
        for dimension in quality:
            if dimension not in dimensions:
                yield self.emit(
                    _loc(workflow, where),
                    f"Q({dimension}) is not a declared quality "
                    "dimension",
                    suggestion="register the dimension or fix the "
                    "annotation",
                )


@rule("WF008", "workflow", "error",
      "link endpoint names a processor absent from the workflow")
def _dangling_link(self: Rule, workflow: Workflow,
                   context: dict) -> Iterator[Diagnostic]:
    for index, link in enumerate(workflow.links):
        for end, name in (("source", link.source), ("sink", link.sink)):
            if name != Workflow.IO and name not in workflow.processors:
                yield self.emit(
                    _loc(workflow, f"link:{index}"),
                    f"link {end} {name!r} is not a processor of this "
                    "workflow",
                    suggestion="add the processor or remove the link",
                )


@rule("WF009", "workflow", "error",
      "link references a port its processor does not declare")
def _unknown_port(self: Rule, workflow: Workflow,
                  context: dict) -> Iterator[Diagnostic]:
    for index, link in enumerate(workflow.links):
        if link.source in workflow.processors:
            ports = workflow.processors[link.source].output_ports
            if link.source_port not in ports:
                yield self.emit(
                    _loc(workflow, f"link:{index}"),
                    f"{link.source!r} has no output port "
                    f"{link.source_port!r}",
                    suggestion="declare the port or fix the link",
                )
        if link.sink in workflow.processors:
            ports_in = workflow.processors[link.sink].input_ports
            if link.sink_port not in ports_in:
                yield self.emit(
                    _loc(workflow, f"link:{index}"),
                    f"{link.sink!r} has no input port "
                    f"{link.sink_port!r}",
                    suggestion="declare the port or fix the link",
                )


@rule("WF010", "workflow", "error", "workflow dataflow contains a cycle")
def _workflow_cycle(self: Rule, workflow: Workflow,
                    context: dict) -> Iterator[Diagnostic]:
    edges = _successors(workflow)
    indegree = {name: 0 for name in workflow.processors}
    for sinks in edges.values():
        for sink in sinks:
            indegree[sink] += 1
    ready = [name for name, degree in indegree.items() if degree == 0]
    visited = 0
    while ready:
        current = ready.pop()
        visited += 1
        for sink in edges[current]:
            indegree[sink] -= 1
            if indegree[sink] == 0:
                ready.append(sink)
    if visited != len(workflow.processors):
        cyclic = sorted(
            name for name, degree in indegree.items() if degree > 0
        )
        yield self.emit(
            _loc(workflow),
            f"dataflow cycle involving {', '.join(cyclic)}",
            suggestion="break the cycle; workflows must be DAGs",
        )
