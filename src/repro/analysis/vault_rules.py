"""Vault rules (VA0xx): defects in preservation-vault state.

Rules run on a :class:`VaultState` — a read-only snapshot of replica
health, quorum configuration and the object manifest, taken either
from a live :class:`~repro.archive.vault.PreservationVault` or from a
lint-bundle document.  This is the static half of the fixity story:
``repro vault audit`` finds damage by re-hashing every byte, the
linter finds the *structural* failures (quorum unreachable, manifest
pointing at nothing, an at-risk format nobody has migrated) without
touching a payload.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, rule
from repro.sounds.formats import SOUND_FORMATS

__all__ = ["VaultState"]

#: Default planning horizon, matching ``FormatMigrationPlanner.plan``.
DEFAULT_HORIZON_YEAR = 2014


class VaultState:
    """A read-only vault snapshot for the vault rules.

    Parameters
    ----------
    name:
        Vault identity.
    replicas:
        Configured member-store count.
    quorum:
        Verified copies a read needs.
    copies:
        ``{digest: intact replica count}`` for every known object.
    manifest:
        Manifest rows (dicts with ``object_id``, ``digest``, ``kind``,
        ``format``, ``source_digest``, ``superseded``).
    horizon_year:
        Planning horizon for the at-risk format rule.
    federation:
        Optional federation snapshot (``sites`` + ``objects`` with
        their placements) for the placement rules; ``None`` when the
        vault has no federated tier.
    """

    def __init__(self, name: str, replicas: int, quorum: int,
                 copies: Mapping[str, int],
                 manifest: list,
                 horizon_year: int = DEFAULT_HORIZON_YEAR,
                 federation: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.replicas = int(replicas)
        self.quorum = int(quorum)
        self.copies = dict(copies)
        self.manifest = [dict(row) for row in manifest]
        self.horizon_year = int(horizon_year)
        self.federation = dict(federation) if federation else None

    def __repr__(self) -> str:
        return (
            f"VaultState({self.name}, {self.replicas} replicas, "
            f"{len(self.copies)} objects)"
        )

    @classmethod
    def from_vault(cls, vault: Any,
                   horizon_year: int = DEFAULT_HORIZON_YEAR) -> "VaultState":
        copies = {
            digest: len(vault.group.replica_status(digest).healthy_stores)
            for digest in vault.group.digests()
        }
        federation = getattr(vault, "federation", None)
        return cls(
            vault.name,
            len(vault.group.stores),
            vault.group.quorum,
            copies,
            vault.manifest(include_superseded=True),
            horizon_year=horizon_year,
            federation=(None if federation is None
                        else cls.federation_snapshot(federation)),
        )

    @staticmethod
    def federation_snapshot(federation: Any) -> dict[str, Any]:
        """A rule-friendly snapshot of a
        :class:`~repro.archive.federation.FederatedVault` (duck-typed,
        so the analysis layer never imports the archive)."""
        topology = federation.topology
        return {
            "sites": {
                site.name: {"region": site.region,
                            "available": site.available}
                for site in topology.sites()
            },
            "regions": topology.regions(),
            "objects": [
                {
                    "digest": record.digest,
                    "kind": record.scheme.kind,
                    "fragments_needed": record.scheme.fragments,
                    "read_fragments": record.scheme.read_fragments,
                    "placements": [
                        {"site": p.site, "role": p.role}
                        for p in record.placements
                    ],
                }
                for record in federation.objects()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VaultState":
        """Load from a lint-bundle ``vault`` document::

            {"name": "vault", "replicas": 3, "quorum": 2,
             "objects": [{"digest": "...", "copies": 3}, ...],
             "manifest": [...manifest rows...],
             "horizon_year": 2014}
        """
        copies = {
            str(entry.get("digest", "")): int(entry.get("copies", 0))
            for entry in data.get("objects", ())
        }
        return cls(
            str(data.get("name", "vault")),
            int(data.get("replicas", 1)),
            int(data.get("quorum", 1)),
            copies,
            list(data.get("manifest", ())),
            horizon_year=int(data.get("horizon_year",
                                      DEFAULT_HORIZON_YEAR)),
            federation=data.get("federation"),
        )

    # -- helpers used by the rules -------------------------------------

    def at_risk_formats(self) -> set[str]:
        return {era.name for era in SOUND_FORMATS
                if era.last_year < self.horizon_year}

    def migrated_sources(self) -> set[str]:
        """Digests some manifest row claims to be derived from."""
        return {
            str(row["source_digest"]) for row in self.manifest
            if row.get("source_digest")
        }

    def current_records(self) -> list[dict[str, Any]]:
        return [row for row in self.manifest
                if row.get("kind") == "record"
                and not row.get("superseded")]

    def federation_objects(self) -> list[dict[str, Any]]:
        if not self.federation:
            return []
        return list(self.federation.get("objects", ()))

    def federation_sites(self) -> dict[str, dict[str, Any]]:
        if not self.federation:
            return {}
        return dict(self.federation.get("sites", {}))

    def available_placements(self,
                             entry: Mapping[str, Any]) -> list[dict]:
        """An object's placements whose sites are currently up."""
        sites = self.federation_sites()
        return [
            dict(p) for p in entry.get("placements", ())
            if sites.get(str(p.get("site")), {}).get("available", False)
        ]


def _loc(state: VaultState, *parts: str) -> str:
    return "/".join((f"vault:{state.name}",) + parts)


def _short(digest: str) -> str:
    return digest[:12] + "…" if len(digest) > 12 else digest


@rule("VA001", "vault", "error",
      "object has fewer intact replicas than the read quorum")
def _below_quorum(self: Rule, state: VaultState,
                  context: dict) -> Iterator[Diagnostic]:
    for digest in sorted(state.copies):
        copies = state.copies[digest]
        if copies < state.quorum:
            yield self.emit(
                _loc(state, f"object:{_short(digest)}"),
                f"object {_short(digest)} has {copies} intact "
                f"replica(s); quorum is {state.quorum}",
                suggestion="run `repro vault audit` to repair from "
                "the surviving copies before another replica fails",
            )


@rule("VA002", "vault", "warning",
      "object in an at-risk format has no migration lineage")
def _at_risk_unmigrated(self: Rule, state: VaultState,
                        context: dict) -> Iterator[Diagnostic]:
    risky = state.at_risk_formats()
    sources = state.migrated_sources()
    for row in state.current_records():
        fmt = row.get("format")
        if fmt in risky and str(row.get("digest")) not in sources:
            yield self.emit(
                _loc(state, f"manifest:{row.get('object_id')}"),
                f"record {row.get('object_id')!r} is stored as {fmt} "
                f"(era closed before {state.horizon_year}) and no "
                "derivative references it",
                suggestion="run `repro vault migrate` to re-encode it "
                "with wasDerivedFrom lineage",
            )


@rule("VA003", "vault", "error",
      "manifest row references an object absent from every store")
def _manifest_drift(self: Rule, state: VaultState,
                    context: dict) -> Iterator[Diagnostic]:
    for row in state.manifest:
        digest = str(row.get("digest", ""))
        if digest and digest not in state.copies:
            yield self.emit(
                _loc(state, f"manifest:{row.get('object_id')}"),
                f"manifest row {row.get('object_id')!r} points at "
                f"{_short(digest)}, which no replica holds",
                suggestion="restore the object or retire the manifest "
                "row",
            )


@rule("VA004", "vault", "error",
      "quorum configuration can never be satisfied")
def _quorum_misconfigured(self: Rule, state: VaultState,
                          context: dict) -> Iterator[Diagnostic]:
    if state.quorum < 1 or state.quorum > state.replicas:
        yield self.emit(
            _loc(state),
            f"quorum {state.quorum} is outside [1, {state.replicas}] "
            f"for a {state.replicas}-replica group",
            suggestion="use a majority quorum "
            f"({state.replicas // 2 + 1} for {state.replicas} replicas)",
        )


@rule("VA005", "vault", "error",
      "federated object is unreadable: fewer available fragments "
      "than a read needs")
def _federation_unreadable(self: Rule, state: VaultState,
                           context: dict) -> Iterator[Diagnostic]:
    for entry in state.federation_objects():
        needed = int(entry.get("read_fragments", 1))
        up = len(state.available_placements(entry))
        if up < needed:
            digest = str(entry.get("digest", ""))
            yield self.emit(
                _loc(state, f"federation:{_short(digest)}"),
                f"object {_short(digest)} ({entry.get('kind')}) has "
                f"{up} fragment(s) on available sites; a read needs "
                f"{needed}",
                suggestion="recover the down sites, or run "
                "`repro vault rebuild <site>` while enough fragments "
                "survive",
            )


@rule("VA006", "vault", "warning",
      "federated object is under-placed: lost redundancy has not "
      "been rebuilt")
def _federation_under_placed(self: Rule, state: VaultState,
                             context: dict) -> Iterator[Diagnostic]:
    for entry in state.federation_objects():
        wanted = int(entry.get("fragments_needed", 1))
        up = len(state.available_placements(entry))
        needed = int(entry.get("read_fragments", 1))
        if needed <= up < wanted:
            digest = str(entry.get("digest", ""))
            yield self.emit(
                _loc(state, f"federation:{_short(digest)}"),
                f"object {_short(digest)} ({entry.get('kind')}) has "
                f"{up} of {wanted} fragments on available sites — "
                "still readable, but its durability budget is spent",
                suggestion="run `repro vault rebuild <site>` to "
                "re-materialize the lost fragments on healthy sites",
            )


@rule("VA007", "vault", "warning",
      "federated object's fragments are not spread across regions")
def _federation_region_concentrated(self: Rule, state: VaultState,
                                    context: dict) -> Iterator[Diagnostic]:
    if not state.federation:
        return
    regions_available = len(state.federation.get("regions", ()))
    if regions_available < 2:
        return
    sites = state.federation_sites()
    for entry in state.federation_objects():
        placements = list(entry.get("placements", ()))
        if len(placements) < 2:
            continue
        spanned = {
            str(sites.get(str(p.get("site")), {}).get("region", ""))
            for p in placements
        }
        if len(spanned) < 2:
            digest = str(entry.get("digest", ""))
            region = next(iter(spanned), "?")
            yield self.emit(
                _loc(state, f"federation:{_short(digest)}"),
                f"all {len(placements)} fragments of {_short(digest)} "
                f"sit in region {region!r}; one regional outage loses "
                "every copy at once",
                suggestion="re-place with a region-spreading policy "
                "(PlacementPolicy(spread_regions=True))",
            )
