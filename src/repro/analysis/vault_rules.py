"""Vault rules (VA0xx): defects in preservation-vault state.

Rules run on a :class:`VaultState` — a read-only snapshot of replica
health, quorum configuration and the object manifest, taken either
from a live :class:`~repro.archive.vault.PreservationVault` or from a
lint-bundle document.  This is the static half of the fixity story:
``repro vault audit`` finds damage by re-hashing every byte, the
linter finds the *structural* failures (quorum unreachable, manifest
pointing at nothing, an at-risk format nobody has migrated) without
touching a payload.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, rule
from repro.sounds.formats import SOUND_FORMATS

__all__ = ["VaultState"]

#: Default planning horizon, matching ``FormatMigrationPlanner.plan``.
DEFAULT_HORIZON_YEAR = 2014


class VaultState:
    """A read-only vault snapshot for the vault rules.

    Parameters
    ----------
    name:
        Vault identity.
    replicas:
        Configured member-store count.
    quorum:
        Verified copies a read needs.
    copies:
        ``{digest: intact replica count}`` for every known object.
    manifest:
        Manifest rows (dicts with ``object_id``, ``digest``, ``kind``,
        ``format``, ``source_digest``, ``superseded``).
    horizon_year:
        Planning horizon for the at-risk format rule.
    """

    def __init__(self, name: str, replicas: int, quorum: int,
                 copies: Mapping[str, int],
                 manifest: list,
                 horizon_year: int = DEFAULT_HORIZON_YEAR) -> None:
        self.name = name
        self.replicas = int(replicas)
        self.quorum = int(quorum)
        self.copies = dict(copies)
        self.manifest = [dict(row) for row in manifest]
        self.horizon_year = int(horizon_year)

    def __repr__(self) -> str:
        return (
            f"VaultState({self.name}, {self.replicas} replicas, "
            f"{len(self.copies)} objects)"
        )

    @classmethod
    def from_vault(cls, vault: Any,
                   horizon_year: int = DEFAULT_HORIZON_YEAR) -> "VaultState":
        copies = {
            digest: len(vault.group.replica_status(digest).healthy_stores)
            for digest in vault.group.digests()
        }
        return cls(
            vault.name,
            len(vault.group.stores),
            vault.group.quorum,
            copies,
            vault.manifest(include_superseded=True),
            horizon_year=horizon_year,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VaultState":
        """Load from a lint-bundle ``vault`` document::

            {"name": "vault", "replicas": 3, "quorum": 2,
             "objects": [{"digest": "...", "copies": 3}, ...],
             "manifest": [...manifest rows...],
             "horizon_year": 2014}
        """
        copies = {
            str(entry.get("digest", "")): int(entry.get("copies", 0))
            for entry in data.get("objects", ())
        }
        return cls(
            str(data.get("name", "vault")),
            int(data.get("replicas", 1)),
            int(data.get("quorum", 1)),
            copies,
            list(data.get("manifest", ())),
            horizon_year=int(data.get("horizon_year",
                                      DEFAULT_HORIZON_YEAR)),
        )

    # -- helpers used by the rules -------------------------------------

    def at_risk_formats(self) -> set[str]:
        return {era.name for era in SOUND_FORMATS
                if era.last_year < self.horizon_year}

    def migrated_sources(self) -> set[str]:
        """Digests some manifest row claims to be derived from."""
        return {
            str(row["source_digest"]) for row in self.manifest
            if row.get("source_digest")
        }

    def current_records(self) -> list[dict[str, Any]]:
        return [row for row in self.manifest
                if row.get("kind") == "record"
                and not row.get("superseded")]


def _loc(state: VaultState, *parts: str) -> str:
    return "/".join((f"vault:{state.name}",) + parts)


def _short(digest: str) -> str:
    return digest[:12] + "…" if len(digest) > 12 else digest


@rule("VA001", "vault", "error",
      "object has fewer intact replicas than the read quorum")
def _below_quorum(self: Rule, state: VaultState,
                  context: dict) -> Iterator[Diagnostic]:
    for digest in sorted(state.copies):
        copies = state.copies[digest]
        if copies < state.quorum:
            yield self.emit(
                _loc(state, f"object:{_short(digest)}"),
                f"object {_short(digest)} has {copies} intact "
                f"replica(s); quorum is {state.quorum}",
                suggestion="run `repro vault audit` to repair from "
                "the surviving copies before another replica fails",
            )


@rule("VA002", "vault", "warning",
      "object in an at-risk format has no migration lineage")
def _at_risk_unmigrated(self: Rule, state: VaultState,
                        context: dict) -> Iterator[Diagnostic]:
    risky = state.at_risk_formats()
    sources = state.migrated_sources()
    for row in state.current_records():
        fmt = row.get("format")
        if fmt in risky and str(row.get("digest")) not in sources:
            yield self.emit(
                _loc(state, f"manifest:{row.get('object_id')}"),
                f"record {row.get('object_id')!r} is stored as {fmt} "
                f"(era closed before {state.horizon_year}) and no "
                "derivative references it",
                suggestion="run `repro vault migrate` to re-encode it "
                "with wasDerivedFrom lineage",
            )


@rule("VA003", "vault", "error",
      "manifest row references an object absent from every store")
def _manifest_drift(self: Rule, state: VaultState,
                    context: dict) -> Iterator[Diagnostic]:
    for row in state.manifest:
        digest = str(row.get("digest", ""))
        if digest and digest not in state.copies:
            yield self.emit(
                _loc(state, f"manifest:{row.get('object_id')}"),
                f"manifest row {row.get('object_id')!r} points at "
                f"{_short(digest)}, which no replica holds",
                suggestion="restore the object or retire the manifest "
                "row",
            )


@rule("VA004", "vault", "error",
      "quorum configuration can never be satisfied")
def _quorum_misconfigured(self: Rule, state: VaultState,
                          context: dict) -> Iterator[Diagnostic]:
    if state.quorum < 1 or state.quorum > state.replicas:
        yield self.emit(
            _loc(state),
            f"quorum {state.quorum} is outside [1, {state.replicas}] "
            f"for a {state.replicas}-replica group",
            suggestion="use a majority quorum "
            f"({state.replicas // 2 + 1} for {state.replicas} replicas)",
        )
