"""Diagnostics: the unit of static-analysis output.

A :class:`Diagnostic` is one finding of one rule — machine-readable
(rule id, severity, location) and human-readable (message, suggested
fix).  An :class:`AnalysisReport` aggregates the findings of one or
more analyzer passes and knows how to render itself as text or plain
data, and what process exit code it implies.

Severities form a strict hierarchy:

* ``error`` — the object will misbehave or fail when used (cycle,
  dangling reference, broken foreign key).  Errors make ``repro lint``
  exit nonzero.
* ``warning`` — the object works but carries a latent defect (dead-end
  output, unindexed foreign key, at-risk format).
* ``info`` — advisory: quality metadata that the paper's assessment
  loop would want and that is absent.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import AnalysisError
from repro.hashing import sha256_hex

__all__ = ["SEVERITIES", "Diagnostic", "AnalysisReport"]

#: Recognised severities, most severe first.
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


class Diagnostic:
    """One static-analysis finding.

    Parameters
    ----------
    rule_id:
        Identifier of the rule that fired (e.g. ``"WF001"``).
    severity:
        One of :data:`SEVERITIES`.
    message:
        What is wrong, phrased about the analyzed object.
    location:
        Where, as a stable path-like string
        (``workflow:demo/processor:reader``).
    suggestion:
        Optional suggested fix.
    family:
        Analyzer family (``workflow`` / ``provenance`` / ``storage`` /
        ``vault``).
    source:
        Optional origin document (a file path, set by the CLI).
    line:
        Optional 1-based source line (set by the source-code analyzers;
        0 means "no line").  Deliberately excluded from the
        :attr:`fingerprint` so a baseline survives unrelated edits that
        only shift code up or down.
    """

    __slots__ = ("rule_id", "severity", "message", "location",
                 "suggestion", "family", "source", "line")

    def __init__(self, rule_id: str, severity: str, message: str,
                 location: str, suggestion: str = "",
                 family: str = "", source: str = "",
                 line: int = 0) -> None:
        if severity not in _SEVERITY_RANK:
            raise AnalysisError(
                f"unknown severity {severity!r} (rule {rule_id})"
            )
        self.rule_id = rule_id
        self.severity = severity
        self.message = message
        self.location = location
        self.suggestion = suggestion
        self.family = family
        self.source = source
        self.line = line

    def __repr__(self) -> str:
        return (
            f"Diagnostic({self.rule_id} {self.severity} "
            f"{self.location}: {self.message!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Diagnostic):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    @property
    def fingerprint(self) -> str:
        """Stable identity used by suppression baselines.

        Deliberately excludes ``source`` so a baseline survives moving
        a document between files."""
        return sha256_hex(
            f"{self.rule_id}|{self.location}|{self.message}"
        )[:16]

    def sort_key(self) -> tuple[int, str, str, str, int, str]:
        return (_SEVERITY_RANK[self.severity], self.rule_id,
                self.source, self.location, self.line, self.message)

    def format(self) -> str:
        prefix = ""
        if self.source:
            prefix = (f"{self.source}:{self.line}: " if self.line
                      else f"{self.source}: ")
        elif self.line:
            prefix = f"line {self.line}: "
        line = (f"{self.severity:<7} {self.rule_id:<6} "
                f"{prefix}{self.location}: {self.message}")
        if self.suggestion:
            line += f"\n        fix: {self.suggestion}"
        return line

    def to_dict(self) -> dict[str, Any]:
        data = {
            "rule": self.rule_id,
            "severity": self.severity,
            "family": self.family,
            "location": self.location,
            "message": self.message,
            "suggestion": self.suggestion,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }
        if self.line:
            data["line"] = self.line
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            data["rule"], data["severity"], data["message"],
            data["location"], suggestion=data.get("suggestion", ""),
            family=data.get("family", ""), source=data.get("source", ""),
            line=int(data.get("line", 0)),
        )


class AnalysisReport:
    """The findings of one or more analyzer passes."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)
        self.suppressed = 0
        self.families_run: list[str] = []

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.sorted())

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"AnalysisReport({counts['error']} errors, "
            f"{counts['warning']} warnings, {counts['info']} info)"
        )

    # -- accumulation --------------------------------------------------

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed
        for family in other.families_run:
            if family not in self.families_run:
                self.families_run.append(family)
        return self

    # -- queries -------------------------------------------------------

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.sorted() if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity("error")

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def rule_ids(self) -> list[str]:
        return sorted({d.rule_id for d in self.diagnostics})

    def counts(self) -> dict[str, int]:
        result = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            result[diagnostic.severity] += 1
        return result

    @property
    def exit_code(self) -> int:
        return 1 if self.has_errors else 0

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        lines = [d.format() for d in self.sorted()]
        counts = self.counts()
        summary = (
            f"{counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['info']} info"
        )
        if self.suppressed:
            summary += f", {self.suppressed} suppressed by baseline"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        counts = self.counts()
        return {
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": {
                **counts,
                "total": len(self.diagnostics),
                "suppressed": self.suppressed,
            },
            "families_run": list(self.families_run),
            "exit_code": self.exit_code,
        }
