"""Static analysis over workflows, provenance, schemas and vaults.

The rule engine behind ``repro lint``: a :class:`Diagnostic` model, a
:class:`RuleRegistry` with per-rule enable/disable and suppression
baselines, and six rule families: five over in-memory *data* objects
(workflow ``WF``, provenance ``PR001``-``PR005``, provenance-store
``PR006``-``PR008``, storage ``ST``, vault ``VA``) plus the
source-code family (determinism ``DET``, lock-discipline ``LK``,
hygiene ``HY``) in :mod:`repro.analysis.code`.

Importing this package registers every built-in rule with the default
registry.
"""

from repro.analysis.diagnostics import (
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.registry import (
    FAMILIES,
    Baseline,
    Rule,
    RuleRegistry,
    default_registry,
    rule,
)

# Importing the rule modules registers their rules with the default
# registry; the state views are part of the public surface.
from repro.analysis.workflow_rules import workflow_context
from repro.analysis.provenance_rules import GraphState
from repro.analysis.store_rules import StoreState
from repro.analysis.storage_rules import SchemaSet
from repro.analysis.vault_rules import VaultState
from repro.analysis.code import CodebaseState, ModuleLoader
from repro.analysis.analyzer import Analyzer, sniff_document

__all__ = [
    "SEVERITIES",
    "FAMILIES",
    "Diagnostic",
    "AnalysisReport",
    "Rule",
    "RuleRegistry",
    "Baseline",
    "rule",
    "default_registry",
    "workflow_context",
    "GraphState",
    "SchemaSet",
    "StoreState",
    "VaultState",
    "CodebaseState",
    "ModuleLoader",
    "Analyzer",
    "sniff_document",
]
