"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Each subsystem has its own branch:

* :class:`StorageError` — the embeddable relational engine.
* :class:`WorkflowError` — the dataflow engine.
* :class:`ProvenanceError` — OPM graphs and the provenance manager.
* :class:`TaxonomyError` — the simulated Catalogue of Life.
* :class:`QualityError` — quality dimensions, metrics and assessment.
* :class:`CurationError` — curation pipelines.
* :class:`ArchiveError` — the preservation vault (CAS, replicas,
  fixity, migration).
* :class:`AnalysisError` — the static-analysis rule engine.
* :class:`ServiceError` — the multi-tenant request façade (admission
  control, per-tenant quotas).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


# ---------------------------------------------------------------------------
# Storage engine
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for errors raised by :mod:`repro.storage`."""


class SchemaError(StorageError):
    """A table schema is invalid (duplicate column, bad type, missing key)."""


class ConstraintViolation(StorageError):
    """A row violates a declared constraint (NOT NULL, UNIQUE, CHECK, FK)."""

    def __init__(self, constraint: str, detail: str) -> None:
        super().__init__(f"{constraint}: {detail}")
        self.constraint = constraint
        self.detail = detail


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist."""


class UnknownColumnError(StorageError):
    """A statement referenced a column absent from the table schema."""


class DuplicateTableError(StorageError):
    """``create_table`` was called with a name that is already in use."""


class RowNotFoundError(StorageError):
    """A lookup by primary key matched no row."""


class TransactionError(StorageError):
    """Misuse of the transaction API (nested begin, commit w/o begin...)."""


class TransactionConflictError(TransactionError):
    """Two transactions raced on the same row version.

    The engine is first-writer-wins: the transaction that touches a row
    version second fails immediately (either the row carries an
    uncommitted write from another live transaction, or it was committed
    after this transaction began).  Callers retry the whole transaction.
    """


class JournalError(StorageError):
    """The write-ahead journal is corrupt or cannot be replayed."""


# ---------------------------------------------------------------------------
# Workflow engine
# ---------------------------------------------------------------------------

class WorkflowError(ReproError):
    """Base class for errors raised by :mod:`repro.workflow`."""


class WorkflowValidationError(WorkflowError):
    """A workflow definition is structurally invalid (cycle, dangling link)."""


class MissingDefaultError(WorkflowValidationError):
    """A required input port's default was read, but it declares none."""


class UnknownProcessorError(WorkflowError):
    """A link or run referenced a processor that is not in the workflow."""


class UnknownPortError(WorkflowError):
    """A link referenced a port a processor does not declare."""


class WorkflowExecutionError(WorkflowError):
    """A processor failed while the workflow was running."""

    def __init__(self, processor: str, cause: BaseException) -> None:
        super().__init__(f"processor {processor!r} failed: {cause}")
        self.processor = processor
        self.cause = cause


class SerializationError(WorkflowError):
    """A workflow document could not be parsed or emitted."""


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------

class ProvenanceError(ReproError):
    """Base class for errors raised by :mod:`repro.provenance`."""


class UnknownNodeError(ProvenanceError):
    """An OPM edge referenced a node missing from the graph."""


class InvalidEdgeError(ProvenanceError):
    """An OPM edge connects node kinds the spec does not allow."""


# ---------------------------------------------------------------------------
# Taxonomy / external services
# ---------------------------------------------------------------------------

class TaxonomyError(ReproError):
    """Base class for errors raised by :mod:`repro.taxonomy`."""


class NameNotFoundError(TaxonomyError):
    """A scientific name is absent from the catalogue."""


class InvalidNameError(TaxonomyError):
    """A string is not a well-formed scientific name."""


class ServiceUnavailableError(TaxonomyError):
    """The (simulated) external web service refused the call."""


# ---------------------------------------------------------------------------
# Quality core
# ---------------------------------------------------------------------------

class QualityError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class UnknownDimensionError(QualityError):
    """A profile or report referenced an unregistered quality dimension."""


class MetricError(QualityError):
    """A quality metric could not be computed."""


class ProfileError(QualityError):
    """A quality profile definition is inconsistent."""


# ---------------------------------------------------------------------------
# Curation
# ---------------------------------------------------------------------------

class CurationError(ReproError):
    """Base class for errors raised by :mod:`repro.curation`."""


class GeocodingError(CurationError):
    """A location string could not be resolved to coordinates."""


# ---------------------------------------------------------------------------
# Preservation vault
# ---------------------------------------------------------------------------

class ArchiveError(ReproError):
    """Base class for errors raised by :mod:`repro.archive`."""


class ObjectMissingError(ArchiveError):
    """A content-addressed object is absent from a store."""


class FixityError(ArchiveError):
    """A stored payload no longer matches its content digest."""


class QuorumError(ArchiveError):
    """Fewer verified replicas than the replica group's read quorum.

    Carries the cause breakdown so callers (and repair provenance) can
    distinguish replicas that are *gone* from replicas whose bytes
    rotted in place: ``missing`` / ``corrupt`` list the offending store
    names, ``verified`` counts the healthy ones.
    """

    def __init__(self, message: str, missing: tuple[str, ...] = (),
                 corrupt: tuple[str, ...] = (), verified: int = 0) -> None:
        super().__init__(message)
        self.missing = tuple(missing)
        self.corrupt = tuple(corrupt)
        self.verified = verified


class MigrationError(ArchiveError):
    """A format migration could not be planned or executed."""


class ErasureError(ArchiveError):
    """Erasure coding failed: bad k/n parameters, too few intact
    shards to reconstruct, or the reconstructed bytes fail fixity."""


class SiteUnavailableError(ArchiveError):
    """A federated site is down (simulated outage) and refused I/O."""


class PlacementError(ArchiveError):
    """A placement policy cannot be satisfied by the site topology."""


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class AnalysisError(ReproError):
    """Misuse of the rule engine (duplicate rule id, unknown rule,
    malformed baseline or lint document)."""


# ---------------------------------------------------------------------------
# Multi-tenant service façade
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for errors raised by :mod:`repro.service`."""


class AdmissionRejectedError(ServiceError):
    """The admission controller refused a request (in-flight limit hit
    and the wait queue is full, or the queue wait timed out)."""


class QuotaExceededError(ServiceError):
    """A tenant exhausted its request or row budget for the window."""
