"""Multi-tenant service façade over storage, vault and provenance.

The paper's preservation model assumes many curators concurrently
querying and amending a collection; this package is the request-level
door they come through.  It composes three pieces:

* :class:`~repro.service.facade.PreservationService` — the façade:
  query (MVCC snapshot reads), ingest (transactions with conflict
  retry), audit (vault fixity sweep + repair) and vault status;
* :class:`~repro.service.admission.AdmissionController` — bounded
  in-flight requests with a bounded, timed wait queue (load shedding);
* :class:`~repro.service.quotas.QuotaRegistry` /
  :class:`~repro.service.quotas.TenantQuota` — fixed-window per-tenant
  request budgets and per-request row caps.

Everything is instrumented with ``service_*`` metrics rendered by the
``repro stats --service`` panel.
"""

from repro.service.admission import AdmissionController
from repro.service.facade import PreservationService, ServiceConfig
from repro.service.quotas import QuotaRegistry, TenantQuota
from repro.service.requests import ServiceRequest, ServiceResponse

__all__ = [
    "AdmissionController",
    "PreservationService",
    "QuotaRegistry",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "TenantQuota",
]
