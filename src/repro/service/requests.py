"""Request/response envelopes for the multi-tenant service façade.

Every operation a tenant submits — query, ingest, audit, vault status —
travels as a :class:`ServiceRequest` and comes back as a
:class:`ServiceResponse`.  The façade never raises for per-request
failures: rejection (admission/quota), write conflicts and handler
errors are all reported through ``ServiceResponse.status`` so a load
generator or server loop can keep draining traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ServiceRequest", "ServiceResponse", "OPERATIONS"]

#: Operations the façade accepts.
OPERATIONS = ("query", "ingest", "audit", "vault_status")


@dataclass
class ServiceRequest:
    """One tenant operation.

    ``payload`` is operation-specific:

    * ``query`` — ``table`` (required), optional ``predicate``
      (a :class:`~repro.storage.predicate.Predicate` or callable),
      ``order_by``, ``descending``, ``limit``, ``columns``.
    * ``ingest`` — ``table`` (required), ``rows`` (list of mappings to
      insert) and/or ``updates`` (list of ``{"key": pk, "changes": {}}``).
    * ``audit`` — optional ``repair`` (bool, default True).
    * ``vault_status`` — no payload.
    """

    tenant: str
    op: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OPERATIONS:
            raise ValueError(
                f"unknown operation {self.op!r}; expected one of "
                f"{', '.join(OPERATIONS)}"
            )


@dataclass
class ServiceResponse:
    """Outcome of one request.

    ``status`` is one of:

    * ``ok`` — handler succeeded, ``result`` holds its value;
    * ``rejected`` — refused before execution (admission control or
      tenant quota), ``error`` says why;
    * ``conflict`` — an ingest lost the first-writer-wins race on every
      retry (``retries`` counts the attempts made);
    * ``error`` — the handler raised, ``error`` holds the message.
    """

    tenant: str
    op: str
    status: str
    result: Any = None
    error: str | None = None
    elapsed_seconds: float = 0.0
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "op": self.op,
            "status": self.status,
            "error": self.error,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "retries": self.retries,
        }
