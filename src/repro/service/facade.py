"""The request-level façade: one door into storage + vault.

:class:`PreservationService` is what ROADMAP item 1 calls the
multi-tenant service layer: tenants submit query/ingest/audit/vault
operations as :class:`~repro.service.requests.ServiceRequest` envelopes
and always get a :class:`~repro.service.requests.ServiceResponse` back —
overload, quota exhaustion, write conflicts and handler failures are
reported as statuses, never as exceptions escaping :meth:`submit`.

Per request the façade:

1. charges the tenant's quota (fixed window; reject → ``rejected``);
2. takes an admission slot (bounded in-flight + bounded queue;
   reject/timeout → ``rejected``);
3. executes the handler — queries run against an MVCC snapshot
   (:meth:`Database.snapshot <repro.storage.database.Database.snapshot>`)
   so they never block or observe writers; ingests run in a transaction
   and retry up to ``conflict_retries`` times when they lose the
   first-writer-wins race; audits sweep (and optionally repair) the
   preservation vault;
4. records ``service_*`` telemetry: request counts by operation and
   outcome, a latency histogram, conflict-retry and rejection counters.

``ServiceConfig.simulated_io_seconds`` models the per-request network/
disk wait of a real deployment (the in-process engine has none); the
load benchmark uses it so concurrency wins show up as they would in
production, where requests overlap on I/O.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    AdmissionRejectedError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    TransactionConflictError,
)
from repro.service.admission import AdmissionController
from repro.service.quotas import QuotaRegistry, TenantQuota
from repro.service.requests import ServiceRequest, ServiceResponse
from repro.storage.database import Database
from repro.telemetry import Telemetry, get_telemetry

__all__ = ["ServiceConfig", "PreservationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for admission control, retries and quotas."""

    #: requests executing at once before arrivals queue
    max_in_flight: int = 8
    #: waiters tolerated before hard rejection
    max_queue_depth: int = 16
    #: longest a queued request waits for a slot
    queue_timeout_seconds: float = 5.0
    #: attempts for an ingest that loses the first-writer-wins race
    conflict_retries: int = 3
    #: applied to tenants without an explicit quota (None = unlimited)
    default_quota: TenantQuota | None = None
    #: per-request sleep modeling external I/O (0 = pure in-process)
    simulated_io_seconds: float = 0.0


class PreservationService:
    """Multi-tenant façade over a database and optional vault."""

    def __init__(self, database: Database, *, vault: Any | None = None,
                 config: ServiceConfig | None = None,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        self._database = database
        self._vault = vault
        self.config = config or ServiceConfig()
        self._telemetry = telemetry or get_telemetry()
        self.admission = AdmissionController(
            max_in_flight=self.config.max_in_flight,
            max_queue_depth=self.config.max_queue_depth,
            queue_timeout_seconds=self.config.queue_timeout_seconds,
            telemetry=self._telemetry,
        )
        self.quotas = QuotaRegistry(
            default=self.config.default_quota, clock=clock,
            telemetry=self._telemetry,
        )

    def __repr__(self) -> str:
        vault = self._vault.name if self._vault is not None else None
        return (f"PreservationService(db={self._database.name!r}, "
                f"vault={vault!r})")

    # ------------------------------------------------------------------
    # the front door
    # ------------------------------------------------------------------

    def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Run one request end to end; never raises for per-request
        failures — inspect ``ServiceResponse.status``."""
        metrics = self._telemetry.metrics
        started = time.perf_counter()
        retries = 0
        try:
            self.quotas.charge(request.tenant)
            self.admission.acquire()
        except (QuotaExceededError, AdmissionRejectedError) as exc:
            return self._finish(request, "rejected", None, str(exc),
                                started, retries)
        try:
            if self.config.simulated_io_seconds > 0:
                time.sleep(self.config.simulated_io_seconds)
            handler = getattr(self, f"_op_{request.op}")
            result, retries = handler(request)
        except QuotaExceededError as exc:
            return self._finish(request, "rejected", None, str(exc),
                                started, retries)
        except TransactionConflictError as exc:
            return self._finish(request, "conflict", None, str(exc),
                                started, retries)
        except ReproError as exc:
            # domain failure: the response contract reports it in the
            # body instead of raising at the caller
            metrics.counter("service_errors_total", op=request.op).inc()
            return self._finish(request, "error", None,
                                f"{type(exc).__name__}: {exc}",
                                started, retries)
        except Exception as exc:  # noqa: BLE001 - front door must never raise at a tenant
            metrics.counter("service_errors_total", op=request.op).inc()
            metrics.counter("service_unexpected_errors_total",
                            op=request.op).inc()
            return self._finish(request, "error", None,
                                f"{type(exc).__name__}: {exc}",
                                started, retries)
        finally:
            self.admission.release()
        return self._finish(request, "ok", result, None, started, retries)

    def _finish(self, request: ServiceRequest, status: str, result: Any,
                error: str | None, started: float,
                retries: int) -> ServiceResponse:
        elapsed = time.perf_counter() - started
        metrics = self._telemetry.metrics
        metrics.counter("service_requests_total", op=request.op,
                        outcome=status).inc()
        metrics.histogram("service_request_seconds",
                          op=request.op).observe(elapsed)
        return ServiceResponse(
            tenant=request.tenant, op=request.op, status=status,
            result=result, error=error, elapsed_seconds=elapsed,
            retries=retries,
        )

    # ------------------------------------------------------------------
    # operation handlers (return (result, retries))
    # ------------------------------------------------------------------

    def _op_query(self, request: ServiceRequest) -> tuple[Any, int]:
        payload = request.payload
        table = payload.get("table")
        if not table:
            raise ServiceError("query payload needs a 'table'")
        with self._database.snapshot() as snap:
            query = snap.query(table)
            predicate = payload.get("predicate")
            if predicate is not None:
                query = query.where(predicate)
            order_by = payload.get("order_by")
            if order_by:
                query = query.order_by(
                    order_by, descending=bool(payload.get("descending")))
            limit = payload.get("limit")
            if limit is not None:
                query = query.limit(int(limit))
            columns = payload.get("columns")
            if columns:
                query = query.select(*columns)
            rows = query.all()
        self.quotas.check_rows(request.tenant, len(rows))
        return rows, 0

    def _op_ingest(self, request: ServiceRequest) -> tuple[Any, int]:
        payload = request.payload
        table = payload.get("table")
        if not table:
            raise ServiceError("ingest payload needs a 'table'")
        rows: Sequence[Mapping[str, Any]] = payload.get("rows") or ()
        updates: Sequence[Mapping[str, Any]] = payload.get("updates") or ()
        self.quotas.check_rows(request.tenant, len(rows) + len(updates))
        metrics = self._telemetry.metrics
        attempts = max(1, self.config.conflict_retries)
        for attempt in range(attempts):
            try:
                with self._database.transaction():
                    inserted = [
                        self._database.insert(table, row) for row in rows
                    ]
                    updated = 0
                    for update in updates:
                        rowid = self._database.rowid_for(
                            table, update["key"])
                        self._database.update(
                            table, rowid, update["changes"])
                        updated += 1
                return ({"inserted": len(inserted), "updated": updated,
                         "rowids": inserted}, attempt)
            except TransactionConflictError:
                metrics.counter("service_conflict_retries_total",
                                table=table).inc()
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover - loop always returns or raises

    def _op_audit(self, request: ServiceRequest) -> tuple[Any, int]:
        vault = self._require_vault()
        report = vault.verify()
        result: dict[str, Any] = {
            "objects_checked": report.objects_checked,
            "replicas_checked": report.replicas_checked,
            "corrupt": len(report.corrupt),
            "repaired": 0,
        }
        if request.payload.get("repair", True) and report.corrupt:
            repair = vault.repair(report)
            result["repaired"] = len(repair)
        return result, 0

    def _op_vault_status(self, request: ServiceRequest) -> tuple[Any, int]:
        return self._require_vault().status(), 0

    def _require_vault(self) -> Any:
        if self._vault is None:
            raise ServiceError(
                "this service was built without a preservation vault")
        return self._vault

    # ------------------------------------------------------------------
    # ergonomic wrappers
    # ------------------------------------------------------------------

    def query(self, tenant: str, table: str,
              **payload: Any) -> ServiceResponse:
        payload["table"] = table
        return self.submit(ServiceRequest(tenant, "query", payload))

    def ingest(self, tenant: str, table: str,
               rows: Sequence[Mapping[str, Any]] = (),
               updates: Sequence[Mapping[str, Any]] = ()) -> ServiceResponse:
        return self.submit(ServiceRequest(
            tenant, "ingest",
            {"table": table, "rows": list(rows), "updates": list(updates)},
        ))

    def audit(self, tenant: str, repair: bool = True) -> ServiceResponse:
        return self.submit(
            ServiceRequest(tenant, "audit", {"repair": repair}))

    def vault_status(self, tenant: str) -> ServiceResponse:
        return self.submit(ServiceRequest(tenant, "vault_status"))
