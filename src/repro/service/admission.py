"""Admission control: bounded in-flight requests with a bounded queue.

The controller enforces two limits:

* ``max_in_flight`` — requests executing at once; excess arrivals wait;
* ``max_queue_depth`` — waiters allowed; beyond that (or when a waiter's
  ``queue_timeout_seconds`` expires) the request is rejected with
  :class:`~repro.errors.AdmissionRejectedError` instead of piling up.

This is the classic "fail fast at the door" shape: under overload the
service sheds load deterministically rather than letting latency grow
without bound.  The gauges ``service_in_flight`` and
``service_queue_depth`` expose the live state; rejections count under
``service_admission_rejected_total`` labeled by reason.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import AdmissionRejectedError
from repro.telemetry import Telemetry, get_telemetry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting semaphore with a bounded, timed wait queue."""

    def __init__(self, max_in_flight: int = 8, max_queue_depth: int = 16,
                 queue_timeout_seconds: float = 5.0,
                 telemetry: Telemetry | None = None) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_seconds = queue_timeout_seconds
        self._telemetry = telemetry or get_telemetry()
        self._cond = threading.Condition()
        self._in_flight = 0
        self._waiting = 0

    def __repr__(self) -> str:
        return (
            f"AdmissionController(in_flight={self._in_flight}/"
            f"{self.max_in_flight}, queued={self._waiting}/"
            f"{self.max_queue_depth})"
        )

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queued(self) -> int:
        return self._waiting

    def _gauges(self) -> None:
        metrics = self._telemetry.metrics
        metrics.gauge("service_in_flight").set(self._in_flight)
        metrics.gauge("service_queue_depth").set(self._waiting)

    def _reject(self, reason: str) -> AdmissionRejectedError:
        self._telemetry.metrics.counter(
            "service_admission_rejected_total", reason=reason).inc()
        return AdmissionRejectedError(
            f"admission rejected ({reason}): {self._in_flight} in flight, "
            f"{self._waiting} queued"
        )

    def acquire(self) -> None:
        """Take an execution slot, waiting in the bounded queue if the
        service is saturated; raises :class:`AdmissionRejectedError`
        when the queue is full or the wait times out."""
        deadline = time.monotonic() + self.queue_timeout_seconds
        with self._cond:
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                self._gauges()
                return
            if self._waiting >= self.max_queue_depth:
                raise self._reject("queue_full")
            self._waiting += 1
            self._gauges()
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise self._reject("queue_timeout")
                    self._cond.wait(remaining)
                self._in_flight += 1
            finally:
                self._waiting -= 1
                self._gauges()

    def release(self) -> None:
        """Return an execution slot and wake one waiter."""
        with self._cond:
            if self._in_flight <= 0:
                raise RuntimeError("release() without matching acquire()")
            self._in_flight -= 1
            self._gauges()
            self._cond.notify()

    @contextmanager
    def slot(self) -> Iterator[None]:
        """``with controller.slot():`` — acquire/release as a scope."""
        self.acquire()
        try:
            yield
        finally:
            self.release()
