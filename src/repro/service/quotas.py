"""Per-tenant quotas: fixed-window request budgets and row caps.

A :class:`TenantQuota` bounds how many requests a tenant may submit per
fixed window and how many rows one request may touch.  The
:class:`QuotaRegistry` charges requests against the calling tenant's
quota (falling back to an optional default quota) and raises
:class:`~repro.errors.QuotaExceededError` when a budget is exhausted;
rejections count under ``service_quota_rejected_total`` labeled by
tenant and reason.

The clock is injectable (defaults to :func:`time.monotonic`) so tests
and the deterministic benchmark can drive window rollover explicitly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import QuotaExceededError
from repro.telemetry import Telemetry, get_telemetry

__all__ = ["TenantQuota", "QuotaRegistry"]


@dataclass(frozen=True)
class TenantQuota:
    """Budget for one tenant.

    ``requests_per_window`` of ``None`` means unlimited requests;
    ``max_rows_per_request`` of ``None`` means no row cap.
    """

    requests_per_window: int | None = None
    window_seconds: float = 60.0
    max_rows_per_request: int | None = None

    def __post_init__(self) -> None:
        if self.requests_per_window is not None \
                and self.requests_per_window < 1:
            raise ValueError("requests_per_window must be >= 1 or None")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.max_rows_per_request is not None \
                and self.max_rows_per_request < 1:
            raise ValueError("max_rows_per_request must be >= 1 or None")


class QuotaRegistry:
    """Tracks per-tenant fixed windows and charges requests."""

    def __init__(self, default: TenantQuota | None = None,
                 clock: Callable[[], float] | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self._default = default
        self._clock = clock or time.monotonic
        self._telemetry = telemetry or get_telemetry()
        self._quotas: dict[str, TenantQuota] = {}
        #: tenant -> (window start, requests charged in window)
        self._windows: dict[str, tuple[float, int]] = {}
        self._lock = threading.Lock()

    def set_quota(self, tenant: str, quota: TenantQuota | None) -> None:
        with self._lock:
            if quota is None:
                self._quotas.pop(tenant, None)
            else:
                self._quotas[tenant] = quota
            self._windows.pop(tenant, None)

    def quota_for(self, tenant: str) -> TenantQuota | None:
        return self._quotas.get(tenant, self._default)

    def _reject(self, tenant: str, reason: str,
                detail: str) -> QuotaExceededError:
        self._telemetry.metrics.counter(
            "service_quota_rejected_total", tenant=tenant,
            reason=reason).inc()
        return QuotaExceededError(f"tenant {tenant!r}: {detail}")

    def charge(self, tenant: str) -> None:
        """Charge one request; raises once the window budget is spent."""
        quota = self.quota_for(tenant)
        if quota is None or quota.requests_per_window is None:
            return
        now = self._clock()
        with self._lock:
            start, used = self._windows.get(tenant, (now, 0))
            if now - start >= quota.window_seconds:
                start, used = now, 0
            if used >= quota.requests_per_window:
                raise self._reject(
                    tenant, "requests",
                    f"request budget of {quota.requests_per_window} per "
                    f"{quota.window_seconds:g}s window exhausted",
                )
            self._windows[tenant] = (start, used + 1)

    def check_rows(self, tenant: str, rows: int) -> None:
        """Enforce the per-request row cap (touched or returned rows)."""
        quota = self.quota_for(tenant)
        if quota is None or quota.max_rows_per_request is None:
            return
        if rows > quota.max_rows_per_request:
            raise self._reject(
                tenant, "rows",
                f"request touches {rows} rows, cap is "
                f"{quota.max_rows_per_request}",
            )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                tenant: {"window_start": start, "used": used}
                for tenant, (start, used) in sorted(self._windows.items())
            }
