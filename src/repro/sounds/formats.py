"""Recording equipment and audio formats, with production eras.

"Earlier animal recordings were commonly stored in magnetic tapes ...
More recently, recordings use devices that save data in a variety of
digital formats, such as ATRAC, AIFF, WAV and MP3."

Each device, microphone and format carries the year range in which it
plausibly appears in field metadata.  The cleaning step uses these eras
as CHECK-style domain rules: a 1965 recording claiming MP3 format is a
metadata error, not a time machine.
"""

from __future__ import annotations

__all__ = ["Era", "RECORDING_DEVICES", "MICROPHONE_MODELS", "SOUND_FORMATS",
           "devices_available", "formats_available", "microphones_available",
           "era_consistent"]


class Era:
    """A named item with its plausible year range (inclusive)."""

    __slots__ = ("name", "first_year", "last_year")

    def __init__(self, name: str, first_year: int,
                 last_year: int = 2100) -> None:
        self.name = name
        self.first_year = first_year
        self.last_year = last_year

    def available_in(self, year: int) -> bool:
        return self.first_year <= year <= self.last_year

    def __repr__(self) -> str:
        return f"Era({self.name}, {self.first_year}-{self.last_year})"


RECORDING_DEVICES: tuple[Era, ...] = (
    Era("Nagra III", 1958, 1985),
    Era("Uher 4000 Report", 1961, 1990),
    Era("Sony TC-D5M", 1980, 2005),
    Era("Sony TCD-D8 DAT", 1992, 2008),
    Era("Sony MZ-R50 MiniDisc", 1997, 2010),
    Era("Marantz PMD660", 2004),
    Era("Marantz PMD661", 2009),
    Era("Zoom H4n", 2009),
    Era("Tascam DR-40", 2011),
)

MICROPHONE_MODELS: tuple[Era, ...] = (
    Era("Sennheiser MKH 815", 1970, 2000),
    Era("Sennheiser ME66", 1990),
    Era("Sennheiser ME67", 1990),
    Era("Audio-Technica AT815b", 1995),
    Era("Telinga Pro parabolic", 1985),
    Era("Sony ECM-Z200", 1992, 2010),
)

SOUND_FORMATS: tuple[Era, ...] = (
    Era("magnetic tape", 1950, 2000),
    Era("WAV", 1992),
    Era("AIFF", 1988),
    Era("MP3", 1995),
    Era("ATRAC", 1992, 2013),
)

#: recording frequency (sampling rate) options in kHz
FREQUENCIES_KHZ: tuple[float, ...] = (22.05, 32.0, 44.1, 48.0, 96.0)


def _available(items: tuple[Era, ...], year: int) -> list[Era]:
    return [item for item in items if item.available_in(year)]


def devices_available(year: int) -> list[Era]:
    """Recording devices plausibly in use in ``year``."""
    return _available(RECORDING_DEVICES, year)


def microphones_available(year: int) -> list[Era]:
    return _available(MICROPHONE_MODELS, year)


def formats_available(year: int) -> list[Era]:
    return _available(SOUND_FORMATS, year)


def _era_for(items: tuple[Era, ...], name: str) -> Era | None:
    for item in items:
        if item.name == name:
            return item
    return None


def era_consistent(kind: str, name: str, year: int) -> bool | None:
    """Is ``name`` a plausible ``kind`` for a recording made in ``year``?

    ``kind`` is ``"device"``, ``"microphone"`` or ``"format"``.  Returns
    ``None`` for names we have no era data for (unknown is not wrong).
    """
    table = {
        "device": RECORDING_DEVICES,
        "microphone": MICROPHONE_MODELS,
        "format": SOUND_FORMATS,
    }.get(kind)
    if table is None:
        raise ValueError(f"unknown era kind {kind!r}")
    era = _era_for(table, name)
    if era is None:
        return None
    return era.available_in(year)
