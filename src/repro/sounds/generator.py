"""The seeded FNJV-like collection generator.

Calibrated to the paper's published figures:

* 11 898 records,
* 1 929 distinct species names (after syntactic normalization),
* exactly 134 of those names outdated with respect to the Catalogue of
  Life as of 2013 (7 % of the names analyzed),
* *Elachistocleis ovalis* among the outdated names (the paper's
  example).

Besides the species names, the generator plants every defect class the
curation pipeline must find, and returns a :class:`GroundTruth`
describing each plant — tests and accuracy metrics are computed against
it, never against the pipeline's own output.

Dirtiness model (rates configurable via :class:`CollectionConfig`):

* **pre-GPS records** — recordings made before ``gps_year`` mostly lack
  coordinates (stage 1.2 geocodes them from the place fields);
* **missing environment** — temperature / conditions / time are often
  blank (stage 1.3 fills them from the climate archive);
* **syntactic slips** — a fraction of species strings carry case errors
  ("SCINAX fuscomarginatus"); normalization recovers the canonical name;
* **misidentifications** — a few records carry a species label whose
  coordinates lie in another species' range (stage 2 flags them);
* **anachronisms** — a few records claim a format/device that did not
  exist at the recording date (domain cleaning flags them).
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Any

from repro.geo.climate import ClimateArchive
from repro.geo.gazetteer import Gazetteer
from repro.sounds.collection import SoundCollection
from repro.sounds.fields import (
    ATMOSPHERIC_CONDITIONS,
    HABITATS,
    MICRO_HABITATS,
)
from repro.sounds.formats import (
    FREQUENCIES_KHZ,
    devices_available,
    formats_available,
    microphones_available,
)
from repro.sounds.record import SoundRecord
from repro.taxonomy.catalogue import CatalogueOfLife

__all__ = ["CollectionConfig", "GroundTruth", "generate_collection"]

_RECORDISTS = (
    "J. Vielliard", "W. Silva", "M. Andrade", "L. Toledo", "R. Bastos",
    "C. Guerra", "A. Ferreira", "P. Nunes", "D. Lima", "S. Rocha",
)


class CollectionConfig:
    """Generation parameters, defaulting to the paper's scale."""

    def __init__(self, seed: int = 2013,
                 n_records: int = 11_898,
                 n_distinct_species: int = 1_929,
                 n_outdated_species: int = 134,
                 as_of_year: int = 2013,
                 first_year: int = 1961,
                 last_year: int = 2013,
                 gps_year: int = 1995,
                 pre_gps_missing_coords: float = 0.92,
                 post_gps_missing_coords: float = 0.10,
                 case_error_rate: float = 0.012,
                 typo_rate: float = 0.0,
                 n_misidentified: int = 15,
                 # upper bound: anachronisms only arise on records old
                 # enough that some modern format did not exist yet
                 n_anachronisms: int = 40,
                 missing_rates: dict[str, float] | None = None,
                 zipf_exponent: float = 0.85) -> None:
        if n_outdated_species > n_distinct_species:
            raise ValueError("more outdated names than distinct names")
        if n_records < n_distinct_species:
            raise ValueError("fewer records than distinct species")
        self.seed = seed
        self.n_records = n_records
        self.n_distinct_species = n_distinct_species
        self.n_outdated_species = n_outdated_species
        self.as_of_year = as_of_year
        self.first_year = first_year
        self.last_year = last_year
        self.gps_year = gps_year
        self.pre_gps_missing_coords = pre_gps_missing_coords
        self.post_gps_missing_coords = post_gps_missing_coords
        self.case_error_rate = case_error_rate
        # genuine misspellings (one-character edits) that normalization
        # cannot undo; 0.0 by default because the paper's 1 929 distinct
        # names are counted after syntactic cleaning only
        self.typo_rate = typo_rate
        self.n_misidentified = n_misidentified
        self.n_anachronisms = n_anachronisms
        self.zipf_exponent = zipf_exponent
        self.missing_rates = missing_rates or {
            "collect_time": 0.35,
            "gender": 0.40,
            "number_of_individuals": 0.22,
            "habitat": 0.28,
            "micro_habitat": 0.55,
            "air_temperature_c": 0.60,
            "atmospheric_conditions": 0.50,
            "city": 0.08,
            "location": 0.30,
            "phylum": 0.05,
            "order_": 0.10,
            "family": 0.07,
            "recording_device": 0.15,
            "microphone_model": 0.35,
            "sound_file_format": 0.12,
            "frequency_khz": 0.45,
            "duration_s": 0.25,
        }


class GroundTruth:
    """Everything the generator planted, for verification."""

    def __init__(self) -> None:
        #: the 134 outdated names (keys) -> accepted name as of 2013
        self.outdated_species: dict[str, str] = {}
        #: the 1 795 names that are still accepted
        self.accepted_species: list[str] = []
        #: record_id -> (stored string, canonical name) for case slips
        self.case_errors: dict[int, tuple[str, str]] = {}
        #: record_id -> (misspelled string, true name) for genuine typos
        self.typos: dict[int, tuple[str, str]] = {}
        #: record_id -> species whose range the coordinates actually match
        self.misidentified: dict[int, str] = {}
        #: record_ids with era-inconsistent device/format metadata
        self.anachronisms: set[int] = set()
        #: species -> home (state, [cities]) used for spatial coherence
        self.home_ranges: dict[str, tuple[str, list[str]]] = {}
        #: record_id -> year, for records generated without coordinates
        self.missing_coordinates: set[int] = set()

    @property
    def distinct_names(self) -> int:
        return len(self.outdated_species) + len(self.accepted_species)

    @property
    def expected_name_accuracy(self) -> float:
        """The paper's accuracy: fraction of distinct names up to date."""
        total = self.distinct_names
        if total == 0:
            return 1.0
        return 1.0 - len(self.outdated_species) / total

    def all_species_names(self) -> list[str]:
        return sorted(self.accepted_species)


def _zipf_allocation(n_items: int, total: int, exponent: float,
                     rng: random.Random) -> list[int]:
    """Counts per item: Zipf-shaped, each >= 1, summing to ``total``."""
    weights = [1.0 / (rank ** exponent) for rank in range(1, n_items + 1)]
    weight_sum = sum(weights)
    counts = [max(1, int(total * w / weight_sum)) for w in weights]
    # repair the rounding drift
    drift = total - sum(counts)
    indices = list(range(n_items))
    while drift != 0:
        index = rng.choice(indices)
        if drift > 0:
            counts[index] += 1
            drift -= 1
        elif counts[index] > 1:
            counts[index] -= 1
            drift += 1
    rng.shuffle(counts)
    return counts


def _typo(name: str, rng: random.Random) -> str:
    """A one-character misspelling that stays a parseable binomial.

    Edits target the epithet (never the genus's capital letter) so the
    damage is subtle — the kind of slip fuzzy resolution can repair.
    """
    genus, __, epithet = name.partition(" ")
    if len(epithet) < 4:
        return name
    style = rng.randrange(3)
    position = rng.randrange(1, len(epithet) - 1)
    if style == 0:  # drop a letter
        mutated = epithet[:position] + epithet[position + 1:]
    elif style == 1:  # double a letter
        mutated = epithet[:position] + epithet[position] + epithet[position:]
    else:  # swap neighbours
        mutated = (epithet[:position] + epithet[position + 1]
                   + epithet[position] + epithet[position + 2:])
    return f"{genus} {mutated}"


def _case_slip(name: str, rng: random.Random) -> str:
    """A capitalization error that normalization can undo."""
    genus, __, epithet = name.partition(" ")
    style = rng.randrange(3)
    if style == 0:
        return f"{genus.upper()} {epithet}"
    if style == 1:
        return f"{genus} {epithet.capitalize()}"
    return f"{genus.lower()} {epithet}"


def generate_collection(
    catalogue: CatalogueOfLife,
    gazetteer: Gazetteer | None = None,
    climate: ClimateArchive | None = None,
    config: CollectionConfig | None = None,
) -> tuple[SoundCollection, GroundTruth]:
    """Generate the collection and its ground truth.

    ``catalogue`` supplies the species names — both the currently
    accepted pool and the outdated pool (names with a published change by
    ``config.as_of_year``).
    """
    config = config or CollectionConfig()
    gazetteer = gazetteer or Gazetteer(seed=config.seed)
    climate = climate or ClimateArchive()
    rng = random.Random(config.seed)
    truth = GroundTruth()

    # ------------------------------------------------------------------
    # 1. choose the species-name pools
    # ------------------------------------------------------------------
    horizon = catalogue.as_of(config.as_of_year)
    outdated_pool = sorted(horizon.outdated_names())
    accepted_pool = sorted(
        set(horizon.species_names()) - set(outdated_pool)
    )
    if len(outdated_pool) < config.n_outdated_species:
        raise ValueError(
            f"catalogue offers {len(outdated_pool)} outdated names, "
            f"{config.n_outdated_species} needed"
        )
    n_accepted = config.n_distinct_species - config.n_outdated_species
    if len(accepted_pool) < n_accepted:
        raise ValueError(
            f"catalogue offers {len(accepted_pool)} accepted names, "
            f"{n_accepted} needed"
        )

    outdated = set()
    anchor = "Elachistocleis ovalis"
    if anchor in outdated_pool:
        outdated.add(anchor)
    remaining = [name for name in outdated_pool if name not in outdated]
    outdated.update(rng.sample(remaining,
                               config.n_outdated_species - len(outdated)))
    accepted = rng.sample(accepted_pool, n_accepted)

    for name in sorted(outdated):
        current, __ = horizon.registry.current_name(name,
                                                    config.as_of_year)
        truth.outdated_species[name] = current
    truth.accepted_species = sorted(accepted)
    species_names = sorted(outdated) + sorted(accepted)
    rng.shuffle(species_names)

    # ------------------------------------------------------------------
    # 2. records per species + home ranges
    # ------------------------------------------------------------------
    counts = _zipf_allocation(len(species_names), config.n_records,
                              config.zipf_exponent, rng)
    states = gazetteer.states("Brasil")
    for name in species_names:
        state = rng.choice(states)
        cities = gazetteer.city_names(country="Brasil", state=state)
        home_cities = rng.sample(cities, min(len(cities),
                                             rng.randint(2, 4)))
        truth.home_ranges[name] = (state, home_cities)

    # ------------------------------------------------------------------
    # 3. emit the records
    # ------------------------------------------------------------------
    collection = SoundCollection()
    record_id = 0
    plan: list[tuple[str, int]] = [
        (name, count) for name, count in zip(species_names, counts)
    ]
    rows: list[SoundRecord] = []
    for name, count in plan:
        for __ in range(count):
            record_id += 1
            rows.append(_make_record(
                record_id, name, catalogue, gazetteer, climate,
                config, rng, truth,
            ))

    # 4. plant misidentifications: swap coordinates between two species
    #    whose home states differ.
    position_of = {record.record_id: index
                   for index, record in enumerate(rows)}
    candidates = [r for r in rows if r.coordinates is not None]
    rng.shuffle(candidates)
    planted = 0
    for record in candidates:
        if planted >= config.n_misidentified:
            break
        this_state = truth.home_ranges.get(record.species, ("", []))[0]
        donors = [
            other for other in candidates
            if other.species != record.species
            and truth.home_ranges.get(other.species, ("", []))[0]
            not in ("", this_state)
            and other.record_id not in truth.misidentified
        ]
        if not donors:
            break
        donor = rng.choice(donors)
        index = position_of[record.record_id]
        rows[index] = record.replace(latitude=donor.latitude,
                                     longitude=donor.longitude,
                                     state=donor.state, city=donor.city)
        truth.misidentified[record.record_id] = donor.species
        planted += 1

    collection.add_many(rows)
    return collection, truth


def _make_record(record_id: int, species_name: str,
                 catalogue: CatalogueOfLife, gazetteer: Gazetteer,
                 climate: ClimateArchive, config: CollectionConfig,
                 rng: random.Random, truth: GroundTruth) -> SoundRecord:
    values: dict[str, Any] = {"record_id": record_id}

    # --- when -----------------------------------------------------------
    # Legacy collections skew old: triangular distribution peaking early.
    year = int(rng.triangular(config.first_year, config.last_year,
                              config.first_year + 12))
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    date = _dt.date(year, month, day)
    values["collect_date"] = date
    hour = rng.choices(range(24),
                       weights=[3, 2, 1, 1, 8, 12, 10, 6, 3, 2, 1, 1,
                                1, 1, 1, 2, 3, 6, 12, 14, 10, 8, 6, 4])[0]
    minute = rng.randrange(0, 60, 5)
    values["collect_time"] = f"{hour:02d}:{minute:02d}"

    # --- where -----------------------------------------------------------
    state, home_cities = truth.home_ranges[species_name]
    city = rng.choice(home_cities)
    values["country"] = "Brasil"
    values["state"] = state
    values["city"] = city
    values["location"] = rng.choice([
        f"Fazenda {city.split()[-1]}", f"Reserva {state.split()[0]}",
        f"Mata do {city.split()[0]}", f"Estrada {city} km {rng.randint(1, 80)}",
    ])
    place = gazetteer.try_resolve(country="Brasil", state=state, city=city)
    missing_coords_p = (
        config.pre_gps_missing_coords if year < config.gps_year
        else config.post_gps_missing_coords
    )
    if place is not None and rng.random() >= missing_coords_p:
        values["latitude"] = round(
            place.latitude + rng.gauss(0, 0.05), 5
        )
        values["longitude"] = round(
            place.longitude + rng.gauss(0, 0.05), 5
        )
    else:
        truth.missing_coordinates.add(record_id)

    # --- environment -------------------------------------------------------
    values["habitat"] = rng.choice(HABITATS)
    values["micro_habitat"] = rng.choice(MICRO_HABITATS)
    if place is not None:
        reading = climate.reading(place.latitude, place.longitude, date,
                                  hour=hour)
        values["air_temperature_c"] = round(
            reading.temperature_c + rng.gauss(0, 0.8), 1
        )
        values["atmospheric_conditions"] = (
            reading.conditions
            if reading.conditions in ATMOSPHERIC_CONDITIONS
            else "clear"
        )

    # --- what ------------------------------------------------------------
    lineage = catalogue.backbone.lineage_of(species_name) or {}
    values["phylum"] = lineage.get("phylum")
    values["class_"] = lineage.get("class")
    values["order_"] = lineage.get("order")
    values["family"] = lineage.get("family")
    values["genus"] = lineage.get(
        "genus", species_name.split()[0]
    )
    stored_name = species_name
    if rng.random() < config.case_error_rate:
        stored_name = _case_slip(species_name, rng)
        truth.case_errors[record_id] = (stored_name, species_name)
    elif config.typo_rate and rng.random() < config.typo_rate:
        mutated = _typo(species_name, rng)
        if mutated != species_name:
            stored_name = mutated
            truth.typos[record_id] = (stored_name, species_name)
    values["species"] = stored_name
    values["gender"] = rng.choice(
        ["male", "female", "undetermined", "mixed"]
    )
    values["number_of_individuals"] = rng.choices(
        [1, 2, 3, 4, 5, 8, 12], weights=[50, 20, 10, 8, 6, 4, 2]
    )[0]

    # --- how ------------------------------------------------------------
    devices = devices_available(year)
    microphones = microphones_available(year)
    formats = formats_available(year)
    values["recording_device"] = rng.choice(devices).name if devices else None
    values["microphone_model"] = (
        rng.choice(microphones).name if microphones else None
    )
    values["sound_file_format"] = (
        rng.choice(formats).name if formats else None
    )
    if len(truth.anachronisms) < config.n_anachronisms and rng.random() < 0.02:
        # claim a format from outside the era (a re-digitization slip)
        wrong = [e for e in formats_available(2013)
                 if not e.available_in(year)]
        if wrong:
            values["sound_file_format"] = rng.choice(wrong).name
            truth.anachronisms.add(record_id)
    values["frequency_khz"] = rng.choice(FREQUENCIES_KHZ)
    values["duration_s"] = round(rng.uniform(5, 600), 1)
    values["recordist"] = rng.choice(_RECORDISTS)

    # --- knock out fields per the missingness model -------------------------
    for field, rate in config.missing_rates.items():
        if values.get(field) is not None and rng.random() < rate:
            values[field] = None

    return SoundRecord(**values)
