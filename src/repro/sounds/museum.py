"""Museum specimen metadata — the paper's *other* observation kind.

"We point out that we have worked with other kinds of biodiversity
observations, e.g., animals in museum collections."

A museum specimen is a different artifact from a sound recording —
there is a preserved object, a collector, a catalog number, a
preparation type — yet it asserts the same core observation (a taxon,
a place, a date).  :func:`generate_museum_collection` builds a seeded
specimen table drawing names from the same catalogue (so the same
outdated-name curation applies), and
:func:`museum_observation` maps specimens into the uniform observation
model, where they become cross-queryable with the sound archive.
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Any

from repro.geo.gazetteer import Gazetteer
from repro.observations.model import Entity, Measurement, Observation
from repro.storage import Column, Database, TableSchema
from repro.storage import column_types as ct
from repro.taxonomy.catalogue import CatalogueOfLife

__all__ = ["MUSEUM_TABLE", "museum_schema", "generate_museum_collection",
           "museum_observation"]

MUSEUM_TABLE = "specimens"

_PREPARATIONS = ("alcohol", "skin", "skeleton", "pinned", "tissue")
_COLLECTORS = ("E. Kraus", "M. Prado", "H. Siqueira", "T. Ueda",
               "V. Braga", "A. Cunha")


def museum_schema(table_name: str = MUSEUM_TABLE) -> TableSchema:
    return TableSchema(table_name, [
        Column("catalog_number", ct.TEXT),
        Column("species", ct.TEXT),
        Column("collect_date", ct.DATE),
        Column("country", ct.TEXT),
        Column("state", ct.TEXT),
        Column("city", ct.TEXT),
        Column("latitude", ct.REAL),
        Column("longitude", ct.REAL),
        Column("collector", ct.TEXT),
        Column("preparation", ct.TEXT,
               check=lambda v: v in _PREPARATIONS),
        Column("body_length_mm", ct.REAL,
               check=lambda v: 0 < v < 5000),
        Column("mass_g", ct.REAL, check=lambda v: 0 < v < 500000),
        Column("sex", ct.TEXT,
               check=lambda v: v in ("male", "female", "undetermined")),
    ], primary_key="catalog_number")


def generate_museum_collection(catalogue: CatalogueOfLife,
                               n_specimens: int = 400,
                               seed: int = 2013,
                               gazetteer: Gazetteer | None = None,
                               database: Database | None = None,
                               species_pool: list[str] | None = None) -> Database:
    """A seeded specimen table; returns its database."""
    rng = random.Random(seed)
    gazetteer = gazetteer or Gazetteer(seed=seed)
    database = database or Database("museum")
    if not database.has_table(MUSEUM_TABLE):
        database.create_table(museum_schema())
        database.create_index(MUSEUM_TABLE, "species", "hash")
    if species_pool is None:
        species_pool = catalogue.species_names(include_outdated=True)
    states = gazetteer.states("Brasil")
    for index in range(1, n_specimens + 1):
        species = rng.choice(species_pool)
        state = rng.choice(states)
        cities = gazetteer.city_names(country="Brasil", state=state)
        city = rng.choice(cities)
        place = gazetteer.try_resolve(country="Brasil", state=state,
                                      city=city)
        year = rng.randint(1950, 2013)
        database.insert(MUSEUM_TABLE, {
            "catalog_number": f"ZUEC-{index:05d}",
            "species": species,
            "collect_date": _dt.date(year, rng.randint(1, 12),
                                     rng.randint(1, 28)),
            "country": "Brasil",
            "state": state,
            "city": city,
            "latitude": None if place is None
            else round(place.latitude + rng.gauss(0, 0.05), 5),
            "longitude": None if place is None
            else round(place.longitude + rng.gauss(0, 0.05), 5),
            "collector": rng.choice(_COLLECTORS),
            "preparation": rng.choice(_PREPARATIONS),
            "body_length_mm": round(rng.uniform(8, 400), 1),
            "mass_g": round(rng.uniform(0.5, 2000), 1),
            "sex": rng.choice(["male", "female", "undetermined"]),
        })
    return database


def museum_observation(row: dict[str, Any],
                       source: str = "museum") -> Observation:
    """One specimen row as a taxon observation."""
    measurements = [
        Measurement("specimen_collected", True),
        Measurement("preparation", row["preparation"]),
    ]
    if row.get("body_length_mm") is not None:
        measurements.append(Measurement("body_length",
                                        row["body_length_mm"], unit="mm"))
    if row.get("mass_g") is not None:
        measurements.append(Measurement("mass", row["mass_g"], unit="g"))
    if row.get("sex"):
        measurements.append(Measurement("sex", row["sex"]))
    date = row.get("collect_date")
    observed_at = None
    if date is not None:
        observed_at = _dt.datetime(date.year, date.month, date.day)
    return Observation(
        f"{source}/{row['catalog_number']}",
        Entity("taxon", row["species"]),
        measurements=measurements,
        observed_at=observed_at,
        latitude=row.get("latitude"),
        longitude=row.get("longitude"),
        observer=row.get("collector") or "",
        source=source,
    )
