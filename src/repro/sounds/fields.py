"""Table II: the FNJV metadata fields.

The paper publishes 22 of the collection's 51 fields, in three groups:

1. *what was observed* — taxonomy and individuals;
2. *when / where / environment* — observation conditions;
3. *how* — recording features and devices.

Each field gets a :class:`FieldSpec` with its group, storage type and an
optional domain validator (the "checking attribute domains" of stage
1.1).  :func:`recordings_schema` turns the specs into the storage
engine's table schema.  A few auxiliary fields (id, recordist,
coordinates) represent the unpublished remainder of the 51.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.storage import Column, TableSchema
from repro.storage import column_types as ct
from repro.storage.types import ColumnType

__all__ = ["FieldSpec", "FIELD_GROUPS", "FIELDS", "field_spec",
           "field_names", "recordings_schema", "GROUP_LABELS"]

GROUP_LABELS = {
    1: "what was observed",
    2: "when / where / environment",
    3: "how it was recorded",
    0: "auxiliary",
}

_GENDERS = {"male", "female", "undetermined", "mixed"}
_TIME_PATTERN = re.compile(r"^([01]\d|2[0-3]):[0-5]\d$")

HABITATS = (
    "tropical rainforest", "atlantic forest", "cerrado", "caatinga",
    "pantanal wetland", "gallery forest", "grassland", "mangrove",
    "urban area", "agricultural field",
)
MICRO_HABITATS = (
    "canopy", "understory", "forest floor", "pond margin", "stream",
    "bromeliad", "tree trunk", "leaf litter", "open ground", "marsh",
)
ATMOSPHERIC_CONDITIONS = (
    "clear", "partly cloudy", "cloudy", "light rain", "rain", "storm",
    "fog", "windy",
)


def _is_capitalized_word(value: Any) -> bool:
    return (
        isinstance(value, str) and len(value) >= 2
        and value[0].isupper()
        and value.replace("-", "").replace(" ", "").isalpha()
    )


def _valid_time(value: Any) -> bool:
    return isinstance(value, str) and bool(_TIME_PATTERN.match(value))


def _positive_int(value: Any) -> bool:
    return isinstance(value, int) and value >= 1


def _plausible_temperature(value: Any) -> bool:
    return isinstance(value, (int, float)) and -10.0 <= value <= 50.0


def _plausible_frequency(value: Any) -> bool:
    return isinstance(value, (int, float)) and 8.0 <= value <= 200.0


def _valid_latitude(value: Any) -> bool:
    return isinstance(value, (int, float)) and -90.0 <= value <= 90.0


def _valid_longitude(value: Any) -> bool:
    return isinstance(value, (int, float)) and -180.0 <= value <= 180.0


class FieldSpec:
    """One metadata field: group, type and domain rule.

    ``domain`` returns ``True`` for values inside the field's domain;
    it is *advisory* (cleaning reports violations) rather than a hard
    CHECK constraint, because the original collection must be loadable
    dirty — that is the whole point.
    """

    __slots__ = ("name", "group", "type", "domain", "description")

    def __init__(self, name: str, group: int, type: ColumnType,
                 domain: Callable[[Any], bool] | None = None,
                 description: str = "") -> None:
        self.name = name
        self.group = group
        self.type = type
        self.domain = domain
        self.description = description

    def __repr__(self) -> str:
        return f"FieldSpec({self.name}, group={self.group})"

    def in_domain(self, value: Any) -> bool:
        """Domain check; ``None`` (missing) is never a domain violation —
        missingness is measured by completeness instead."""
        if value is None:
            return True
        if not self.type.validate(value):
            return False
        if self.domain is None:
            return True
        return self.domain(value)


FIELDS: tuple[FieldSpec, ...] = (
    # group 1 — what was observed
    FieldSpec("phylum", 1, ct.TEXT, _is_capitalized_word),
    FieldSpec("class_", 1, ct.TEXT, _is_capitalized_word,
              description="taxonomic class ('class' is reserved in Python)"),
    FieldSpec("order_", 1, ct.TEXT, _is_capitalized_word),
    FieldSpec("family", 1, ct.TEXT, _is_capitalized_word),
    FieldSpec("genus", 1, ct.TEXT, _is_capitalized_word),
    FieldSpec("species", 1, ct.TEXT,
              description="the binomial scientific name as annotated"),
    FieldSpec("gender", 1, ct.TEXT, lambda v: v in _GENDERS),
    FieldSpec("number_of_individuals", 1, ct.INTEGER, _positive_int),
    # group 2 — when / where / environment
    FieldSpec("collect_time", 2, ct.TEXT, _valid_time),
    FieldSpec("collect_date", 2, ct.DATE),
    FieldSpec("country", 2, ct.TEXT, _is_capitalized_word),
    FieldSpec("state", 2, ct.TEXT),
    FieldSpec("city", 2, ct.TEXT),
    FieldSpec("location", 2, ct.TEXT),
    FieldSpec("habitat", 2, ct.TEXT, lambda v: v in HABITATS),
    FieldSpec("micro_habitat", 2, ct.TEXT, lambda v: v in MICRO_HABITATS),
    FieldSpec("air_temperature_c", 2, ct.REAL, _plausible_temperature),
    FieldSpec("atmospheric_conditions", 2, ct.TEXT,
              lambda v: v in ATMOSPHERIC_CONDITIONS),
    # group 3 — how it was recorded
    FieldSpec("recording_device", 3, ct.TEXT),
    FieldSpec("microphone_model", 3, ct.TEXT),
    FieldSpec("sound_file_format", 3, ct.TEXT),
    FieldSpec("frequency_khz", 3, ct.REAL, _plausible_frequency),
    # auxiliary (part of the unpublished 51)
    FieldSpec("record_id", 0, ct.INTEGER),
    FieldSpec("recordist", 0, ct.TEXT),
    FieldSpec("latitude", 0, ct.REAL, _valid_latitude),
    FieldSpec("longitude", 0, ct.REAL, _valid_longitude),
    FieldSpec("duration_s", 0, ct.REAL,
              lambda v: isinstance(v, (int, float)) and 0 < v <= 7200),
    FieldSpec("notes", 0, ct.TEXT),
)

_BY_NAME = {spec.name: spec for spec in FIELDS}

#: group number -> field names, matching Table II's three rows
FIELD_GROUPS: dict[int, tuple[str, ...]] = {
    group: tuple(spec.name for spec in FIELDS if spec.group == group)
    for group in (1, 2, 3, 0)
}


def field_spec(name: str) -> FieldSpec:
    """The :class:`FieldSpec` called ``name`` (KeyError when absent)."""
    return _BY_NAME[name]


def field_names(group: int | None = None) -> list[str]:
    """All field names, or those of one Table II group."""
    if group is None:
        return [spec.name for spec in FIELDS]
    return list(FIELD_GROUPS.get(group, ()))


def recordings_schema(table_name: str = "recordings") -> TableSchema:
    """The storage schema for the collection table.

    Only ``record_id`` and ``species`` are constrained; everything else
    is nullable because legacy metadata arrives incomplete.
    """
    columns = []
    for spec in FIELDS:
        if spec.name == "record_id":
            columns.append(Column(spec.name, spec.type))
        elif spec.name == "species":
            columns.append(Column(spec.name, spec.type, nullable=True))
        else:
            columns.append(Column(spec.name, spec.type))
    return TableSchema(table_name, columns, primary_key="record_id")
