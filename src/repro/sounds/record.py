"""The :class:`SoundRecord` value object.

A thin, validated wrapper over one recording's metadata row.  Rows come
in and out as plain dicts (the storage engine's currency); the wrapper
adds typed access, domain checking and derived values (recording year,
coordinates tuple).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterator, Mapping

from repro.sounds.fields import FIELDS, field_names

__all__ = ["SoundRecord"]


class SoundRecord:
    """One recording's metadata.

    The constructor accepts any subset of the known fields; unknown keys
    raise immediately (catching schema drift early).
    """

    __slots__ = ("_values",)

    def __init__(self, **values: Any) -> None:
        known = set(field_names())
        unknown = set(values) - known
        if unknown:
            raise KeyError(f"unknown metadata fields: {sorted(unknown)}")
        object.__setattr__(self, "_values",
                           {name: values.get(name) for name in known})

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("SoundRecord is immutable; use replace()")

    # -- access ------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        values = object.__getattribute__(self, "_values")
        if name in values:
            return values[name]
        raise AttributeError(name)

    def get(self, name: str, default: Any = None) -> Any:
        value = self._values.get(name)
        return default if value is None else value

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        for name in field_names():
            yield name, self._values.get(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SoundRecord):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        return (
            f"SoundRecord(#{self._values.get('record_id')}, "
            f"{self._values.get('species')!r})"
        )

    # -- derived -----------------------------------------------------------

    @property
    def recording_year(self) -> int | None:
        date = self._values.get("collect_date")
        return date.year if isinstance(date, _dt.date) else None

    @property
    def coordinates(self) -> tuple[float, float] | None:
        lat = self._values.get("latitude")
        lon = self._values.get("longitude")
        if lat is None or lon is None:
            return None
        return (float(lat), float(lon))

    @property
    def has_coordinates(self) -> bool:
        return self.coordinates is not None

    # -- quality-oriented views ----------------------------------------------

    def missing_fields(self, group: int | None = None) -> list[str]:
        """Fields with no value (optionally within one Table II group)."""
        names = field_names(group)
        return [name for name in names if self._values.get(name) is None]

    def domain_violations(self) -> dict[str, Any]:
        """``{field: offending value}`` for out-of-domain values."""
        violations: dict[str, Any] = {}
        for spec in FIELDS:
            value = self._values.get(spec.name)
            if value is not None and not spec.in_domain(value):
                violations[spec.name] = value
        return violations

    def completeness(self, group: int | None = None) -> float:
        """Fraction of (group) fields that are filled."""
        names = field_names(group)
        if not names:
            return 1.0
        filled = sum(
            1 for name in names if self._values.get(name) is not None
        )
        return filled / len(names)

    # -- conversion -----------------------------------------------------------

    def to_row(self) -> dict[str, Any]:
        """The plain dict the storage engine stores."""
        return dict(self._values)

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "SoundRecord":
        known = set(field_names())
        return cls(**{k: v for k, v in row.items() if k in known})

    def replace(self, **changes: Any) -> "SoundRecord":
        """A copy with ``changes`` applied."""
        merged = dict(self._values)
        for key, value in changes.items():
            if key not in merged:
                raise KeyError(f"unknown metadata field {key!r}")
            merged[key] = value
        return SoundRecord(**merged)
