"""The animal-sound collection (FNJV-like).

The Fonoteca Neotropical Jacques Vielliard collection cannot be
redistributed, so this package reconstructs a synthetic collection with
the paper's published shape: 11 898 records, 1 929 distinct species
names, the 22 metadata fields of Table II, and realistic dirtiness
(pre-GPS records without coordinates, missing environmental fields,
typos, outdated species names).

* :mod:`repro.sounds.fields` — Table II field definitions and groups;
* :mod:`repro.sounds.formats` — recording devices, microphones and audio
  formats with their production eras (anachronisms are detectable
  metadata errors);
* :mod:`repro.sounds.record` — the :class:`SoundRecord` value object;
* :mod:`repro.sounds.collection` — the collection on the storage engine;
* :mod:`repro.sounds.generator` — the seeded generator plus the ground
  truth of every planted defect.
"""

from repro.sounds.collection import SoundCollection
from repro.sounds.fields import (
    FIELD_GROUPS,
    FieldSpec,
    field_names,
    field_spec,
    recordings_schema,
)
from repro.sounds.acoustic import AcousticIndex, extract_features
from repro.sounds.generator import CollectionConfig, GroundTruth, generate_collection
from repro.sounds.museum import generate_museum_collection, museum_observation
from repro.sounds.record import SoundRecord

__all__ = [
    "AcousticIndex",
    "extract_features",
    "generate_museum_collection",
    "museum_observation",
    "CollectionConfig",
    "FIELD_GROUPS",
    "FieldSpec",
    "GroundTruth",
    "SoundCollection",
    "SoundRecord",
    "field_names",
    "field_spec",
    "generate_collection",
    "recordings_schema",
]
