"""Acoustic-feature retrieval — the baseline metadata queries beat.

§II-C: "One approach is retrieval based on the analysis of acoustic
features — e.g., by exploiting the physical properties of sound waves.
However, acoustic properties of animal sounds vary widely, hampering
this kind of retrieval.  Another way is to query metadata."

We cannot ship audio, so recordings get *synthetic* acoustic feature
vectors with exactly the statistical structure the paper describes:

* each species has a prototype vector (dominant frequency, bandwidth,
  pulse rate, note duration, spectral entropy, ...), deterministic in
  the species name;
* each recording draws from the prototype with **wide contextual
  variation** — seasonal shift, habitat coloration, background noise —
  "vocalizations are very much sensitive to a wide range of contextual
  variables";
* prototypes of different species overlap, so nearest-neighbour
  retrieval is genuinely hampered, not artificially broken.

:class:`AcousticIndex` offers k-NN search and leave-one-out species
retrieval accuracy — the number bench E8 compares against
metadata-based retrieval.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.hashing import stable_seed
from repro.sounds.record import SoundRecord

__all__ = ["FEATURE_NAMES", "extract_features", "AcousticIndex"]

FEATURE_NAMES = (
    "dominant_frequency_khz",
    "bandwidth_khz",
    "pulse_rate_hz",
    "note_duration_ms",
    "notes_per_call",
    "spectral_entropy",
    "amplitude_modulation",
    "frequency_slope",
)

#: per-feature (low, high) prototype ranges
_RANGES = np.array([
    (0.3, 8.0),     # dominant frequency
    (0.2, 4.0),     # bandwidth
    (5.0, 120.0),   # pulse rate
    (20.0, 800.0),  # note duration
    (1.0, 30.0),    # notes per call
    (0.2, 0.95),    # spectral entropy
    (0.05, 0.9),    # amplitude modulation
    (-2.0, 2.0),    # frequency slope
])

#: fraction of each feature's full range used as within-species sigma —
#: large, per the paper's "vary widely"
_CONTEXT_SIGMA = 0.16
#: extra noise for degraded field recordings
_NOISE_SIGMA = 0.05


def _species_generator(species: str) -> np.random.Generator:
    return np.random.default_rng(stable_seed("proto", species))


def _record_generator(species: str, record_id: int) -> np.random.Generator:
    return np.random.default_rng(stable_seed("rec", species, record_id))


def species_prototype(species: str) -> np.ndarray:
    """The species' prototype vector (deterministic in the name)."""
    rng = _species_generator(species)
    lows, highs = _RANGES[:, 0], _RANGES[:, 1]
    return lows + rng.random(len(FEATURE_NAMES)) * (highs - lows)


def extract_features(record: SoundRecord) -> np.ndarray | None:
    """The recording's feature vector; ``None`` without a species label.

    Context shifts are driven by the record's own metadata (month and
    habitat), so two recordings of one species in different conditions
    sound measurably different — the paper's point.
    """
    if record.species is None:
        return None
    prototype = species_prototype(record.species)
    spans = _RANGES[:, 1] - _RANGES[:, 0]
    rng = _record_generator(record.species, record.record_id or 0)

    context = rng.normal(0.0, _CONTEXT_SIGMA, len(FEATURE_NAMES))
    date = record.collect_date
    if date is not None:
        # seasonal shift: calling effort and pitch drift over the year
        seasonal = np.sin(2 * np.pi * (date.month - 1) / 12)
        context += seasonal * np.array(
            [0.05, 0.02, 0.1, -0.05, 0.08, 0.0, 0.02, 0.0])
    if record.habitat is not None:
        # habitat coloration: closed habitats favour lower frequencies
        closed = record.habitat in ("tropical rainforest",
                                    "atlantic forest", "gallery forest")
        context[0] += -0.06 if closed else 0.03
    noise = rng.normal(0.0, _NOISE_SIGMA, len(FEATURE_NAMES))
    features = prototype + (context + noise) * spans
    return np.clip(features, _RANGES[:, 0] * 0.25, _RANGES[:, 1] * 1.5)


class AcousticIndex:
    """A brute-force k-NN index over recording feature vectors."""

    def __init__(self) -> None:
        self._record_ids: list[int] = []
        self._species: list[str] = []
        self._matrix: np.ndarray | None = None
        self._rows: list[np.ndarray] = []
        self._scale: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._record_ids)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def add(self, record: SoundRecord) -> bool:
        """Index one recording; returns whether it was indexable."""
        features = extract_features(record)
        if features is None:
            return False
        self._record_ids.append(record.record_id)
        self._species.append(record.species)
        self._rows.append(features)
        self._matrix = None
        return True

    def add_all(self, records: Iterable[SoundRecord]) -> int:
        return sum(1 for record in records if self.add(record))

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.vstack(self._rows)
            spread = self._matrix.std(axis=0)
            self._scale = np.where(spread > 0, spread, 1.0)
        return self._matrix

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nearest(self, features: np.ndarray, k: int = 5,
                exclude_index: int | None = None) -> list[tuple[int, str, float]]:
        """The k nearest recordings: (record_id, species, distance),
        standardized euclidean distance."""
        matrix = self._ensure_matrix()
        deltas = (matrix - features) / self._scale
        distances = np.sqrt((deltas ** 2).sum(axis=1))
        if exclude_index is not None:
            distances[exclude_index] = np.inf
        order = np.argsort(distances)[:k]
        return [
            (self._record_ids[i], self._species[i], float(distances[i]))
            for i in order
        ]

    def similar_recordings(self, record: SoundRecord,
                           k: int = 5) -> list[tuple[int, str, float]]:
        features = extract_features(record)
        if features is None:
            return []
        exclude = None
        if record.record_id in self._record_ids:
            exclude = self._record_ids.index(record.record_id)
        return self.nearest(features, k=k, exclude_index=exclude)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def retrieval_accuracy(self, sample: int | None = None,
                           seed: int = 2013) -> float:
        """Leave-one-out 1-NN species retrieval accuracy.

        The acoustic baseline's headline number: how often the closest
        *other* recording belongs to the same species.
        """
        n = len(self._record_ids)
        if n < 2:
            return 0.0
        matrix = self._ensure_matrix()
        indices = np.arange(n)
        if sample is not None and sample < n:
            rng = np.random.default_rng(seed)
            indices = rng.choice(n, size=sample, replace=False)
        hits = 0
        for index in indices:
            neighbour = self.nearest(matrix[index], k=1,
                                     exclude_index=int(index))
            if neighbour and neighbour[0][1] == self._species[index]:
                hits += 1
        return hits / len(indices)

    def species_confusions(self, sample: int | None = None,
                           seed: int = 2013) -> dict[tuple[str, str], int]:
        """(true species, retrieved species) error counts — which taxa
        sound alike."""
        matrix = self._ensure_matrix()
        n = len(self._record_ids)
        indices = np.arange(n)
        if sample is not None and sample < n:
            rng = np.random.default_rng(seed)
            indices = rng.choice(n, size=sample, replace=False)
        confusions: dict[tuple[str, str], int] = {}
        for index in indices:
            neighbour = self.nearest(matrix[index], k=1,
                                     exclude_index=int(index))
            if neighbour and neighbour[0][1] != self._species[index]:
                key = (self._species[index], neighbour[0][1])
                confusions[key] = confusions.get(key, 0) + 1
        return confusions
