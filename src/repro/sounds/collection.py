"""The sound collection on the storage engine.

One :class:`SoundCollection` owns a :class:`~repro.storage.Database`
with the ``recordings`` table (the *original*, never mutated by
curation) and offers the access paths the case study needs: species
enumeration, per-species record sets, and completeness statistics per
Table II group.

Curation artifacts (the species-name update table, the curation history
log) live in *additional* tables created by :mod:`repro.curation` on the
same database — keeping originals and curation outputs side by side, as
the paper requires.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator

from repro.sounds.fields import field_names, recordings_schema
from repro.sounds.record import SoundRecord
from repro.storage import Database, col
from repro.storage.query import Aggregate

__all__ = ["SoundCollection"]

RECORDINGS = "recordings"


class SoundCollection:
    """An animal-sound metadata collection."""

    def __init__(self, name: str = "fnjv",
                 database: Database | None = None,
                 journal_path: str | Path | None = None) -> None:
        self.name = name
        self.database = database or Database(name, journal_path=journal_path)
        if not self.database.has_table(RECORDINGS):
            self.database.create_table(recordings_schema(RECORDINGS))
            self.database.create_index(RECORDINGS, "species", "hash")
            self.database.create_index(RECORDINGS, "genus", "hash")
            self.database.create_index(RECORDINGS, "collect_date", "sorted")

    def __repr__(self) -> str:
        return f"SoundCollection({self.name}, {len(self)} records)"

    def __len__(self) -> int:
        return self.database.count(RECORDINGS)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def add(self, record: SoundRecord) -> int:
        """Insert one record; returns its ``record_id``."""
        row = record.to_row()
        if row.get("record_id") is None:
            row["record_id"] = len(self) + 1
        self.database.insert(RECORDINGS, row)
        return row["record_id"]

    def add_many(self, records: list[SoundRecord]) -> int:
        """Bulk-ingest ``records`` through the storage engine's batched
        write path (one unique-check pass, deferred index maintenance,
        one journal entry) — the generator hands over ~12 000 records at
        once, so this is the collection's hot ingest path."""
        next_id = len(self) + 1
        rows = []
        for record in records:
            row = record.to_row()
            if row.get("record_id") is None:
                row["record_id"] = next_id
            next_id = max(next_id, row["record_id"]) + 1
            rows.append(row)
        self.database.bulk_load(RECORDINGS, rows)
        return len(records)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def record(self, record_id: int) -> SoundRecord:
        return SoundRecord.from_row(self.database.get(RECORDINGS, record_id))

    def records(self) -> Iterator[SoundRecord]:
        for row in self.database.table(RECORDINGS).rows():
            yield SoundRecord.from_row(row)

    def rows(self) -> Iterator[dict[str, Any]]:
        yield from self.database.table(RECORDINGS).rows()

    def records_for_species(self, species: str) -> list[SoundRecord]:
        rows = self.database.query(RECORDINGS).where(
            col("species") == species
        ).order_by("record_id").all()
        return [SoundRecord.from_row(row) for row in rows]

    def distinct_species(self) -> list[str]:
        """The distinct non-null species names, sorted."""
        names = {
            row["species"]
            for row in self.database.query(RECORDINGS)
            .where(col("species").is_not_null()).select("species").all()
        }
        return sorted(names)

    def species_record_counts(self) -> dict[str, int]:
        grouped = self.database.query(RECORDINGS).where(
            col("species").is_not_null()
        ).group_by("species", aggregates=[Aggregate("count")])
        return {row["species"]: row["count"] for row in grouped}

    def occurrences(self, species: str) -> list[tuple[float, float]]:
        """Coordinates of all located records of ``species``."""
        rows = self.database.query(RECORDINGS).where(
            (col("species") == species)
            & col("latitude").is_not_null()
            & col("longitude").is_not_null()
        ).select("latitude", "longitude").all()
        return [(row["latitude"], row["longitude"]) for row in rows]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def completeness_by_group(self) -> dict[int, float]:
        """Mean completeness per Table II group across all records."""
        totals = {1: 0.0, 2: 0.0, 3: 0.0}
        count = 0
        for record in self.records():
            count += 1
            for group in totals:
                totals[group] += record.completeness(group)
        if count == 0:
            return {group: 1.0 for group in totals}
        return {group: total / count for group, total in totals.items()}

    def field_completeness(self) -> dict[str, float]:
        """Fraction filled, per field."""
        names = field_names()
        filled = dict.fromkeys(names, 0)
        count = 0
        for row in self.rows():
            count += 1
            for name in names:
                if row.get(name) is not None:
                    filled[name] += 1
        if count == 0:
            return dict.fromkeys(names, 1.0)
        return {name: filled[name] / count for name in names}

    def summary(self) -> dict[str, Any]:
        return {
            "records": len(self),
            "distinct_species": len(self.distinct_species()),
            "completeness_by_group": self.completeness_by_group(),
        }
