"""Linked Data support: triples, publishing, cross-referencing, ROs.

The paper's conclusions point at two follow-ups that this package
implements:

* "provide support to connect curated metadata with Linked Data
  initiatives ... allow cross-referencing scientific papers across
  distinct research communities" (the Shadows prototype, ref. [37]) —
  :mod:`repro.linkeddata.shadows`;
* Research Objects, "semantically rich aggregations of resources that
  bring together the data, methods and people involved in
  investigations" (Bechhofer et al., ref. [9]) —
  :mod:`repro.linkeddata.research_object`.

The substrate is a small in-process triple store with SPO/POS/OSP
indexes (:mod:`repro.linkeddata.triples`) plus publishers that map the
collection, the provenance graphs and the curation history into
Darwin-Core/PROV-flavoured triples (:mod:`repro.linkeddata.publisher`).
"""

from repro.linkeddata.publisher import (
    publish_collection,
    publish_curation_history,
    publish_provenance,
)
from repro.linkeddata.research_object import ResearchObject
from repro.linkeddata.rocrate import (
    build_run_crate,
    cached_actions,
    crate_to_json,
    validate_crate,
)
from repro.linkeddata.shadows import CrossReferencer, Publication, Shadow
from repro.linkeddata.triples import IRI, Literal, Triple, TripleStore
from repro.linkeddata.vocab import DC, DWC, PROV, RDF, RDFS, REPRO

__all__ = [
    "CrossReferencer",
    "DC",
    "DWC",
    "IRI",
    "Literal",
    "PROV",
    "Publication",
    "RDF",
    "RDFS",
    "REPRO",
    "ResearchObject",
    "Shadow",
    "Triple",
    "TripleStore",
    "build_run_crate",
    "cached_actions",
    "crate_to_json",
    "publish_collection",
    "publish_curation_history",
    "publish_provenance",
    "validate_crate",
]
