"""Vocabularies used by the publishers.

* ``RDF`` / ``RDFS`` — the usual structural terms;
* ``DC`` — Dublin Core, for publications (title, creator, date);
* ``DWC`` — Darwin Core, the biodiversity community's standard for
  occurrence records (scientificName, eventDate, decimalLatitude, ...);
* ``PROV`` — provenance terms, aligned with our OPM edges;
* ``REPRO`` — this library's own namespace for everything else.
"""

from repro.linkeddata.triples import Namespace

__all__ = ["RDF", "RDFS", "DC", "DWC", "PROV", "REPRO"]

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
DC = Namespace("http://purl.org/dc/terms/")
DWC = Namespace("http://rs.tdwg.org/dwc/terms/")
PROV = Namespace("http://www.w3.org/ns/prov#")
REPRO = Namespace("https://repro.example.org/ns#")
