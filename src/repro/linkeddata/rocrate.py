"""Workflow-Run RO-Crate export (Leo et al., "Recording provenance of
workflow runs with RO-Crate").

The provenance repository already speaks OPM internally; long-term
preservation also needs an *exchange* package other archives can read
without our code.  The Workflow Run RO-Crate profiles layer exactly
that over schema.org JSON-LD:

* the crate root is a ``Dataset`` conforming to the Process / Workflow
  / Provenance Run Crate profiles (v0.4),
* the workflow description is a ``ComputationalWorkflow`` with one
  ``HowToStep`` per processor,
* the run is a ``CreateAction`` (``instrument`` = the workflow) whose
  ``object`` / ``result`` lists are the run's input/output artifacts as
  ``PropertyValue`` entities, with one nested ``CreateAction`` per
  processor invocation,
* cache replays carry a ``cachedFrom`` term (declared in the local
  context) pointing at the originating action — a stub contextual
  entity when that run is outside this crate — so the
  ``wasCachedFrom`` chain survives the export and can be re-read by
  :func:`cached_actions`.

Everything is emitted with sorted keys and sorted entity ids, so the
export is byte-deterministic and golden-file testable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.provenance.repository import ProvenanceRepository

__all__ = [
    "PROFILE_IDS",
    "build_run_crate",
    "cached_actions",
    "crate_to_json",
    "validate_crate",
]

#: Workflow Run RO-Crate profile family (process ⊂ workflow ⊂ provenance).
PROFILE_IDS = (
    "https://w3id.org/ro/wfrun/process/0.4",
    "https://w3id.org/ro/wfrun/workflow/0.4",
    "https://w3id.org/ro/wfrun/provenance/0.4",
)

_RO_CRATE_CONTEXT = "https://w3id.org/ro/crate/1.1/context"

#: Local context extension: OPM's cache-replay edge has no schema.org
#: counterpart, so the term is declared explicitly instead of smuggled
#: through an unprefixed key.
_LOCAL_CONTEXT = {
    "cachedFrom": "https://w3id.org/repro/terms#wasCachedFrom",
}


def _artifact_entity(artifact_id: str, value: Any,
                     role: str | None) -> dict[str, Any]:
    entity: dict[str, Any] = {
        "@id": f"#artifact/{artifact_id}",
        "@type": "PropertyValue",
        "name": artifact_id,
    }
    if role:
        entity["exampleOfWork"] = role
    if value is not None:
        try:
            entity["value"] = json.loads(json.dumps(value, sort_keys=True))
        except (TypeError, ValueError):
            entity["value"] = repr(value)
    return entity


def _ref(entity_id: str) -> dict[str, str]:
    return {"@id": entity_id}


def _refs(ids: list[str]) -> list[dict[str, str]]:
    return [_ref(i) for i in sorted(set(ids))]


def build_run_crate(repository: ProvenanceRepository,
                    run_id: str, *, name: str | None = None) -> dict[str, Any]:
    """One run's provenance as a Workflow Run RO-Crate JSON-LD dict."""
    if not repository.has_run(run_id):
        raise ReproError(f"run {run_id!r} is not in the repository")
    trace = repository.trace_for(run_id)
    graph = repository.graph_for(run_id)
    workflow = repository.workflow_for(run_id)

    workflow_id = "#workflow"
    run_action_id = f"#run/{run_id}"
    entities: dict[str, dict[str, Any]] = {}

    def put(entity: dict[str, Any]) -> None:
        entities[entity["@id"]] = entity

    # --- the two mandatory structural entities -------------------------
    put({
        "@id": "ro-crate-metadata.json",
        "@type": "CreativeWork",
        "about": _ref("./"),
        "conformsTo": _ref("https://w3id.org/ro/crate/1.1"),
    })
    put({
        "@id": "./",
        "@type": "Dataset",
        "conformsTo": [_ref(p) for p in PROFILE_IDS],
        "datePublished": trace.started.isoformat(),
        "hasPart": [_ref(workflow_id)],
        "mainEntity": _ref(workflow_id),
        "mentions": _ref(run_action_id),
        "name": name or f"Workflow run {run_id}",
    })

    # --- the method: workflow + one step per processor -----------------
    step_ids: list[str] = []
    if workflow is not None:
        for proc_name in sorted(workflow.processors):
            proc = workflow.processor(proc_name)
            step_id = f"#step/{proc_name}"
            step_ids.append(step_id)
            put({
                "@id": step_id,
                "@type": "HowToStep",
                "name": proc_name,
                "description": f"{proc.kind} processor",
                "position": len(step_ids) - 1,
            })
    workflow_entity: dict[str, Any] = {
        "@id": workflow_id,
        "@type": ["SoftwareSourceCode", "ComputationalWorkflow", "HowTo"],
        "name": trace.workflow_name,
        "programmingLanguage": _ref("#repro-workflow-language"),
    }
    if step_ids:
        workflow_entity["step"] = _refs(step_ids)
    put(workflow_entity)
    put({
        "@id": "#repro-workflow-language",
        "@type": "ComputerLanguage",
        "name": "repro workflow DSL",
    })

    # --- artifacts crossing the workflow boundary ----------------------
    binding_role = {
        binding.artifact_id: f"{binding.processor}.{binding.port}"
        for binding in trace.bindings
    }
    binding_value = {
        binding.artifact_id: binding.value for binding in trace.bindings
    }
    for node in graph.nodes("artifact"):
        put(_artifact_entity(node.id, binding_value.get(node.id),
                             binding_role.get(node.id)))

    # --- the run and its per-processor actions -------------------------
    run_inputs: list[str] = []
    run_outputs: list[str] = []
    action_ids: list[str] = []
    for process in graph.nodes("process"):
        proc_name = process.label or process.id.rsplit("/", 1)[-1]
        action_id = f"#action/{process.id}"
        action_ids.append(action_id)
        uses = sorted(
            f"#artifact/{e.cause}" for e in graph.edges("used")
            if e.effect == process.id
        )
        makes = sorted(
            f"#artifact/{e.effect}" for e in graph.edges("wasGeneratedBy")
            if e.cause == process.id
        )
        run_inputs.extend(uses)
        run_outputs.extend(makes)
        action: dict[str, Any] = {
            "@id": action_id,
            "@type": "CreateAction",
            "name": proc_name,
            "instrument": _ref(f"#step/{proc_name}")
            if f"#step/{proc_name}" in entities else _ref(workflow_id),
        }
        proc_run = trace.run_for(proc_name)
        if proc_run is not None:
            action["startTime"] = proc_run.started.isoformat()
            action["endTime"] = proc_run.finished.isoformat()
            action["actionStatus"] = (
                "http://schema.org/CompletedActionStatus"
                if proc_run.status == "completed"
                else "http://schema.org/FailedActionStatus"
            )
            if proc_run.error:
                action["error"] = proc_run.error
        if uses:
            action["object"] = [_ref(i) for i in uses]
        if makes:
            action["result"] = [_ref(i) for i in makes]
        quality = process.annotations.get("quality")
        if quality:
            action["description"] = "quality: " + json.dumps(
                quality, sort_keys=True)
        cached_source = process.annotations.get("wasCachedFrom")
        if cached_source:
            source_action_id = f"#action/{cached_source}"
            action["cachedFrom"] = _ref(source_action_id)
            if source_action_id not in entities:
                # contextual stub: the originating run lives in another
                # crate; keep the chain resolvable without inlining it
                put({
                    "@id": source_action_id,
                    "@type": "CreateAction",
                    "name": cached_source,
                    "description": (
                        "stub reference: originating action recorded in "
                        f"the crate of run "
                        f"{cached_source.rsplit('/', 1)[0]!r}"
                    ),
                })
        put(action)

    run_action: dict[str, Any] = {
        "@id": run_action_id,
        "@type": "CreateAction",
        "name": f"Run {run_id} of {trace.workflow_name}",
        "instrument": _ref(workflow_id),
        "startTime": trace.started.isoformat(),
        "actionStatus": "http://schema.org/CompletedActionStatus"
        if trace.status in ("completed", "degraded")
        else "http://schema.org/FailedActionStatus",
    }
    if trace.finished is not None:
        run_action["endTime"] = trace.finished.isoformat()
    # the run "uses" only boundary inputs: artifacts consumed by some
    # processor but generated by none
    generated = {i for i in run_outputs}
    boundary_in = [i for i in run_inputs if i not in generated]
    if boundary_in:
        run_action["object"] = _refs(boundary_in)
    if run_outputs:
        run_action["result"] = _refs(run_outputs)
    agents = sorted(node.id for node in graph.nodes("agent"))
    if agents:
        run_action["agent"] = _ref(f"#agent/{agents[0]}")
        for agent_id in agents:
            put({
                "@id": f"#agent/{agent_id}",
                "@type": "SoftwareApplication",
                "name": agent_id,
            })
    if action_ids:
        run_action["hasPart"] = _refs(action_ids)
    put(run_action)

    ordered = [entities["ro-crate-metadata.json"], entities["./"]]
    ordered.extend(
        entities[key] for key in sorted(entities)
        if key not in ("ro-crate-metadata.json", "./")
    )
    return {
        "@context": [_RO_CRATE_CONTEXT, _LOCAL_CONTEXT],
        "@graph": ordered,
    }


def crate_to_json(crate: dict[str, Any], indent: int | None = 2) -> str:
    return json.dumps(crate, indent=indent, sort_keys=True)


def cached_actions(crate: dict[str, Any]) -> dict[str, str]:
    """``{action id: originating action id}`` for every cache replay in
    the crate — the round-trip read of the ``cachedFrom`` term."""
    chain: dict[str, str] = {}
    for entity in crate.get("@graph", []):
        target = entity.get("cachedFrom")
        if isinstance(target, dict) and "@id" in target:
            chain[entity["@id"]] = target["@id"]
    return chain


def validate_crate(crate: dict[str, Any]) -> list[str]:
    """Structural lint of a Workflow-Run RO-Crate.

    Checks the invariants the profile requires (and that downstream
    tooling trips over when they drift): the metadata descriptor and
    root dataset exist and point at each other, the root conforms to
    the wfrun profiles, the main workflow exists, every ``@id``
    reference resolves inside the crate, and every ``cachedFrom``
    target is a ``CreateAction``.  Returns problems (empty = valid).
    """
    problems: list[str] = []
    graph = crate.get("@graph")
    if not isinstance(graph, list) or not graph:
        return ["crate has no @graph entity list"]
    if "@context" not in crate:
        problems.append("crate has no @context")
    by_id: dict[str, dict[str, Any]] = {}
    for entity in graph:
        entity_id = entity.get("@id")
        if not entity_id:
            problems.append(f"entity without @id: {entity!r:.80}")
            continue
        if entity_id in by_id:
            problems.append(f"duplicate entity id {entity_id!r}")
        by_id[entity_id] = entity

    descriptor = by_id.get("ro-crate-metadata.json")
    if descriptor is None:
        problems.append("missing metadata descriptor ro-crate-metadata.json")
    elif descriptor.get("about", {}).get("@id") != "./":
        problems.append("metadata descriptor is not about the root dataset")
    root = by_id.get("./")
    if root is None:
        problems.append("missing root dataset ./")
    else:
        conforms = root.get("conformsTo", [])
        if isinstance(conforms, dict):
            conforms = [conforms]
        profile_ids = {c.get("@id") for c in conforms if isinstance(c, dict)}
        for profile in PROFILE_IDS:
            if profile not in profile_ids:
                problems.append(f"root dataset does not conform to {profile}")
        main = root.get("mainEntity", {})
        if main.get("@id") not in by_id:
            problems.append("root mainEntity does not resolve")

    def check_refs(entity_id: str, value: Any) -> None:
        if isinstance(value, dict):
            target = value.get("@id")
            if target is not None:
                if len(value) == 1 and target not in by_id \
                        and not target.startswith(("http://", "https://")):
                    problems.append(
                        f"{entity_id}: dangling reference to {target!r}")
                return
            for child in value.values():
                check_refs(entity_id, child)
        elif isinstance(value, list):
            for child in value:
                check_refs(entity_id, child)

    for entity_id, entity in by_id.items():
        for key, value in entity.items():
            if key in ("@id", "conformsTo"):
                continue
            check_refs(entity_id, value)
        target = entity.get("cachedFrom", {})
        if isinstance(target, dict) and "@id" in target:
            source = by_id.get(target["@id"])
            if source is not None:
                types = source.get("@type")
                types = types if isinstance(types, list) else [types]
                if "CreateAction" not in types:
                    problems.append(
                        f"{entity_id}: cachedFrom target "
                        f"{target['@id']!r} is not a CreateAction")
    return problems
