"""Shadows-style cross-referencing of publications.

The paper's conclusion: a first prototype (ref. [37], "Shadows")
"shows how such mechanisms allow cross-referencing scientific papers
across distinct research communities, even when they appear to work in
seemingly unrelated issues".

Here the mechanism is reproduced on top of the curated taxonomy:

* a :class:`Publication` mentions species *by the name that was valid
  when it was written* — a 1995 ecology paper and a 2012 bioacoustics
  paper may cite the same frog under different binomials;
* a :class:`Shadow` is the structured projection of a publication into
  triples (Dublin Core + ``repro:mentionsTaxon``);
* the :class:`CrossReferencer` links publications that share a taxon —
  either **raw** (exact name match only) or **curated** (names first
  resolved through the synonym registry to their accepted form).

The curated mode finds every raw link plus the ones hidden behind
taxonomy evolution — exactly the reuse dividend the paper attributes to
metadata curation.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.linkeddata.triples import IRI, Literal, TripleStore
from repro.linkeddata.vocab import DC, RDF, REPRO
from repro.taxonomy.catalogue import CatalogueOfLife

__all__ = ["Publication", "Shadow", "CrossReference", "CrossReferencer",
           "generate_publications"]

COMMUNITIES = ("bioacoustics", "ecology", "taxonomy", "conservation")


class Publication:
    """A (synthetic) scientific paper."""

    __slots__ = ("pub_id", "title", "authors", "community", "year",
                 "species_mentioned")

    def __init__(self, pub_id: str, title: str, authors: list[str],
                 community: str, year: int,
                 species_mentioned: list[str]) -> None:
        if community not in COMMUNITIES:
            raise ValueError(f"unknown community {community!r}")
        self.pub_id = pub_id
        self.title = title
        self.authors = authors
        self.community = community
        self.year = year
        self.species_mentioned = list(species_mentioned)

    @property
    def iri(self) -> IRI:
        return REPRO[f"publication/{self.pub_id}"]

    def __repr__(self) -> str:
        return (
            f"Publication({self.pub_id}, {self.community} {self.year}, "
            f"{len(self.species_mentioned)} taxa)"
        )


class Shadow:
    """The structured projection ("shadow") of one publication."""

    def __init__(self, publication: Publication) -> None:
        self.publication = publication

    def to_triples(self, store: TripleStore | None = None) -> TripleStore:
        from repro.linkeddata.publisher import species_iri

        store = store if store is not None else TripleStore()
        publication = self.publication
        subject = publication.iri
        store.add(subject, RDF.type, REPRO.Publication)
        store.add(subject, DC.title, Literal(publication.title))
        store.add(subject, DC.date, Literal(publication.year))
        store.add(subject, REPRO.community,
                  Literal(publication.community))
        for author in publication.authors:
            store.add(subject, DC.creator, Literal(author))
        for name in publication.species_mentioned:
            store.add(subject, REPRO.mentionsTaxon, species_iri(name))
            store.add(subject, REPRO.mentionsTaxonName, Literal(name))
        return store


class CrossReference:
    """Two publications linked through a shared taxon."""

    __slots__ = ("left", "right", "taxon", "via")

    def __init__(self, left: Publication, right: Publication,
                 taxon: str, via: str) -> None:
        self.left = left
        self.right = right
        self.taxon = taxon
        self.via = via  # "exact" | "synonym"

    @property
    def crosses_communities(self) -> bool:
        return self.left.community != self.right.community

    def __repr__(self) -> str:
        return (
            f"CrossReference({self.left.pub_id} <-> {self.right.pub_id} "
            f"via {self.taxon!r} [{self.via}])"
        )

    def key(self) -> tuple[str, str, str]:
        ids = sorted((self.left.pub_id, self.right.pub_id))
        return (ids[0], ids[1], self.taxon)


class CrossReferencer:
    """Finds taxon-mediated links between publications."""

    def __init__(self, catalogue: CatalogueOfLife) -> None:
        self.catalogue = catalogue

    def _canonical(self, name: str, curated: bool) -> str:
        if not curated:
            return name
        current, __ = self.catalogue.registry.current_name(
            name, self.catalogue.as_of_year)
        return current

    def links(self, publications: Iterable[Publication],
              curated: bool = True) -> list[CrossReference]:
        """All pairwise links; ``curated=False`` is the raw baseline."""
        publications = list(publications)
        by_taxon: dict[str, list[tuple[Publication, str]]] = {}
        for publication in publications:
            for name in publication.species_mentioned:
                canonical = self._canonical(name, curated)
                by_taxon.setdefault(canonical, []).append(
                    (publication, name))
        seen: set[tuple[str, str, str]] = set()
        results: list[CrossReference] = []
        for taxon, mentions in sorted(by_taxon.items()):
            for i, (left, left_name) in enumerate(mentions):
                for right, right_name in mentions[i + 1:]:
                    if left.pub_id == right.pub_id:
                        continue
                    via = "exact" if left_name == right_name else "synonym"
                    reference = CrossReference(left, right, taxon, via)
                    if reference.key() in seen:
                        continue
                    seen.add(reference.key())
                    results.append(reference)
        return results

    def cross_community_links(self, publications: Iterable[Publication],
                              curated: bool = True) -> list[CrossReference]:
        return [link for link in self.links(publications, curated=curated)
                if link.crosses_communities]

    def curation_dividend(self,
                          publications: Iterable[Publication]) -> dict[str, int]:
        """How many links curation adds over the raw baseline."""
        publications = list(publications)
        raw = self.links(publications, curated=False)
        curated = self.links(publications, curated=True)
        return {
            "raw_links": len(raw),
            "curated_links": len(curated),
            "recovered_by_curation": len(curated) - len(raw),
            "synonym_links": sum(
                1 for link in curated if link.via == "synonym"),
        }


_TITLE_TEMPLATES = (
    "Vocal repertoire of {species}",
    "Habitat use by {species} in southeastern Brazil",
    "Taxonomic notes on {species}",
    "Population decline of {species} in the Cerrado",
    "Acoustic niche partitioning involving {species}",
    "Reproductive phenology of {species}",
)

_AUTHOR_POOL = (
    "Almeida", "Barbosa", "Cardoso", "Duarte", "Esteves", "Fonseca",
    "Garcia", "Hoffmann", "Iglesias", "Junqueira",
)


def generate_publications(catalogue: CatalogueOfLife, count: int = 40,
                          first_year: int = 1985, last_year: int = 2013,
                          species_pool: list[str] | None = None,
                          seed: int = 2013) -> list[Publication]:
    """Synthetic publications citing species by era-correct names.

    A publication written in year *y* cites each species by the name
    that was accepted *as of y* — older papers therefore carry names
    that have since changed, which is what makes raw cross-referencing
    miss links.
    """
    rng = random.Random(seed)
    if species_pool is None:
        species_pool = catalogue.as_of(first_year).species_names()
    publications: list[Publication] = []
    for index in range(count):
        year = rng.randint(first_year, last_year)
        community = rng.choice(COMMUNITIES)
        mentioned: list[str] = []
        for name in rng.sample(species_pool,
                               min(len(species_pool), rng.randint(1, 4))):
            # the name as known when the paper was written
            current, __ = catalogue.registry.current_name(name, year)
            mentioned.append(current)
        title = rng.choice(_TITLE_TEMPLATES).format(species=mentioned[0])
        authors = rng.sample(_AUTHOR_POOL, rng.randint(1, 3))
        publications.append(Publication(
            f"pub-{index + 1:03d}", title, authors, community, year,
            mentioned))
    return publications
