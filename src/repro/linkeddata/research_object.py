"""Research Objects (Bechhofer et al., the paper's ref. [9]).

"Semantically rich aggregations of resources that bring together the
data, methods and people involved in (scientific) investigations."

A :class:`ResearchObject` aggregates, for one investigation:

* the dataset (a collection reference + its record count),
* the method (the workflow specification),
* the execution evidence (run traces + OPM graphs),
* the people (creator, curators),
* quality annotations (the assessment report).

It renders a manifest (triples + dict), checks its own completeness
(an RO missing its method or provenance cannot support reproduction),
and can verify that the aggregated run actually used the aggregated
workflow — the integrity property ROs exist to provide.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.core.assessment import AssessmentReport
from repro.errors import ReproError
from repro.linkeddata.triples import IRI, Literal, TripleStore
from repro.linkeddata.vocab import DC, PROV, RDF, REPRO
from repro.provenance.repository import ProvenanceRepository
from repro.sounds.collection import SoundCollection
from repro.workflow.model import Workflow

__all__ = ["ResearchObject"]


class ResearchObject:
    """One investigation's aggregation."""

    def __init__(self, ro_id: str, title: str, creator: str,
                 created: _dt.date | None = None) -> None:
        self.ro_id = ro_id
        self.title = title
        self.creator = creator
        self.created = created or _dt.date(2013, 11, 12)
        self.collection: SoundCollection | None = None
        self.workflow: Workflow | None = None
        self.provenance: ProvenanceRepository | None = None
        self.run_ids: list[str] = []
        self.quality_report: AssessmentReport | None = None
        self.contributors: list[str] = []

    @property
    def iri(self) -> IRI:
        return REPRO[f"ro/{self.ro_id}"]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def aggregate_dataset(self, collection: SoundCollection) -> None:
        self.collection = collection

    def aggregate_method(self, workflow: Workflow) -> None:
        self.workflow = workflow

    def aggregate_run(self, provenance: ProvenanceRepository,
                      run_id: str) -> None:
        # keyed membership probe, not a materialized full run listing
        if not provenance.has_run(run_id):
            raise ReproError(f"run {run_id!r} is not in the repository")
        self.provenance = provenance
        if run_id not in self.run_ids:
            self.run_ids.append(run_id)

    def aggregate_quality(self, report: AssessmentReport) -> None:
        self.quality_report = report

    def add_contributor(self, name: str) -> None:
        if name not in self.contributors:
            self.contributors.append(name)

    # ------------------------------------------------------------------
    # completeness & integrity
    # ------------------------------------------------------------------

    def missing_components(self) -> list[str]:
        """What a reproduction-grade RO still lacks."""
        missing = []
        if self.collection is None:
            missing.append("dataset")
        if self.workflow is None:
            missing.append("method (workflow)")
        if not self.run_ids or self.provenance is None:
            missing.append("execution provenance")
        if self.quality_report is None:
            missing.append("quality assessment")
        return missing

    @property
    def reproducible(self) -> bool:
        return not self.missing_components()

    def verify(self) -> list[str]:
        """Integrity check: the aggregated runs must belong to the
        aggregated workflow, and the quality report to one of the runs.
        Returns a list of problems (empty = sound)."""
        problems = list(self.missing_components())
        if self.provenance is not None and self.workflow is not None:
            for run_id in self.run_ids:
                trace = self.provenance.trace_for(run_id)
                if trace.workflow_name != self.workflow.name:
                    problems.append(
                        f"run {run_id} executed workflow "
                        f"{trace.workflow_name!r}, not the aggregated "
                        f"{self.workflow.name!r}"
                    )
        if (self.quality_report is not None
                and self.quality_report.run_id is not None
                and self.run_ids
                and self.quality_report.run_id not in self.run_ids):
            problems.append(
                f"quality report assesses run "
                f"{self.quality_report.run_id!r}, which is not aggregated"
            )
        return problems

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def manifest(self) -> dict[str, Any]:
        return {
            "id": self.ro_id,
            "title": self.title,
            "creator": self.creator,
            "created": self.created.isoformat(),
            "contributors": list(self.contributors),
            "dataset": None if self.collection is None else {
                "name": self.collection.name,
                "records": len(self.collection),
            },
            "method": None if self.workflow is None else {
                "workflow": self.workflow.name,
                "processors": sorted(self.workflow.processors),
            },
            "runs": list(self.run_ids),
            "quality": None if self.quality_report is None else
            self.quality_report.as_dict(),
            "reproducible": self.reproducible,
        }

    def to_triples(self, store: TripleStore | None = None) -> TripleStore:
        store = store if store is not None else TripleStore()
        subject = self.iri
        store.add(subject, RDF.type, REPRO.ResearchObject)
        store.add(subject, DC.title, Literal(self.title))
        store.add(subject, DC.creator, Literal(self.creator))
        store.add(subject, DC.created, Literal(self.created.isoformat()))
        for contributor in self.contributors:
            store.add(subject, DC.contributor, Literal(contributor))
        if self.collection is not None:
            store.add(subject, REPRO.aggregatesDataset,
                      REPRO[f"collection/{self.collection.name}"])
        if self.workflow is not None:
            store.add(subject, REPRO.aggregatesMethod,
                      REPRO[f"workflow/{self.workflow.name}"])
        for run_id in self.run_ids:
            store.add(subject, PROV.hadPrimarySource,
                      REPRO[f"prov/{run_id}"])
        return store

    def __repr__(self) -> str:
        status = "reproducible" if self.reproducible else (
            f"missing: {', '.join(self.missing_components())}")
        return f"ResearchObject({self.ro_id}, {status})"
