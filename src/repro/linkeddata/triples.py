"""A small in-process triple store.

Terms are :class:`IRI` or :class:`Literal`.  The store keeps three
permutation indexes (SPO, POS, OSP) so any single-wildcard pattern is
answered from an index; :meth:`TripleStore.match` takes ``None`` as a
wildcard on any position.

This is deliberately *not* a full RDF engine — no blank-node scoping,
no datatypes beyond Python values, no SPARQL — but it is enough to
publish the collection, cross-reference publications and aggregate
Research Objects, which is all the paper's conclusions call for.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["IRI", "Literal", "Triple", "TripleStore", "Namespace"]


class IRI:
    """A resource identifier."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        if not value:
            raise ValueError("empty IRI")
        self.value = value

    def __repr__(self) -> str:
        return f"<{self.value}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("iri", self.value))

    @property
    def local_name(self) -> str:
        for separator in ("#", "/"):
            if separator in self.value:
                return self.value.rsplit(separator, 1)[1]
        return self.value


class Literal:
    """A literal value (string, number, date...)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("literal", str(self.value)))


Term = IRI | Literal


class Triple:
    """One (subject, predicate, object) statement."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: IRI, predicate: IRI, object: Term) -> None:
        if not isinstance(subject, IRI):
            raise TypeError("triple subject must be an IRI")
        if not isinstance(predicate, IRI):
            raise TypeError("triple predicate must be an IRI")
        if not isinstance(object, (IRI, Literal)):
            raise TypeError("triple object must be an IRI or Literal")
        self.subject = subject
        self.predicate = predicate
        self.object = object

    def __repr__(self) -> str:
        return f"({self.subject!r} {self.predicate!r} {self.object!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return (self.subject, self.predicate, self.object) == (
            other.subject, other.predicate, other.object)

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object))


class Namespace:
    """Prefix helper: ``DWC = Namespace("http://rs.tdwg.org/dwc/terms/")``
    then ``DWC.scientificName`` is the full IRI."""

    def __init__(self, base: str) -> None:
        self._base = base

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return IRI(self._base + local)

    def term(self, local: str) -> IRI:
        return IRI(self._base + local)

    @property
    def base(self) -> str:
        return self._base

    def __repr__(self) -> str:
        return f"Namespace({self._base})"


class TripleStore:
    """The indexed store."""

    def __init__(self) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[IRI, dict[IRI, set[Term]]] = {}
        self._pos: dict[IRI, dict[Term, set[IRI]]] = {}
        self._osp: dict[Term, dict[IRI, set[IRI]]] = {}

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, subject: IRI, predicate: IRI, object: Term) -> Triple:
        """Add one statement (idempotent)."""
        triple = Triple(subject, predicate, object)
        if triple in self._triples:
            return triple
        self._triples.add(triple)
        self._spo.setdefault(subject, {}).setdefault(
            predicate, set()).add(object)
        self._pos.setdefault(predicate, {}).setdefault(
            object, set()).add(subject)
        self._osp.setdefault(object, {}).setdefault(
            subject, set()).add(predicate)
        return triple

    def add_all(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            if triple not in self._triples:
                self.add(triple.subject, triple.predicate, triple.object)
                count += 1
        return count

    def remove(self, triple: Triple) -> bool:
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._spo[triple.subject][triple.predicate].discard(triple.object)
        self._pos[triple.predicate][triple.object].discard(triple.subject)
        self._osp[triple.object][triple.subject].discard(triple.predicate)
        return True

    def merge(self, other: "TripleStore") -> int:
        return self.add_all(other)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def match(self, subject: IRI | None = None,
              predicate: IRI | None = None,
              object: Term | None = None) -> Iterator[Triple]:
        """All triples matching the pattern (``None`` = wildcard)."""
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject, {}).get(predicate, ())
            for candidate in objects:
                if object is None or candidate == object:
                    yield Triple(subject, predicate, candidate)
            return
        if predicate is not None and object is not None:
            for candidate in self._pos.get(predicate, {}).get(object, ()):
                yield Triple(candidate, predicate, object)
            return
        if subject is not None and object is not None:
            for candidate in self._osp.get(object, {}).get(subject, ()):
                yield Triple(subject, candidate, object)
            return
        if subject is not None:
            for predicate_key, objects in self._spo.get(subject, {}).items():
                for candidate in objects:
                    yield Triple(subject, predicate_key, candidate)
            return
        if predicate is not None:
            for object_key, subjects in self._pos.get(predicate, {}).items():
                for candidate in subjects:
                    yield Triple(candidate, predicate, object_key)
            return
        if object is not None:
            for subject_key, predicates in self._osp.get(object, {}).items():
                for candidate in predicates:
                    yield Triple(subject_key, candidate, object)
            return
        yield from self._triples

    def objects(self, subject: IRI, predicate: IRI) -> list[Term]:
        return sorted(self._spo.get(subject, {}).get(predicate, ()),
                      key=_term_key)

    def subjects(self, predicate: IRI, object: Term) -> list[IRI]:
        return sorted(self._pos.get(predicate, {}).get(object, ()),
                      key=_term_key)

    def value(self, subject: IRI, predicate: IRI) -> Term | None:
        """The single object, or ``None``; raises on ambiguity."""
        objects = self.objects(subject, predicate)
        if not objects:
            return None
        if len(objects) > 1:
            raise ValueError(
                f"{subject!r} has {len(objects)} values for {predicate!r}"
            )
        return objects[0]

    def resources_of_type(self, type_iri: IRI) -> list[IRI]:
        from repro.linkeddata.vocab import RDF

        return self.subjects(RDF.type, type_iri)

    # ------------------------------------------------------------------
    # serialization (N-Triples-ish lines)
    # ------------------------------------------------------------------

    def to_ntriples(self) -> str:
        def render(term: Term) -> str:
            if isinstance(term, IRI):
                return f"<{term.value}>"
            escaped = str(term.value).replace("\\", "\\\\").replace(
                '"', '\\"')
            return f'"{escaped}"'

        lines = sorted(
            f"{render(t.subject)} {render(t.predicate)} "
            f"{render(t.object)} ."
            for t in self._triples
        )
        return "\n".join(lines)


def _term_key(term: Term) -> tuple[int, str]:
    return (0, term.value) if isinstance(term, IRI) else (1, str(term.value))
