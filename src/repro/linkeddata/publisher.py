"""Publishers: collection / provenance / curation history -> triples.

``publish_collection`` maps sound records to Darwin Core occurrence
triples; ``publish_provenance`` maps an OPM graph to PROV-flavoured
triples (OPM's edge kinds have direct PROV counterparts);
``publish_curation_history`` exposes the modification log as
``prov:wasRevisionOf`` chains — the "historical log of metadata
modifications" made queryable.
"""

from __future__ import annotations

from repro.curation.history import CurationHistory
from repro.linkeddata.triples import IRI, Literal, TripleStore
from repro.linkeddata.vocab import DC, DWC, PROV, RDF, RDFS, REPRO
from repro.provenance.opm import OPMGraph
from repro.sounds.collection import SoundCollection

__all__ = ["record_iri", "species_iri", "publish_collection",
           "publish_provenance", "publish_curation_history"]

#: OPM edge kind -> PROV property
_OPM_TO_PROV = {
    "used": PROV.used,
    "wasGeneratedBy": PROV.wasGeneratedBy,
    "wasControlledBy": PROV.wasAssociatedWith,
    "wasTriggeredBy": PROV.wasInformedBy,
    "wasDerivedFrom": PROV.wasDerivedFrom,
}

_OPM_KIND_TO_CLASS = {
    "artifact": PROV.Entity,
    "process": PROV.Activity,
    "agent": PROV.Agent,
}


def record_iri(collection_name: str, record_id: int) -> IRI:
    return REPRO[f"collection/{collection_name}/record/{record_id}"]


def species_iri(name: str) -> IRI:
    return REPRO[f"taxon/{name.replace(' ', '_')}"]


def publish_collection(collection: SoundCollection,
                       store: TripleStore | None = None) -> TripleStore:
    """Darwin Core occurrence triples for every record."""
    store = store if store is not None else TripleStore()
    for row in collection.rows():
        subject = record_iri(collection.name, row["record_id"])
        store.add(subject, RDF.type, DWC.Occurrence)
        store.add(subject, DC.identifier, Literal(row["record_id"]))
        if row.get("species"):
            store.add(subject, DWC.scientificName,
                      Literal(row["species"]))
            store.add(subject, REPRO.taxon, species_iri(row["species"]))
        if row.get("genus"):
            store.add(subject, DWC.genus, Literal(row["genus"]))
        if row.get("collect_date"):
            store.add(subject, DWC.eventDate,
                      Literal(row["collect_date"].isoformat()))
        if row.get("country"):
            store.add(subject, DWC.country, Literal(row["country"]))
        if row.get("state"):
            store.add(subject, DWC.stateProvince, Literal(row["state"]))
        if row.get("city"):
            store.add(subject, DWC.municipality, Literal(row["city"]))
        if row.get("latitude") is not None:
            store.add(subject, DWC.decimalLatitude,
                      Literal(row["latitude"]))
        if row.get("longitude") is not None:
            store.add(subject, DWC.decimalLongitude,
                      Literal(row["longitude"]))
        if row.get("habitat"):
            store.add(subject, DWC.habitat, Literal(row["habitat"]))
        if row.get("recordist"):
            store.add(subject, DWC.recordedBy, Literal(row["recordist"]))
    return store


def publish_provenance(graph: OPMGraph,
                       store: TripleStore | None = None) -> TripleStore:
    """PROV triples for one OPM graph."""
    store = store if store is not None else TripleStore()
    for node in graph.nodes():
        subject = REPRO[f"prov/{node.id}"]
        store.add(subject, RDF.type, _OPM_KIND_TO_CLASS[node.kind])
        store.add(subject, RDFS.label, Literal(node.label))
        quality = node.annotations.get("quality")
        if quality:
            for dimension, value in sorted(quality.items()):
                store.add(subject, REPRO[f"quality/{dimension}"],
                          Literal(value))
    for edge in graph.edges():
        store.add(REPRO[f"prov/{edge.effect}"],
                  _OPM_TO_PROV[edge.kind],
                  REPRO[f"prov/{edge.cause}"])
    return store


def publish_curation_history(history: CurationHistory,
                             store: TripleStore | None = None) -> TripleStore:
    """Revision chains for curated records.

    Each *approved* change becomes a revision resource linked to the
    record it revises — the paper's ongoing work of "remodelling [the]
    metadata database to reflect the history of curation processes".
    """
    store = store if store is not None else TripleStore()
    collection_name = history.collection.name
    for change in history.changes(status="approved"):
        revision = REPRO[
            f"collection/{collection_name}/revision/{change.change_id}"
        ]
        record = record_iri(collection_name, change.record_id)
        store.add(revision, RDF.type, REPRO.Revision)
        store.add(revision, PROV.wasRevisionOf, record)
        store.add(revision, REPRO.field, Literal(change.field))
        if change.old_value is not None:
            store.add(revision, REPRO.oldValue, Literal(change.old_value))
        if change.new_value is not None:
            store.add(revision, REPRO.newValue, Literal(change.new_value))
        store.add(revision, REPRO.step, Literal(change.step))
        if change.curator:
            store.add(revision, PROV.wasAttributedTo,
                      Literal(change.curator))
    return store
