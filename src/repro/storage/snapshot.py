"""MVCC read views: query the database as of a pinned commit.

:meth:`Database.snapshot() <repro.storage.database.Database.snapshot>`
pins the current commit sequence and returns a :class:`Snapshot`.  Every
read through it resolves rows against the committed version history
(:meth:`Table.version_at <repro.storage.table.Table.version_at>`), so:

* uncommitted transaction writes are invisible (their pre-images were
  pinned as baselines when the rows were claimed);
* commits that happen after the snapshot was taken are invisible;
* readers never block writers — a snapshot read takes the database lock
  only long enough to collect a consistent rowid set.

Snapshot tables deliberately expose **no secondary indexes**
(:meth:`SnapshotTable.index_on` always returns ``None``): live indexes
reflect the latest physical state, which may disagree with the pinned
versions, so the planner falls back to predicate-checked scans — always
correct, at full-scan cost.  Release snapshots promptly (they are
context managers) so version history can be pruned.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, TYPE_CHECKING

from repro.errors import RowNotFoundError, StorageError, UnknownTableError
from repro.storage.query import Query
from repro.storage.schema import TableSchema
from repro.storage.table import Row, Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import Database

__all__ = ["Snapshot", "SnapshotTable"]


class SnapshotTable:
    """Read-only view of one table as of a snapshot's commit sequence.

    Duck-types the read surface of :class:`~repro.storage.table.Table`
    (``name``/``schema``/``__len__``/``rows``/``row_by_id``/``scan``/
    ``index_on``), so :class:`~repro.storage.query.Query` and the planner
    run against it unchanged.
    """

    def __init__(self, table: Table, seq: int, lock: Any) -> None:
        # ``lock`` is the owning database's re-entrant write lock.
        self._table = table
        self._seq = seq
        self._lock = lock
        self._count: int | None = None

    @property
    def name(self) -> str:
        return self._table.name

    @property
    def schema(self) -> TableSchema:
        return self._table.schema

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self._items())
        return self._count

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:
        return f"SnapshotTable({self.name}@{self._seq})"

    def _items(self) -> Iterator[tuple[int, Row]]:
        # Collect the candidate rowids under the lock (cheap), then
        # resolve versions lock-free: version chains are append-only and
        # physical row dicts are replaced rather than mutated in place.
        with self._lock:
            rowids = sorted(self._table.tracked_rowids())
        for rowid in rowids:
            row = self._table.version_at(rowid, self._seq)
            if row is not None:
                yield rowid, row

    def rows(self) -> Iterator[Row]:
        for _, row in self._items():
            yield row

    def rows_with_ids(self) -> Iterator[tuple[int, Row]]:
        return self._items()

    def row_by_id(self, rowid: int) -> Row:
        row = self._table.version_at(rowid, self._seq)
        if row is None:
            raise RowNotFoundError(
                f"{self.name}: no row {rowid} at snapshot seq {self._seq}"
            )
        return row

    def scan(self, rowids: Iterable[int] | None = None) -> Iterator[Row]:
        if rowids is None:
            yield from self.rows()
            return
        for rowid in sorted(set(rowids)):
            row = self._table.version_at(rowid, self._seq)
            if row is not None:
                yield row

    # -- planner surface: no index acceleration through a snapshot ------

    def index_on(self, column: str) -> None:
        return None

    def indexes(self) -> dict[str, Any]:
        return {}

    def stats(self) -> dict[str, Any]:
        return {
            "table": self.name,
            "snapshot_seq": self._seq,
            "rows": len(self),
            "indexes": {},
        }


class Snapshot:
    """A pinned, consistent read view over the whole database."""

    def __init__(self, database: "Database", seq: int) -> None:
        self._database = database
        self._seq = seq
        self._released = False
        self._tables: dict[str, SnapshotTable] = {}

    @property
    def seq(self) -> int:
        """Commit sequence this snapshot reads as of."""
        return self._seq

    @property
    def released(self) -> bool:
        return self._released

    def table(self, name: str) -> SnapshotTable:
        if self._released:
            raise StorageError(
                f"snapshot @{self._seq} has been released")
        view = self._tables.get(name)
        if view is None:
            if name not in self._database._tables:
                raise UnknownTableError(f"no table {name!r}")
            view = SnapshotTable(self._database._tables[name], self._seq,
                                 self._database._lock)
            self._tables[name] = view
        return view

    def query(self, table_name: str) -> Query:
        """Fluent query against the pinned state (joins resolve through
        the same snapshot)."""
        return Query(self.table(table_name), resolve_table=self.table)

    def count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def release(self) -> None:
        """Unpin the snapshot so version history can be pruned
        (idempotent; further reads raise)."""
        if not self._released:
            self._released = True
            self._tables = {}
            self._database._release_snapshot(self._seq)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "active"
        return f"Snapshot(seq={self._seq}, {state})"
