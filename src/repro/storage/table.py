"""The table: row storage, constraint enforcement and index maintenance.

Rows are stored as plain dicts keyed by a hidden monotonically increasing
row id.  All mutation goes through :meth:`Table.insert`,
:meth:`Table.update` and :meth:`Table.delete`, which

* apply column defaults and type coercion,
* enforce NOT NULL / UNIQUE / CHECK constraints,
* keep secondary indexes in sync,
* report undo records so the transaction layer can roll back.

Rows handed back to callers are *copies*; mutating them never corrupts the
table (the paper's "original collection unchanged" requirement depends on
this).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import (
    ConstraintViolation,
    RowNotFoundError,
    UnknownColumnError,
)
from repro.storage.index import HashIndex, Index, SortedIndex, build_index
from repro.storage.schema import TableSchema
from repro.telemetry import get_telemetry
from repro.telemetry.metrics import Counter

__all__ = ["Table"]

Row = dict[str, Any]
UndoCallback = Callable[[str, int, Row | None, Row | None], None]


class Table:
    """One table: rows + indexes + constraints.

    Not usually constructed directly — use
    :meth:`repro.storage.database.Database.create_table`.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, Row] = {}
        self._next_rowid = 1
        self._indexes: dict[str, Index] = {}
        self._undo_hook: UndoCallback | None = None
        # MVCC: committed row images keyed by rowid.  Each entry is an
        # append-only list of ``(commit_seq, image-or-None)`` pairs
        # (``None`` = deleted/not yet inserted at that point).  Absent
        # rowids are "clean": the physical row *is* the committed image.
        # The database layer appends at commit time and prunes versions
        # no live snapshot or transaction can still observe.
        self._history: dict[int, list[tuple[int, Row | None]]] = {}
        # UNIQUE columns (incl. the primary key) get a hash index up front
        # so uniqueness checks stay O(1).
        for column in schema.columns:
            if column.unique:
                self._indexes[column.name] = HashIndex(column.name)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:
        return f"Table({self.name}, {len(self)} rows)"

    def rows(self) -> Iterator[Row]:
        """Yield a *copy* of every row, in insertion (rowid) order."""
        for rowid in sorted(self._rows):
            yield dict(self._rows[rowid])

    def rows_with_ids(self) -> Iterator[tuple[int, Row]]:
        for rowid in sorted(self._rows):
            yield rowid, dict(self._rows[rowid])

    def row_by_id(self, rowid: int) -> Row:
        try:
            return dict(self._rows[rowid])
        except KeyError:
            raise RowNotFoundError(
                f"table {self.name!r} has no row id {rowid}"
            ) from None

    def set_undo_hook(self, hook: UndoCallback | None) -> None:
        """Install a callback ``(op, rowid, before, after)`` used by the
        transaction layer to record undo information."""
        self._undo_hook = hook

    def _metric(self, name: str, **labels: str) -> Counter:
        """Counter in the process-wide registry, labeled by table."""
        return get_telemetry().metrics.counter(name, table=self.name,
                                               **labels)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _normalize(self, values: Mapping[str, Any], partial: bool = False) -> Row:
        """Validate and coerce ``values`` against the schema.

        ``partial=True`` (updates) skips defaulting and allows a subset of
        columns; ``partial=False`` (inserts) applies defaults and requires
        all NOT NULL columns to end up non-``None``.
        """
        for key in values:
            if not self.schema.has_column(key):
                raise UnknownColumnError(
                    f"table {self.name!r} has no column {key!r}"
                )
        normalized: Row = {}
        columns = (
            [self.schema.column(k) for k in values] if partial else self.schema.columns
        )
        for column in columns:
            if column.name in values:
                raw = values[column.name]
            elif partial:
                continue
            else:
                raw = column.resolve_default()
            if raw is not None:
                try:
                    raw = column.type.coerce(raw)
                except (ValueError, TypeError) as exc:
                    raise ConstraintViolation(
                        "TYPE",
                        f"{self.name}.{column.name}: {exc}",
                    ) from None
            if raw is None and not column.nullable:
                raise ConstraintViolation(
                    "NOT NULL", f"{self.name}.{column.name} must not be null"
                )
            if raw is not None and column.check is not None and not column.check(raw):
                raise ConstraintViolation(
                    "CHECK",
                    f"{self.name}.{column.name} rejected value {raw!r}",
                )
            normalized[column.name] = raw
        return normalized

    def _check_unique(self, row: Row, exclude_rowid: int | None = None) -> None:
        for column in self.schema.columns:
            if not column.unique:
                continue
            value = row.get(column.name)
            if value is None:
                continue
            hits = self._indexes[column.name].lookup(value)
            hits.discard(exclude_rowid if exclude_rowid is not None else -1)
            if hits:
                raise ConstraintViolation(
                    "UNIQUE",
                    f"{self.name}.{column.name} already contains {value!r}",
                )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(self, values: Mapping[str, Any]) -> int:
        """Insert one row; returns its row id."""
        row = self._normalize(values)
        self._check_unique(row)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        for index in self._indexes.values():
            index.add(rowid, row.get(index.column))
        self._metric("storage_rows_inserted_total").inc()
        if self._undo_hook is not None:
            self._undo_hook("insert", rowid, None, dict(row))
        return rowid

    # ------------------------------------------------------------------
    # bulk write path
    # ------------------------------------------------------------------

    def prepare_rows(self, rows: Iterable[Mapping[str, Any]]) -> list[Row]:
        """Validate a batch for :meth:`apply_prepared`.

        Normalizes every row and runs the UNIQUE checks *batch-wise*: one
        index probe against existing rows plus an intra-batch seen-set,
        instead of per-row index round trips.  Raises before anything is
        mutated, so a failing batch leaves the table untouched.
        """
        prepared = [self._normalize(values) for values in rows]
        for column in self.schema.columns:
            if not column.unique:
                continue
            index = self._indexes[column.name]
            seen_in_batch: set[Any] = set()
            for row in prepared:
                value = row.get(column.name)
                if value is None:
                    continue
                if value in seen_in_batch or index.count(value):
                    raise ConstraintViolation(
                        "UNIQUE",
                        f"{self.name}.{column.name} already contains "
                        f"{value!r}",
                    )
                seen_in_batch.add(value)
        return prepared

    def apply_prepared(self, prepared: list[Row]) -> list[int]:
        """Write rows validated by :meth:`prepare_rows`.

        Index maintenance is deferred: each index gets one
        :meth:`~repro.storage.index.Index.bulk_add` call (a sorted index
        does one extend + sort instead of n binary insertions), and the
        insert counter is bumped once for the whole batch.
        """
        first_rowid = self._next_rowid
        rowids = list(range(first_rowid, first_rowid + len(prepared)))
        self._next_rowid = first_rowid + len(prepared)
        for rowid, row in zip(rowids, prepared):
            self._rows[rowid] = row
        for index in self._indexes.values():
            column = index.column
            index.bulk_add(
                (rowid, row.get(column))
                for rowid, row in zip(rowids, prepared)
            )
        if prepared:
            self._metric("storage_rows_inserted_total").inc(len(prepared))
            self._metric("storage_bulk_batches_total").inc()
        if self._undo_hook is not None:
            for rowid, row in zip(rowids, prepared):
                self._undo_hook("insert", rowid, None, dict(row))
        return rowids

    def bulk_insert(self, rows: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert many rows atomically; returns their row ids.

        Equivalent to repeated :meth:`insert` but validates the whole
        batch first (all-or-nothing) and defers index maintenance to one
        bulk rebuild per index.
        """
        return self.apply_prepared(self.prepare_rows(rows))

    def update_row(self, rowid: int, changes: Mapping[str, Any]) -> Row:
        """Apply ``changes`` to the row ``rowid``; returns the new row."""
        if rowid not in self._rows:
            raise RowNotFoundError(
                f"table {self.name!r} has no row id {rowid}"
            )
        normalized = self._normalize(changes, partial=True)
        before = dict(self._rows[rowid])
        after = dict(before)
        after.update(normalized)
        self._check_unique(after, exclude_rowid=rowid)
        for index in self._indexes.values():
            old = before.get(index.column)
            new = after.get(index.column)
            if old != new:
                index.remove(rowid, old)
                index.add(rowid, new)
        self._rows[rowid] = after
        self._metric("storage_rows_updated_total").inc()
        if self._undo_hook is not None:
            self._undo_hook("update", rowid, before, dict(after))
        return dict(after)

    def delete_row(self, rowid: int) -> Row:
        """Delete row ``rowid``; returns the deleted row."""
        if rowid not in self._rows:
            raise RowNotFoundError(
                f"table {self.name!r} has no row id {rowid}"
            )
        row = self._rows.pop(rowid)
        for index in self._indexes.values():
            index.remove(rowid, row.get(index.column))
        self._metric("storage_rows_deleted_total").inc()
        if self._undo_hook is not None:
            self._undo_hook("delete", rowid, dict(row), None)
        return dict(row)

    # ------------------------------------------------------------------
    # raw restore (transaction rollback / journal replay)
    # ------------------------------------------------------------------

    def restore_insert(self, rowid: int, row: Row) -> None:
        """Re-insert an exact row at an exact id, bypassing defaults (the
        row was already validated when first written)."""
        if rowid in self._rows:
            raise ConstraintViolation(
                "ROWID", f"{self.name}: row id {rowid} already present"
            )
        self._rows[rowid] = dict(row)
        self._next_rowid = max(self._next_rowid, rowid + 1)
        for index in self._indexes.values():
            index.add(rowid, row.get(index.column))

    def restore_delete(self, rowid: int) -> None:
        row = self._rows.pop(rowid, None)
        if row is not None:
            for index in self._indexes.values():
                index.remove(rowid, row.get(index.column))

    def restore_update(self, rowid: int, row: Row) -> None:
        before = self._rows.get(rowid)
        if before is None:
            self.restore_insert(rowid, row)
            return
        for index in self._indexes.values():
            old = before.get(index.column)
            new = row.get(index.column)
            if old != new:
                index.remove(rowid, old)
                index.add(rowid, new)
        self._rows[rowid] = dict(row)

    # ------------------------------------------------------------------
    # MVCC version history (driven by the database layer)
    # ------------------------------------------------------------------

    def last_committed_seq(self, rowid: int) -> int:
        """Commit sequence of the last committed write to ``rowid``
        (0 when the row has no tracked history)."""
        entries = self._history.get(rowid)
        return entries[-1][0] if entries else 0

    def ensure_baseline(self, rowid: int, before: Row | None) -> None:
        """Pin the pre-image of ``rowid`` before an uncommitted write
        touches the physical row, so snapshot readers keep seeing the
        committed state while the writing transaction is in flight."""
        if rowid not in self._history:
            self._history[rowid] = [
                (0, dict(before) if before is not None else None)
            ]

    def pin_insert_baselines(self, count: int = 1) -> None:
        """Pin "row absent" baselines for the next ``count`` rowids an
        insert will allocate, *before* the physical rows land: lock-free
        snapshot readers must resolve a brand-new rowid to "not visible
        yet" rather than fall back to the freshly inserted physical row.
        Harmless if the insert then fails validation — a ``(0, None)``
        baseline describes a row that does not exist, and pruning drops
        it."""
        for offset in range(count):
            self.ensure_baseline(self._next_rowid + offset, None)

    def note_committed(self, rowid: int, before: Row | None,
                       after: Row | None, seq: int) -> None:
        """Append the committed image of ``rowid`` at commit ``seq``."""
        entries = self._history.get(rowid)
        if entries is None:
            entries = [(0, dict(before) if before is not None else None)]
            self._history[rowid] = entries
        entries.append((seq, dict(after) if after is not None else None))

    def version_at(self, rowid: int, seq: int) -> Row | None:
        """The committed image of ``rowid`` as of commit ``seq`` (a
        copy), or ``None`` when the row was not visible then.

        Safe to call without the database lock.  Writers always pin a
        baseline into ``_history`` *before* mutating the physical row,
        so the clean-row fallback re-checks the history after reading
        the physical image (seqlock-style): if no pin has appeared by
        then, the physical read happened before any mutation and is the
        committed image; if one has, the row is resolved through the
        version chain instead.
        """
        entries = self._history.get(rowid)
        if entries is None:
            # clean row: the physical image is the committed image
            row = self._rows.get(rowid)
            entries = self._history.get(rowid)
            if entries is None:
                return dict(row) if row is not None else None
        for version_seq, image in reversed(entries):
            if version_seq <= seq:
                return dict(image) if image is not None else None
        return None

    def tracked_rowids(self) -> set[int]:
        """Every rowid a snapshot reader must consider: physically
        present rows plus rows with version history (covers rows deleted
        after a snapshot was taken)."""
        return set(self._rows) | set(self._history)

    def prune_versions(self, floor: int,
                       keep: Iterable[int] = ()) -> int:
        """Drop version history no reader at or after commit ``floor``
        can observe; rowids in ``keep`` (uncommitted writes) are pinned.
        Returns the number of discarded version entries."""
        pinned = set(keep)
        dropped = 0
        for rowid in list(self._history):
            if rowid in pinned:
                continue
            entries = self._history[rowid]
            # index of the last entry at or before the floor: everything
            # older is unobservable and the entry itself becomes the new
            # baseline
            base = None
            for position in range(len(entries) - 1, -1, -1):
                if entries[position][0] <= floor:
                    base = position
                    break
            if base is None:
                continue
            if base == len(entries) - 1:
                # single live version: the physical row carries it, so
                # the whole chain can go (a clean row has no history)
                dropped += len(entries)
                del self._history[rowid]
            elif base > 0:
                dropped += base
                self._history[rowid] = entries[base:]
        return dropped

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash") -> Index:
        """Create (or return the existing) secondary index on ``column``.

        ``kind`` is ``"hash"`` for equality or ``"sorted"`` for ranges.
        An existing index of a different kind is replaced only when
        upgrading hash -> sorted would lose nothing; otherwise kept.
        Concretely: a sorted index already serves equality lookups, so a
        ``"hash"`` request over it returns the sorted index unchanged
        instead of silently dropping range-query support.
        """
        self.schema.column(column)  # raises on unknown column
        existing = self._indexes.get(column)
        if existing is not None:
            if existing.kind == kind:
                return existing
            if existing.kind == "sorted" and kind == "hash":
                return existing
        index = build_index(kind, column)
        for rowid, row in self._rows.items():
            index.add(rowid, row.get(column))
        self._indexes[column] = index
        self._metric("storage_indexes_built_total", kind=kind).inc()
        return index

    def index_on(self, column: str) -> Index | None:
        return self._indexes.get(column)

    def indexes(self) -> dict[str, Index]:
        return dict(self._indexes)

    def stats(self) -> dict[str, Any]:
        """Cardinality statistics the cost-based planner reasons over:
        row count plus per-index entry count and distinct-value count."""
        return {
            "rows": len(self._rows),
            "indexes": {
                column: {
                    "kind": index.kind,
                    "entries": len(index),  # type: ignore[arg-type] - every index is sized
                    "cardinality": index.cardinality(),
                }
                for column, index in sorted(self._indexes.items())
            },
        }

    # ------------------------------------------------------------------
    # scanning helpers used by the query layer
    # ------------------------------------------------------------------

    def candidate_rowids(
        self,
        equalities: Mapping[str, Any],
        ranges: Mapping[str, tuple[Any, Any]],
    ) -> set[int] | None:
        """Return a candidate row-id set using available indexes, or
        ``None`` when no index applies (full scan needed)."""
        candidate: set[int] | None = None
        for column, value in equalities.items():
            index = self._indexes.get(column)
            if index is None:
                continue
            hits = index.lookup(value)
            candidate = hits if candidate is None else candidate & hits
            if not candidate:
                return set()
        for column, (low, high) in ranges.items():
            index = self._indexes.get(column)
            if not isinstance(index, SortedIndex):
                continue
            hits = set(index.range(low, high))
            candidate = hits if candidate is None else candidate & hits
            if not candidate:
                return set()
        return candidate

    def scan(self, rowids: Iterable[int] | None = None) -> Iterator[Row]:
        """Yield copies of rows; restricted to ``rowids`` when given."""
        if rowids is None:
            yield from self.rows()
            return
        for rowid in sorted(rowids):
            row = self._rows.get(rowid)
            if row is not None:
                yield dict(row)

    # ------------------------------------------------------------------
    # bulk state (snapshots)
    # ------------------------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """Serialize rows + index descriptors for a snapshot."""
        json_rows = {}
        for rowid, row in self._rows.items():
            encoded = {}
            for column in self.schema.columns:
                encoded[column.name] = column.type.to_json(row.get(column.name))
            json_rows[str(rowid)] = encoded
        return {
            "schema": self.schema.to_dict(),
            "next_rowid": self._next_rowid,
            "rows": json_rows,
            "indexes": [
                {"column": index.column, "kind": index.kind}
                for index in self._indexes.values()
            ],
        }

    @classmethod
    def load_state(cls, state: Mapping[str, Any]) -> "Table":
        schema = TableSchema.from_dict(state["schema"])
        table = cls(schema)
        for descriptor in state.get("indexes", ()):
            table.create_index(descriptor["column"], descriptor["kind"])
        for rowid_text, encoded in state.get("rows", {}).items():
            decoded = {}
            for column in schema.columns:
                decoded[column.name] = column.type.from_json(
                    encoded.get(column.name)
                )
            table.restore_insert(int(rowid_text), decoded)
        table._next_rowid = max(
            table._next_rowid, int(state.get("next_rowid", 1))
        )
        return table
