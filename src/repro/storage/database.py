"""The database: named tables, transactions, journaling, queries.

This is the "DBMS" of the paper's architecture — the access layer shared
by the data repository, the workflow repository and the provenance
repository.  A :class:`Database` can be purely in-memory (default) or
durable when constructed with a journal path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import (
    DuplicateTableError,
    RowNotFoundError,
    TransactionError,
    UnknownTableError,
)
from repro.storage.journal import Journal, encode_row
from repro.storage.predicate import Predicate
from repro.storage.query import Query
from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.storage.transactions import Transaction

__all__ = ["Database"]


class Database:
    """A collection of tables with optional durability.

    Parameters
    ----------
    name:
        Purely informational label.
    journal_path:
        When given, every committed mutation is appended to a JSON-lines
        journal there, and :meth:`recover` can rebuild the database.
    """

    def __init__(self, name: str = "db",
                 journal_path: str | Path | None = None) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._transaction: Transaction | None = None
        self._journal = Journal(journal_path) if journal_path else None
        self._journal_buffer: list[dict[str, Any]] = []

    def __repr__(self) -> str:
        return f"Database({self.name}, tables={sorted(self._tables)})"

    # ------------------------------------------------------------------
    # schema operations
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema, *, _journal: bool = True) -> Table:
        """Create a table from ``schema``; returns it."""
        if schema.name in self._tables:
            raise DuplicateTableError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.parent_table not in self._tables and fk.parent_table != schema.name:
                raise UnknownTableError(
                    f"foreign key references missing table {fk.parent_table!r}"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        if _journal:
            self._journal_write(
                {"op": "create_table", "schema": schema.to_dict()}
            )
        return table

    def drop_table(self, name: str, *, _journal: bool = True) -> None:
        if name not in self._tables:
            raise UnknownTableError(f"no table {name!r}")
        del self._tables[name]
        if _journal:
            self._journal_write({"op": "drop_table", "table": name})

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Create a secondary index; journaled so recovery keeps it."""
        self.table(table).create_index(column, kind)
        self._journal_write(
            {"op": "create_index", "table": table, "column": column,
             "kind": kind}
        )

    # ------------------------------------------------------------------
    # row operations
    # ------------------------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any]) -> int:
        """Insert one row; returns its row id."""
        from repro.errors import ConstraintViolation

        table = self.table(table_name)
        rowid = table.insert(values)
        row = table.row_by_id(rowid)
        try:
            self._check_foreign_keys(table, row)
        except ConstraintViolation:
            table.restore_delete(rowid)
            raise
        self._record_mutation(table_name, "insert", rowid, None, row)
        self._journal_write({
            "op": "insert", "table": table_name, "rowid": rowid,
            "row": encode_row(table.schema, row),
        })
        return rowid

    def insert_many(self, table_name: str,
                    rows: Iterable[Mapping[str, Any]]) -> list[int]:
        return [self.insert(table_name, row) for row in rows]

    def bulk_load(self, table_name: str,
                  rows: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert a batch of rows through the bulk write path.

        Compared to :meth:`insert_many` this validates the whole batch
        up front (a failing row leaves the table untouched), defers index
        maintenance to one bulk rebuild per index, and appends a single
        batched journal entry instead of one per row.  Foreign keys are
        checked after the batch lands so rows may reference each other
        (and themselves), mirroring :meth:`insert`; a violation rolls the
        whole batch back.
        """
        from repro.errors import ConstraintViolation

        table = self.table(table_name)
        prepared = table.prepare_rows(rows)
        rowids = table.apply_prepared(prepared)
        try:
            for row in prepared:
                self._check_foreign_keys(table, row)
        except ConstraintViolation:
            for rowid in reversed(rowids):
                table.restore_delete(rowid)
            raise
        encoded = []
        for rowid, row in zip(rowids, prepared):
            self._record_mutation(table_name, "insert", rowid, None,
                                  dict(row))
            encoded.append(
                {"rowid": rowid, "row": encode_row(table.schema, row)}
            )
        if encoded:
            self._journal_write({
                "op": "bulk_insert", "table": table_name, "rows": encoded,
            })
        return rowids

    def update(self, table_name: str, rowid: int,
               changes: Mapping[str, Any]) -> dict[str, Any]:
        """Update one row by id; returns the new row."""
        from repro.errors import ConstraintViolation

        table = self.table(table_name)
        before = table.row_by_id(rowid)
        after = table.update_row(rowid, changes)
        try:
            self._check_foreign_keys(table, after)
        except ConstraintViolation:
            table.restore_update(rowid, before)
            raise
        self._record_mutation(table_name, "update", rowid, before, after)
        self._journal_write({
            "op": "update", "table": table_name, "rowid": rowid,
            "row": encode_row(table.schema, after),
        })
        return after

    def delete(self, table_name: str, rowid: int) -> dict[str, Any]:
        """Delete one row by id; returns the deleted row."""
        table = self.table(table_name)
        row = table.delete_row(rowid)
        self._record_mutation(table_name, "delete", rowid, row, None)
        self._journal_write(
            {"op": "delete", "table": table_name, "rowid": rowid}
        )
        return row

    def update_where(self, table_name: str, predicate: Predicate,
                     changes: Mapping[str, Any]) -> int:
        """Update every matching row; returns the number updated."""
        table = self.table(table_name)
        matching = [
            rowid for rowid, row in table.rows_with_ids() if predicate(row)
        ]
        for rowid in matching:
            self.update(table_name, rowid, changes)
        return len(matching)

    def delete_where(self, table_name: str, predicate: Predicate) -> int:
        """Delete every matching row; returns the number deleted."""
        table = self.table(table_name)
        matching = [
            rowid for rowid, row in table.rows_with_ids() if predicate(row)
        ]
        for rowid in matching:
            self.delete(table_name, rowid)
        return len(matching)

    def get(self, table_name: str, key: Any) -> dict[str, Any]:
        """Fetch one row by primary-key value."""
        table = self.table(table_name)
        pk = table.schema.primary_key
        if pk is None:
            return table.row_by_id(int(key))
        index = table.index_on(pk)
        assert index is not None  # primary keys always have a hash index
        hits = index.lookup(key)
        if not hits:
            raise RowNotFoundError(
                f"{table_name}: no row with {pk}={key!r}"
            )
        return table.row_by_id(next(iter(hits)))

    def rowid_for(self, table_name: str, key: Any) -> int:
        """Row id of the row whose primary key equals ``key``."""
        table = self.table(table_name)
        pk = table.schema.primary_key
        if pk is None:
            return int(key)
        index = table.index_on(pk)
        assert index is not None
        hits = index.lookup(key)
        if not hits:
            raise RowNotFoundError(
                f"{table_name}: no row with {pk}={key!r}"
            )
        return next(iter(hits))

    def _check_foreign_keys(self, table: Table, row: Mapping[str, Any]) -> None:
        from repro.errors import ConstraintViolation

        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            parent = self.table(fk.parent_table)
            index = parent.index_on(fk.parent_column)
            if index is not None:
                found = bool(index.lookup(value))
            else:
                found = any(
                    parent_row.get(fk.parent_column) == value
                    for parent_row in parent.rows()
                )
            if not found:
                raise ConstraintViolation(
                    "FOREIGN KEY",
                    f"{table.name}.{fk.column}={value!r} has no parent in "
                    f"{fk.parent_table}.{fk.parent_column}",
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(self, table_name: str) -> Query:
        """Start a fluent :class:`~repro.storage.query.Query`."""
        return Query(self.table(table_name), resolve_table=self.table)

    def count(self, table_name: str) -> int:
        return len(self.table(table_name))

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Open a transaction (usable as a context manager)."""
        if self._transaction is not None:
            raise TransactionError("a transaction is already open")
        self._transaction = Transaction(self)
        return self._transaction

    def in_transaction(self) -> bool:
        return self._transaction is not None

    def _record_mutation(self, table: str, op: str, rowid: int,
                         before: dict[str, Any] | None,
                         after: dict[str, Any] | None) -> None:
        if self._transaction is not None:
            self._transaction.record(table, op, rowid, before, after)

    def _finish_transaction(self, transaction: Transaction) -> None:
        if self._transaction is not transaction:
            raise TransactionError("finishing a transaction that is not open")
        self._transaction = None
        if transaction.state == "committed":
            if self._journal is not None and self._journal_buffer:
                self._journal.append_many(self._journal_buffer)
        self._journal_buffer = []

    def _journal_write(self, entry: dict[str, Any]) -> None:
        if self._journal is None:
            return
        if self._transaction is not None:
            # Buffer until commit: rolled-back work must never hit disk.
            self._journal_buffer.append(entry)
        else:
            self._journal.append(entry)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @property
    def journal(self) -> Journal | None:
        return self._journal

    def checkpoint(self) -> Path | None:
        """Write a snapshot and truncate the journal (no-op in memory)."""
        if self._journal is None:
            return None
        return self._journal.write_snapshot(self)

    @classmethod
    def recover(cls, name: str, journal_path: str | Path) -> "Database":
        """Rebuild a database from its snapshot + journal."""
        database = cls(name)
        journal = Journal(journal_path)
        journal.load_snapshot(database)
        journal.replay(database)
        database._journal = journal
        return database

    def dump_state(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "tables": {
                name: table.dump_state()
                for name, table in self._tables.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.name = state.get("name", self.name)
        self._tables = {
            name: Table.load_state(table_state)
            for name, table_state in state.get("tables", {}).items()
        }
