"""The database: named tables, transactions, journaling, queries.

This is the "DBMS" of the paper's architecture — the access layer shared
by the data repository, the workflow repository and the provenance
repository.  A :class:`Database` can be purely in-memory (default) or
durable when constructed with a journal path.

Concurrency model (multi-tenant storage)
----------------------------------------

* **Statements are serialized, transactions interleave.**  Every
  mutation takes the database write lock for its own duration, so any
  number of threads can run transactions concurrently; their statements
  interleave at row granularity.
* **First-writer-wins conflicts.**  A transaction's first write to a row
  *claims* it.  A second transaction (or an autocommit statement)
  touching a claimed row fails immediately with
  :class:`~repro.errors.TransactionConflictError`; so does a write to a
  row that was committed after the transaction began.  Conflicts are
  deterministic and eager — callers retry the whole transaction.
* **MVCC snapshot reads.**  :meth:`Database.snapshot` pins the current
  commit sequence and returns a read view whose queries run against the
  committed state as of that point: versioned row images
  (:meth:`~repro.storage.table.Table.note_committed`) keep pre-images
  alive while writers churn, so readers never block writers and never
  see uncommitted or later-committed data.
* **Commit serialization through the journal.**  Each transaction
  buffers its journal entries; the commit appends them atomically under
  the write lock, so the write-ahead journal records one serial history
  equivalent to the interleaved execution.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import (
    DuplicateTableError,
    RowNotFoundError,
    TransactionConflictError,
    TransactionError,
    UnknownTableError,
)
from repro.storage.journal import Journal, encode_row
from repro.storage.predicate import Predicate
from repro.storage.query import Query
from repro.storage.schema import TableSchema
from repro.storage.snapshot import Snapshot
from repro.storage.table import Table
from repro.storage.transactions import Transaction

__all__ = ["Database"]

#: Commits between version-history pruning sweeps.
PRUNE_INTERVAL = 64


class Database:
    """A collection of tables with optional durability.

    Parameters
    ----------
    name:
        Purely informational label.
    journal_path:
        When given, every committed mutation is appended to a JSON-lines
        journal there, and :meth:`recover` can rebuild the database.
    """

    def __init__(self, name: str = "db",
                 journal_path: str | Path | None = None) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._journal = Journal(journal_path) if journal_path else None
        # -- concurrency state ------------------------------------------
        # One re-entrant lock serializes mutations, commits and
        # rollbacks; snapshot readers only take it briefly to collect a
        # consistent rowid set.
        self._lock = threading.RLock()
        #: monotonically increasing commit sequence (MVCC timestamps)
        self._commit_seq = 0
        self._last_prune_seq = 0
        self._tx_counter = 0
        #: open transaction per thread ident (one per thread, any number
        #: of threads)
        self._active_tx: dict[int, Transaction] = {}
        #: write claims: ``(table, rowid) -> owning transaction``
        self._row_writers: dict[tuple[str, int], Transaction] = {}
        #: pinned snapshot seqs -> refcount (pruning floor)
        self._snapshots: dict[int, int] = {}

    def __repr__(self) -> str:
        return f"Database({self.name}, tables={sorted(self._tables)})"

    # ------------------------------------------------------------------
    # schema operations
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema, *, _journal: bool = True) -> Table:
        """Create a table from ``schema``; returns it."""
        with self._lock:
            if schema.name in self._tables:
                raise DuplicateTableError(
                    f"table {schema.name!r} already exists")
            for fk in schema.foreign_keys:
                if fk.parent_table not in self._tables \
                        and fk.parent_table != schema.name:
                    raise UnknownTableError(
                        f"foreign key references missing table "
                        f"{fk.parent_table!r}"
                    )
            table = Table(schema)
            self._tables[schema.name] = table
            if _journal:
                self._journal_write(
                    {"op": "create_table", "schema": schema.to_dict()}
                )
            return table

    def drop_table(self, name: str, *, _journal: bool = True) -> None:
        with self._lock:
            if name not in self._tables:
                raise UnknownTableError(f"no table {name!r}")
            del self._tables[name]
            if _journal:
                self._journal_write({"op": "drop_table", "table": name})

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Create a secondary index; journaled so recovery keeps it."""
        with self._lock:
            self.table(table).create_index(column, kind)
            self._journal_write(
                {"op": "create_index", "table": table, "column": column,
                 "kind": kind}
            )

    # ------------------------------------------------------------------
    # row operations
    # ------------------------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any]) -> int:
        """Insert one row; returns its row id."""
        from repro.errors import ConstraintViolation

        with self._lock:
            table = self.table(table_name)
            if self._snapshots or self._active_tx:
                # pin the "row absent" baseline before the physical row
                # lands: lock-free snapshot readers must resolve the new
                # rowid to "not visible yet", never to the fresh row
                table.pin_insert_baselines()
            rowid = table.insert(values)
            row = table.row_by_id(rowid)
            try:
                self._check_foreign_keys(table, row)
                self._claim_row(table, rowid, before=None)
            except ConstraintViolation:
                table.restore_delete(rowid)
                raise
            self._record_mutation(table_name, "insert", rowid, None, row)
            self._journal_write({
                "op": "insert", "table": table_name, "rowid": rowid,
                "row": encode_row(table.schema, row),
            })
            return rowid

    def insert_many(self, table_name: str,
                    rows: Iterable[Mapping[str, Any]]) -> list[int]:
        return [self.insert(table_name, row) for row in rows]

    def bulk_load(self, table_name: str,
                  rows: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert a batch of rows through the bulk write path.

        Compared to :meth:`insert_many` this validates the whole batch
        up front (a failing row leaves the table untouched), defers index
        maintenance to one bulk rebuild per index, and appends a single
        batched journal entry instead of one per row.  Foreign keys are
        checked after the batch lands so rows may reference each other
        (and themselves), mirroring :meth:`insert`; a violation rolls the
        whole batch back.
        """
        from repro.errors import ConstraintViolation

        with self._lock:
            table = self.table(table_name)
            prepared = table.prepare_rows(rows)
            if self._snapshots or self._active_tx:
                table.pin_insert_baselines(len(prepared))
            rowids = table.apply_prepared(prepared)
            try:
                for row in prepared:
                    self._check_foreign_keys(table, row)
            except ConstraintViolation:
                for rowid in reversed(rowids):
                    table.restore_delete(rowid)
                raise
            transaction = self._current_transaction()
            encoded = []
            if transaction is None and rowids:
                # one commit sequence for the whole batch: the batch is
                # atomic and becomes visible to snapshots as one unit
                seq = self._advance_seq()
                watched = bool(self._snapshots) or bool(self._active_tx)
                for rowid, row in zip(rowids, prepared):
                    if watched or rowid in table._history:
                        table.note_committed(rowid, None, dict(row), seq)
            for rowid, row in zip(rowids, prepared):
                if transaction is not None:
                    self._claim_row(table, rowid, before=None)
                    transaction.record(table_name, "insert", rowid, None,
                                       dict(row))
                encoded.append(
                    {"rowid": rowid, "row": encode_row(table.schema, row)}
                )
            if encoded:
                self._journal_write({
                    "op": "bulk_insert", "table": table_name,
                    "rows": encoded,
                })
            self._maybe_prune()
            return rowids

    def update(self, table_name: str, rowid: int,
               changes: Mapping[str, Any]) -> dict[str, Any]:
        """Update one row by id; returns the new row."""
        from repro.errors import ConstraintViolation

        with self._lock:
            table = self.table(table_name)
            before = table.row_by_id(rowid)
            # conflict detection happens *before* the physical mutation,
            # so a conflicting statement leaves the table untouched
            self._claim_row(table, rowid, before)
            after = table.update_row(rowid, changes)
            try:
                self._check_foreign_keys(table, after)
            except ConstraintViolation:
                table.restore_update(rowid, before)
                raise
            self._record_mutation(table_name, "update", rowid, before, after)
            self._journal_write({
                "op": "update", "table": table_name, "rowid": rowid,
                "row": encode_row(table.schema, after),
            })
            return after

    def delete(self, table_name: str, rowid: int) -> dict[str, Any]:
        """Delete one row by id; returns the deleted row."""
        with self._lock:
            table = self.table(table_name)
            before = table.row_by_id(rowid)
            self._claim_row(table, rowid, before)
            row = table.delete_row(rowid)
            self._record_mutation(table_name, "delete", rowid, row, None)
            self._journal_write(
                {"op": "delete", "table": table_name, "rowid": rowid}
            )
            return row

    def update_where(self, table_name: str, predicate: Predicate,
                     changes: Mapping[str, Any]) -> int:
        """Update every matching row; returns the number updated.

        The statement is atomic: outside an explicit transaction the
        loop runs in an implicit one, so a conflict or constraint
        violation on any matching row rolls back the rows already
        touched instead of leaving a partially applied statement.
        """
        with self._lock:
            table = self.table(table_name)
            matching = [
                rowid for rowid, row in table.rows_with_ids()
                if predicate(row)
            ]
            if matching and self._current_transaction() is None:
                with self.transaction():
                    for rowid in matching:
                        self.update(table_name, rowid, changes)
            else:
                for rowid in matching:
                    self.update(table_name, rowid, changes)
            return len(matching)

    def delete_where(self, table_name: str, predicate: Predicate) -> int:
        """Delete every matching row; returns the number deleted.

        Atomic like :meth:`update_where`: a mid-statement conflict
        rolls back the deletes already applied.
        """
        with self._lock:
            table = self.table(table_name)
            matching = [
                rowid for rowid, row in table.rows_with_ids()
                if predicate(row)
            ]
            if matching and self._current_transaction() is None:
                with self.transaction():
                    for rowid in matching:
                        self.delete(table_name, rowid)
            else:
                for rowid in matching:
                    self.delete(table_name, rowid)
            return len(matching)

    def get(self, table_name: str, key: Any) -> dict[str, Any]:
        """Fetch one row by primary-key value."""
        table = self.table(table_name)
        pk = table.schema.primary_key
        if pk is None:
            return table.row_by_id(int(key))
        index = table.index_on(pk)
        assert index is not None  # primary keys always have a hash index
        hits = index.lookup(key)
        if not hits:
            raise RowNotFoundError(
                f"{table_name}: no row with {pk}={key!r}"
            )
        return table.row_by_id(next(iter(hits)))

    def rowid_for(self, table_name: str, key: Any) -> int:
        """Row id of the row whose primary key equals ``key``."""
        table = self.table(table_name)
        pk = table.schema.primary_key
        if pk is None:
            return int(key)
        index = table.index_on(pk)
        assert index is not None
        hits = index.lookup(key)
        if not hits:
            raise RowNotFoundError(
                f"{table_name}: no row with {pk}={key!r}"
            )
        return next(iter(hits))

    def _check_foreign_keys(self, table: Table, row: Mapping[str, Any]) -> None:
        from repro.errors import ConstraintViolation

        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            parent = self.table(fk.parent_table)
            index = parent.index_on(fk.parent_column)
            if index is not None:
                found = bool(index.lookup(value))
            else:
                found = any(
                    parent_row.get(fk.parent_column) == value
                    for parent_row in parent.rows()
                )
            if not found:
                raise ConstraintViolation(
                    "FOREIGN KEY",
                    f"{table.name}.{fk.column}={value!r} has no parent in "
                    f"{fk.parent_table}.{fk.parent_column}",
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(self, table_name: str) -> Query:
        """Start a fluent :class:`~repro.storage.query.Query`.

        Reads the *latest* physical state, including this thread's own
        uncommitted writes (and, under concurrency, other sessions'
        uncommitted writes).  Use :meth:`snapshot` for isolated reads.
        """
        return Query(self.table(table_name), resolve_table=self.table)

    def count(self, table_name: str) -> int:
        return len(self.table(table_name))

    # ------------------------------------------------------------------
    # snapshots (MVCC read views)
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current committed state and return a read view.

        Queries through the snapshot see exactly the rows committed
        before this call — never uncommitted writes, never later
        commits — and never block writers.  Release the snapshot (it is
        a context manager) so version history can be pruned.
        """
        with self._lock:
            seq = self._commit_seq
            self._snapshots[seq] = self._snapshots.get(seq, 0) + 1
            self._storage_counter("storage_snapshots_total").inc()
            return Snapshot(self, seq)

    def _release_snapshot(self, seq: int) -> None:
        with self._lock:
            count = self._snapshots.get(seq, 0) - 1
            if count > 0:
                self._snapshots[seq] = count
            else:
                self._snapshots.pop(seq, None)

    def _storage_counter(self, name: str, **labels: str):
        from repro.telemetry import get_telemetry

        return get_telemetry().metrics.counter(name, database=self.name,
                                               **labels)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Open a transaction for the calling thread (usable as a
        context manager).

        Each thread may hold one open transaction; opening a second one
        from the same thread raises :class:`TransactionError` (undo
        records must never interleave within a session).  Different
        threads run transactions concurrently under first-writer-wins
        conflict detection.
        """
        with self._lock:
            if self._active_tx:
                self._reap_abandoned()
            ident = threading.get_ident()
            existing = self._active_tx.get(ident)
            if existing is not None:
                raise TransactionError(
                    "a transaction is already open in this thread "
                    f"(tid={existing.tid}); commit or roll it back before "
                    "opening another"
                )
            self._tx_counter += 1
            transaction = Transaction(self, self._tx_counter,
                                      start_seq=self._commit_seq)
            self._active_tx[ident] = transaction
            return transaction

    def in_transaction(self) -> bool:
        """Whether the *calling thread* has an open transaction."""
        return self._current_transaction() is not None

    def active_transactions(self) -> int:
        """Number of open transactions across all threads."""
        return len(self._active_tx)

    def _current_transaction(self) -> Transaction | None:
        transaction = self._active_tx.get(threading.get_ident())
        if transaction is not None and not transaction.thread_alive():
            # OS thread idents are recycled: a previous pool worker died
            # with this transaction open and *we* inherited its ident.
            # Reap it — this thread's work must never be recorded into
            # the dead transaction's undo log.
            with self._lock:
                self._reap_abandoned()
            return self._active_tx.get(threading.get_ident())
        return transaction

    def _claim_row(self, table: Table, rowid: int,
                   before: dict[str, Any] | None) -> None:
        """First-writer-wins conflict detection for one row write.

        Raises :class:`TransactionConflictError` when the row carries an
        uncommitted write from another transaction, or (inside a
        transaction) was committed after the transaction began.  On the
        first claim by a transaction the committed pre-image is pinned in
        the version history so snapshot readers keep seeing it.
        """
        transaction = self._current_transaction()
        key = (table.name, rowid)
        owner = self._row_writers.get(key)
        if owner is not None and owner is not transaction \
                and not owner.thread_alive():
            # the claim belongs to a transaction whose thread died with
            # it open: reap instead of conflicting against a ghost
            self._reap_abandoned()
            owner = self._row_writers.get(key)
        if owner is not None and owner is not transaction:
            self._storage_counter("storage_transaction_conflicts_total",
                                  table=table.name, kind="write_write").inc()
            raise TransactionConflictError(
                f"row {table.name}#{rowid} has an uncommitted write from "
                f"transaction tid={owner.tid} (first writer wins)"
            )
        if transaction is None:
            if self._snapshots or self._active_tx:
                # autocommit statement with observers around: pin the
                # committed pre-image *before* the physical mutation so
                # lock-free snapshot readers never fall back to the
                # mutated physical row (the transactional path gets the
                # same pin below, at claim time)
                table.ensure_baseline(rowid, before)
            return
        if key not in transaction.claims:
            last_seq = table.last_committed_seq(rowid)
            if last_seq > transaction.start_seq:
                self._storage_counter(
                    "storage_transaction_conflicts_total",
                    table=table.name, kind="stale_write").inc()
                raise TransactionConflictError(
                    f"row {table.name}#{rowid} was committed at seq "
                    f"{last_seq}, after transaction tid={transaction.tid} "
                    f"began at seq {transaction.start_seq} (first "
                    "committer wins)"
                )
            transaction.claims.add(key)
            self._row_writers[key] = transaction
            table.ensure_baseline(rowid, before)

    def _record_mutation(self, table_name: str, op: str, rowid: int,
                         before: dict[str, Any] | None,
                         after: dict[str, Any] | None) -> None:
        transaction = self._current_transaction()
        if transaction is not None:
            transaction.record(table_name, op, rowid, before, after)
        else:
            self._note_autocommit(self._tables[table_name], rowid,
                                  before, after)

    def _advance_seq(self) -> int:
        self._commit_seq += 1
        return self._commit_seq

    def _note_autocommit(self, table: Table, rowid: int,
                         before: dict[str, Any] | None,
                         after: dict[str, Any] | None) -> None:
        """Publish an autocommitted statement to the version history.

        When nobody can observe old versions (no snapshots, no open
        transactions) and the row has no history, recording is skipped —
        the physical row is the committed truth and the single-writer
        hot path stays copy-free.
        """
        seq = self._advance_seq()
        if self._snapshots or self._active_tx or rowid in table._history:
            table.note_committed(rowid, before, after, seq)
        self._maybe_prune()

    def _commit_transaction(self, transaction: Transaction) -> None:
        with self._lock:
            if self._active_tx.get(transaction.thread_ident) \
                    is not transaction:
                raise TransactionError(
                    "finishing a transaction that is not open")
            # durability before visibility: the journal entries must be
            # on disk before any committed image becomes observable.  A
            # failed append leaves the transaction open with its claims
            # held and no versions published, so rollback() stays clean.
            if self._journal is not None and transaction.journal_buffer:
                self._journal.append_many(transaction.journal_buffer)
            transaction.journal_buffer = []
            seq = self._advance_seq()
            for (table_name, rowid), (before, after) \
                    in transaction.final_images().items():
                table = self._tables.get(table_name)
                if table is not None:
                    table.note_committed(rowid, before, after, seq)
            self._release_transaction(transaction)
            self._maybe_prune()

    def _rollback_transaction(self, transaction: Transaction) -> None:
        with self._lock:
            if self._active_tx.get(transaction.thread_ident) \
                    is not transaction:
                raise TransactionError(
                    "finishing a transaction that is not open")
            for record in reversed(transaction.undo_records()):
                table = self.table(record.table)
                if record.op == "insert":
                    table.restore_delete(record.rowid)
                elif record.op == "delete":
                    assert record.before is not None
                    table.restore_insert(record.rowid, record.before)
                else:  # update
                    assert record.before is not None
                    table.restore_update(record.rowid, record.before)
            transaction.journal_buffer = []
            self._release_transaction(transaction)

    def _abandon_transaction(self, transaction: Transaction) -> None:
        """Detach a transaction whose rollback failed mid-replay: drop
        its buffered journal entries and release its claims so other
        sessions are not wedged; the transaction object itself is dead
        (state ``failed``) and every further use raises."""
        with self._lock:
            self._storage_counter("storage_failed_rollbacks_total").inc()
            transaction.journal_buffer = []
            self._release_transaction(transaction)

    def _reap_abandoned(self) -> None:
        """Roll back and release transactions whose owning thread died.

        A pool worker can exit with a transaction still open.  Left
        alone, its entry in ``_active_tx`` and its row claims would leak
        forever — wedging those rows, blocking :meth:`checkpoint` and
        pinning the prune floor — and, because OS thread idents are
        recycled, an unrelated new thread with the same ident would be
        captured by the dead transaction.  The owner can never commit,
        so an abandoned transaction is replayed backwards like a
        rollback, marked ``failed`` and released.  Callers hold the
        database lock.
        """
        for transaction in list(self._active_tx.values()):
            if transaction.thread_alive():
                continue
            self._storage_counter(
                "storage_abandoned_transactions_total").inc()
            try:
                for record in reversed(transaction.undo_records()):
                    table = self._tables.get(record.table)
                    if table is None:
                        continue
                    if record.op == "insert":
                        table.restore_delete(record.rowid)
                    elif record.op == "delete":
                        assert record.before is not None
                        table.restore_insert(record.rowid, record.before)
                    else:  # update
                        assert record.before is not None
                        table.restore_update(record.rowid, record.before)
            finally:
                transaction.journal_buffer = []
                transaction.mark_abandoned()
                self._release_transaction(transaction)

    def _release_transaction(self, transaction: Transaction) -> None:
        for key in transaction.claims:
            if self._row_writers.get(key) is transaction:
                del self._row_writers[key]
        transaction.claims = set()
        if self._active_tx.get(transaction.thread_ident) is transaction:
            del self._active_tx[transaction.thread_ident]

    def _maybe_prune(self) -> None:
        """Drop version history nobody can observe any more (runs every
        :data:`PRUNE_INTERVAL` commits)."""
        if self._commit_seq - self._last_prune_seq < PRUNE_INTERVAL:
            return
        self._last_prune_seq = self._commit_seq
        if self._active_tx:
            # a dead thread's open transaction must not pin the floor
            self._reap_abandoned()
        floors = [self._commit_seq]
        floors.extend(self._snapshots)
        floors.extend(tx.start_seq for tx in self._active_tx.values())
        floor = min(floors)
        claimed: dict[str, set[int]] = {}
        for table_name, rowid in self._row_writers:
            claimed.setdefault(table_name, set()).add(rowid)
        for name, table in self._tables.items():
            table.prune_versions(floor, keep=claimed.get(name, ()))

    def _journal_write(self, entry: dict[str, Any]) -> None:
        if self._journal is None:
            return
        transaction = self._current_transaction()
        if transaction is not None:
            # Buffer until commit: rolled-back work must never hit disk.
            transaction.journal_buffer.append(entry)
        else:
            self._journal.append(entry)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @property
    def journal(self) -> Journal | None:
        return self._journal

    def checkpoint(self) -> Path | None:
        """Write a snapshot and truncate the journal (no-op in memory).

        Refuses to run while any transaction is open: the snapshot file
        would capture uncommitted physical rows, and a later rollback
        could not be replayed out of it.
        """
        if self._journal is None:
            return None
        with self._lock:
            if self._active_tx:
                self._reap_abandoned()
            if self._active_tx:
                raise TransactionError(
                    f"cannot checkpoint with {len(self._active_tx)} open "
                    "transaction(s)"
                )
            return self._journal.write_snapshot(self)

    @classmethod
    def recover(cls, name: str, journal_path: str | Path) -> "Database":
        """Rebuild a database from its snapshot + journal."""
        database = cls(name)
        journal = Journal(journal_path)
        journal.load_snapshot(database)
        journal.replay(database)
        database._journal = journal
        return database

    def dump_state(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "tables": {
                name: table.dump_state()
                for name, table in self._tables.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.name = state.get("name", self.name)
        self._tables = {
            name: Table.load_state(table_state)
            for name, table_state in state.get("tables", {}).items()
        }
