"""Cost-based access-path selection for queries.

The seed planner blindly intersected *every* applicable index and always
materialized the full result before sorting.  This module replaces that
with an explicit cost model over per-index cardinality probes:

* every equality / range / IN condition with a usable index becomes a
  :class:`ConditionProbe` carrying an **exact** match count, obtained in
  O(1) (hash bucket length) or O(log n) (bisect positions) without
  materializing any row-id set;
* the planner starts from the most selective probe and greedily adds
  further probes only when the cost of building their hit set is smaller
  than the expected fetch work they avoid;
* an unselective best probe (more than :data:`SCAN_FRACTION` of the
  table) loses to a plain full scan, which avoids building and sorting a
  giant row-id set only to visit most of the table anyway;
* ``order_by`` + ``limit`` queries get one of two streaming strategies:
  an **ordered index scan** straight off a :class:`SortedIndex` (rows
  are yielded already sorted, execution stops after ``offset + limit``
  matches) or a **heap top-k** (`heapq.nsmallest`/`nlargest`) that keeps
  only ``offset + limit`` rows in memory instead of sorting everything.

Plans are inert descriptions: :meth:`QueryPlan.rowids` builds the
candidate set only when the executor asks for it.  ``Query.explain()``
exposes :meth:`QueryPlan.to_dict` so callers (and the ``repro explain``
CLI) can see exactly which path was chosen and why.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.storage.index import SortedIndex
from repro.storage.predicate import Predicate
from repro.storage.table import Table

__all__ = ["ConditionProbe", "QueryPlan", "plan_query", "SCAN_FRACTION",
           "ORDERED_CANDIDATE_FACTOR", "FETCH_COST_FACTOR"]

#: A best index probe matching more than this fraction of the table loses
#: to a plain full scan (index fetch visits rows in random order and pays
#: a sort over the row-id set first).
SCAN_FRACTION = 0.5

#: When an index probe narrows the query to at most this many times the
#: requested ``offset + limit`` rows, fetching candidates and sorting the
#: small set beats streaming the ordered index.
ORDERED_CANDIDATE_FACTOR = 4

#: Fetching a candidate row and evaluating the residual predicate on it
#: costs roughly this many times a set insertion while building an index
#: hit set.  The intersection decision weighs probe-build work against
#: fetch work avoided using this exchange rate.
FETCH_COST_FACTOR = 4


class ConditionProbe:
    """One indexable condition with its exact match count."""

    __slots__ = ("column", "kind", "count", "_loader")

    def __init__(self, column: str, kind: str, count: int,
                 loader: Callable[[], set[int]]) -> None:
        self.column = column
        self.kind = kind  # "eq" | "range" | "in"
        self.count = count
        self._loader = loader

    def load(self) -> set[int]:
        return self._loader()

    def __repr__(self) -> str:
        return f"ConditionProbe({self.column} {self.kind}: {self.count})"


class QueryPlan:
    """The chosen access path plus the order/limit execution strategy."""

    def __init__(self, *, table: Table, access_path: str, strategy: str,
                 probes: Sequence[ConditionProbe] = (),
                 estimated_rows: int | None = None,
                 order_column: str | None = None,
                 descending: bool = False,
                 reason: str = "") -> None:
        self.table = table
        #: "full_scan" | "index_lookup" | "index_intersection"
        #: | "ordered_index"
        self.access_path = access_path
        #: "materialize" | "stream_ordered" | "topk_heap"
        self.strategy = strategy
        self.probes = list(probes)
        self.estimated_rows = estimated_rows
        self.order_column = order_column
        self.descending = descending
        self.reason = reason

    @property
    def index_columns(self) -> list[str]:
        if self.access_path == "ordered_index" and self.order_column:
            return [self.order_column]
        return [probe.column for probe in self.probes]

    @property
    def candidate_count(self) -> int | None:
        """The estimated candidate-set size (``None`` = no candidate set,
        i.e. a scan-shaped access path)."""
        if self.access_path in ("full_scan", "ordered_index"):
            return None
        return self.estimated_rows

    def rowids(self) -> set[int] | None:
        """Materialize the candidate row-id set (``None`` = scan)."""
        if self.access_path in ("full_scan", "ordered_index"):
            return None
        candidate: set[int] | None = None
        for probe in self.probes:
            hits = probe.load()
            candidate = hits if candidate is None else candidate & hits
            if not candidate:
                return set()
        return candidate

    def to_dict(self) -> dict[str, Any]:
        return {
            "access_path": self.access_path,
            "strategy": self.strategy,
            "index_columns": self.index_columns,
            "estimated_rows": self.estimated_rows,
            "order_column": self.order_column,
            "descending": self.descending,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return (f"QueryPlan({self.access_path}/{self.strategy}, "
                f"est={self.estimated_rows})")


def _gather_probes(table: Table, predicate: Predicate) -> list[ConditionProbe]:
    """Exact-count probes for every condition an index can serve."""
    equalities = predicate.equality_conditions()
    ranges = predicate.range_conditions()
    memberships = predicate.membership_conditions()
    probes: list[ConditionProbe] = []
    for column, value in equalities.items():
        index = table.index_on(column)
        if index is None:
            continue
        probes.append(ConditionProbe(
            column, "eq", index.count(value),
            lambda index=index, value=value: index.lookup(value)))
    for column, (low, high) in ranges.items():
        if column in equalities:
            # the merged range (value, value) duplicates the equality
            continue
        index = table.index_on(column)
        if not isinstance(index, SortedIndex):
            continue
        probes.append(ConditionProbe(
            column, "range", index.count_range(low, high),
            lambda index=index, low=low, high=high:
                set(index.range(low, high))))
    for column, values in memberships.items():
        if column in equalities or column in ranges:
            continue
        index = table.index_on(column)
        if index is None:
            continue
        count = sum(index.count(value) for value in values)
        probes.append(ConditionProbe(
            column, "in", count,
            lambda index=index, values=values:
                set().union(*(index.lookup(value) for value in values))))
    probes.sort(key=lambda probe: (probe.count, probe.column))
    return probes


def _choose_access_path(table: Table,
                        probes: list[ConditionProbe]) -> QueryPlan:
    """Single best index, greedy intersection, or full scan — by cost."""
    total = len(table)
    if not probes:
        return QueryPlan(table=table, access_path="full_scan",
                         strategy="materialize", estimated_rows=total,
                         reason="no indexable conditions")
    best = probes[0]
    if best.count == 0:
        return QueryPlan(table=table, access_path="index_lookup",
                         strategy="materialize", probes=[best],
                         estimated_rows=0,
                         reason=f"index on {best.column!r} proves the "
                                "result empty")
    if total and best.count > SCAN_FRACTION * total:
        return QueryPlan(
            table=table, access_path="full_scan", strategy="materialize",
            estimated_rows=total,
            reason=f"best index ({best.column!r}) matches "
                   f"{best.count}/{total} rows — scan is cheaper")
    # Greedy intersection: add a probe only when building its hit set
    # costs less than the fetch work it is expected to avoid (a fetch +
    # residual predicate eval ≈ FETCH_COST_FACTOR set insertions).
    chosen = [best]
    estimate = float(best.count)
    for probe in probes[1:]:
        selectivity = probe.count / total if total else 1.0
        avoided_fetches = estimate * (1.0 - selectivity)
        if probe.count < FETCH_COST_FACTOR * avoided_fetches:
            chosen.append(probe)
            estimate *= selectivity
    estimated = max(1, round(estimate))
    if len(chosen) == 1:
        return QueryPlan(
            table=table, access_path="index_lookup",
            strategy="materialize", probes=chosen,
            estimated_rows=best.count,
            reason=f"single best index on {best.column!r} "
                   f"({best.count} candidates)")
    return QueryPlan(
        table=table, access_path="index_intersection",
        strategy="materialize", probes=chosen, estimated_rows=estimated,
        reason="intersecting "
               + ", ".join(repr(p.column) for p in chosen)
               + f" (~{estimated} candidates)")


def plan_query(table: Table, predicate: Predicate,
               order: Sequence[tuple[str, bool]] = (),
               limit: int | None = None, offset: int = 0,
               has_joins: bool = False) -> QueryPlan:
    """Plan one query over ``table``.

    ``order`` is the query's ``[(column, descending), ...]`` list.  With
    joins only access-path selection applies (filtering happens after the
    joins, and order columns may name joined tables), so the strategy is
    always ``materialize``.
    """
    probes = _gather_probes(table, predicate)
    plan = _choose_access_path(table, probes)
    if has_joins or limit is None or len(order) != 1:
        return plan
    order_column, descending = order[0]
    needed = max(0, limit) + max(0, offset)
    candidate_count = plan.candidate_count
    if candidate_count is not None and candidate_count <= max(
            ORDERED_CANDIDATE_FACTOR * needed, 64):
        # tiny candidate set: fetch + sort beats any streaming strategy
        return plan
    index = table.index_on(order_column)
    if isinstance(index, SortedIndex):
        nulls_present = len(index) < len(table)
        if not (descending and nulls_present):
            # Descending order puts NULL rows *first* (matching the
            # executor's stable reverse sort), which would force a scan
            # for unindexed NULL rows before the index helps — not worth
            # it, so that one case stays on the materialize path.
            return QueryPlan(
                table=table, access_path="ordered_index",
                strategy="stream_ordered",
                estimated_rows=min(needed, len(table)),
                order_column=order_column, descending=descending,
                reason=f"sorted index on {order_column!r} serves "
                       f"order_by+limit (top-{needed}) directly")
    plan.strategy = "topk_heap"
    plan.order_column = order_column
    plan.descending = descending
    plan.reason = (plan.reason
                   + f"; heap top-{needed} on {order_column!r} instead "
                     "of a full sort")
    return plan
