"""Secondary indexes.

Two implementations:

* :class:`HashIndex` — dict from value to the set of row ids; O(1) point
  lookups, used automatically for UNIQUE columns and equality predicates.
* :class:`SortedIndex` — bisect-maintained sorted list of ``(value, rowid)``
  pairs; supports inclusive range scans for BETWEEN / ``<`` / ``>``.

Indexes store *row ids*, never rows.  ``None`` values are not indexed
(matching SQL semantics where NULL never equals anything).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterable, Iterator

__all__ = ["Index", "HashIndex", "SortedIndex"]

_SENTINEL = object()


class Index:
    """Abstract secondary index over one column."""

    kind = "abstract"

    def __init__(self, column: str) -> None:
        self.column = column

    def add(self, rowid: int, value: Any) -> None:
        raise NotImplementedError

    def remove(self, rowid: int, value: Any) -> None:
        raise NotImplementedError

    def lookup(self, value: Any) -> set[int]:
        """Row ids whose column equals ``value`` exactly."""
        raise NotImplementedError

    def count(self, value: Any) -> int:
        """Number of row ids equal to ``value`` without materializing the
        hit set — the planner's cost probe."""
        return len(self.lookup(value))

    def bulk_add(self, pairs: Iterable[tuple[int, Any]]) -> None:
        """Add many ``(rowid, value)`` pairs at once (bulk ingest path).

        Subclasses may override with something cheaper than repeated
        :meth:`add` calls.
        """
        for rowid, value in pairs:
            self.add(rowid, value)

    def cardinality(self) -> int:
        """Number of distinct indexed (non-``None``) values."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.column})"


class HashIndex(Index):
    """Equality index: value -> set of row ids."""

    kind = "hash"

    def __init__(self, column: str) -> None:
        super().__init__(column)
        self._buckets: dict[Any, set[int]] = {}

    def add(self, rowid: int, value: Any) -> None:
        if value is None:
            return
        self._buckets.setdefault(value, set()).add(rowid)

    def remove(self, rowid: int, value: Any) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        if value is None:
            return set()
        return set(self._buckets.get(value, ()))

    def count(self, value: Any) -> int:
        if value is None:
            return 0
        return len(self._buckets.get(value, ()))

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def distinct_values(self) -> Iterator[Any]:
        return iter(self._buckets)

    def cardinality(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)


class SortedIndex(Index):
    """Ordered index supporting inclusive range scans.

    Values must be mutually comparable; mixing incomparable types in one
    indexed column raises ``TypeError`` at insert time, which surfaces the
    schema problem early instead of at query time.
    """

    kind = "sorted"

    def __init__(self, column: str) -> None:
        super().__init__(column)
        self._entries: list[tuple[Any, int]] = []

    def add(self, rowid: int, value: Any) -> None:
        if value is None:
            return
        insort(self._entries, (value, rowid))

    def bulk_add(self, pairs: Iterable[tuple[int, Any]]) -> None:
        # One extend + sort beats n binary-insertions (O((n+m) log(n+m))
        # vs O(n·m)); this is what makes deferred index maintenance on the
        # bulk ingest path worthwhile.
        self._entries.extend(
            (value, rowid) for rowid, value in pairs if value is not None
        )
        self._entries.sort()

    def remove(self, rowid: int, value: Any) -> None:
        if value is None:
            return
        index = bisect_left(self._entries, (value, rowid))
        if index < len(self._entries) and self._entries[index] == (value, rowid):
            del self._entries[index]

    def lookup(self, value: Any) -> set[int]:
        if value is None:
            return set()
        return set(self.range(value, value))

    def range(self, low: Any, high: Any) -> Iterator[int]:
        """Yield row ids with ``low <= value <= high`` (``None`` = open end),
        in ascending value order."""
        start, stop = self._range_bounds(low, high)
        for position in range(start, stop):
            yield self._entries[position][1]

    def _range_bounds(self, low: Any, high: Any) -> tuple[int, int]:
        if low is None:
            start = 0
        else:
            start = bisect_left(self._entries, (low,))
        if high is None:
            stop = len(self._entries)
        else:
            # (high, +inf) — use a tuple longer than any entry key.
            stop = bisect_right(self._entries, (high, float("inf")))
        return start, stop

    def count_range(self, low: Any, high: Any) -> int:
        """Number of entries in the inclusive range, in O(log n) — the
        planner's cost probe for range conditions."""
        start, stop = self._range_bounds(low, high)
        return max(0, stop - start)

    def count(self, value: Any) -> int:
        if value is None:
            return 0
        return self.count_range(value, value)

    def iter_ascending(self) -> Iterator[int]:
        """Row ids in ascending value order (ties: ascending rowid)."""
        for __, rowid in self._entries:
            yield rowid

    def iter_descending(self) -> Iterator[int]:
        """Row ids in descending value order, but *ascending* rowid within
        runs of equal values — the order a stable reverse sort produces,
        which the ordered-scan access path must reproduce exactly."""
        entries = self._entries
        stop = len(entries)
        while stop > 0:
            value = entries[stop - 1][0]
            start = bisect_left(entries, (value,), 0, stop)
            for position in range(start, stop):
                yield entries[position][1]
            stop = start

    def cardinality(self) -> int:
        distinct = 0
        previous: Any = _SENTINEL
        for value, __ in self._entries:
            if previous is _SENTINEL or value != previous:
                distinct += 1
                previous = value
        return distinct

    def min_value(self) -> Any:
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Any:
        return self._entries[-1][0] if self._entries else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def build_index(kind: str, column: str) -> Index:
    """Factory used by the table layer and journal replay."""
    if kind == "hash":
        return HashIndex(column)
    if kind == "sorted":
        return SortedIndex(column)
    raise ValueError(f"unknown index kind {kind!r}")


def bulk_load(index: Index, rows: Iterable[tuple[int, Any]]) -> None:
    """Populate ``index`` from ``(rowid, value)`` pairs."""
    for rowid, value in rows:
        index.add(rowid, value)
