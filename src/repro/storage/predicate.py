"""Composable row predicates for queries.

Predicates are built from column references::

    from repro.storage import col

    pred = (col("genus") == "Elachistocleis") & col("year").between(1960, 1990)
    pred = col("species").like("Elachistocleis %") | col("species").is_null()

Each predicate is a small immutable tree evaluated against plain ``dict``
rows.  The query planner (:mod:`repro.storage.query`) inspects the tree to
find index-friendly equality/range conditions.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Any, Callable, Iterable, Mapping

__all__ = ["Predicate", "ColumnRef", "col"]

Row = Mapping[str, Any]


def _null_safe_compare(op: Callable[[Any, Any], bool], left: Any, right: Any) -> bool:
    """SQL-style comparison: any comparison with NULL is false."""
    if left is None or right is None:
        return False
    try:
        return op(left, right)
    except TypeError:
        return False


class Predicate:
    """Base class of the predicate tree.  Supports ``&``, ``|`` and ``~``."""

    def __call__(self, row: Row) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    # -- planner hooks ------------------------------------------------------

    def equality_conditions(self) -> dict[str, Any]:
        """Return ``{column: value}`` pairs that *must* hold for the
        predicate to be true — i.e. equality conditions reachable through
        conjunctions only.  Used for index selection."""
        return {}

    def range_conditions(self) -> dict[str, tuple[Any, Any]]:
        """Return ``{column: (low, high)}`` inclusive bounds that must hold
        (``None`` meaning unbounded on that side)."""
        return {}

    def membership_conditions(self) -> dict[str, tuple[Any, ...]]:
        """Return ``{column: (v1, v2, ...)}`` finite value sets the column
        must fall in (IN-lists reachable through conjunctions).  Only
        reported when every value is hashable, so the planner can serve
        the condition as a union of index lookups."""
        return {}


class TruePredicate(Predicate):
    """Matches every row; the implicit predicate of an unfiltered query."""

    def __call__(self, row: Row) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Predicate):
    """column <op> literal"""

    _OPS: dict[str, Callable[[Any, Any], bool]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def __call__(self, row: Row) -> bool:
        actual = row.get(self.column)
        if self.op == "=" and self.value is None:
            # Explicit equality against None behaves as IS NULL for
            # ergonomic reasons (col("x") == None is common in tests).
            return actual is None
        if self.op == "!=" and self.value is None:
            return actual is not None
        if self.op in ("=", "!="):
            if actual is None:
                return False
            return self._OPS[self.op](actual, self.value)
        return _null_safe_compare(self._OPS[self.op], actual, self.value)

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"

    def equality_conditions(self) -> dict[str, Any]:
        if self.op == "=" and self.value is not None:
            return {self.column: self.value}
        return {}

    def range_conditions(self) -> dict[str, tuple[Any, Any]]:
        if self.value is None:
            return {}
        if self.op in ("<", "<="):
            return {self.column: (None, self.value)}
        if self.op in (">", ">="):
            return {self.column: (self.value, None)}
        if self.op == "=":
            return {self.column: (self.value, self.value)}
        return {}


class Between(Predicate):
    """low <= column <= high (inclusive both sides)."""

    def __init__(self, column: str, low: Any, high: Any) -> None:
        self.column = column
        self.low = low
        self.high = high

    def __call__(self, row: Row) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        return _null_safe_compare(lambda a, b: a >= b, value, self.low) and (
            _null_safe_compare(lambda a, b: a <= b, value, self.high)
        )

    def __repr__(self) -> str:
        return f"({self.column} BETWEEN {self.low!r} AND {self.high!r})"

    def range_conditions(self) -> dict[str, tuple[Any, Any]]:
        return {self.column: (self.low, self.high)}


class InSet(Predicate):
    """column IN (v1, v2, ...)

    Hashable value lists get a frozenset for O(1) membership; lists with
    unhashable members (``InSet("a", [[1, 2]])``) fall back to sequential
    ``==`` comparison instead of crashing at construction time.
    """

    def __init__(self, column: str, values: Iterable[Any]) -> None:
        self.column = column
        materialized = tuple(values)
        try:
            self.values: frozenset[Any] | tuple[Any, ...] = frozenset(
                materialized
            )
            self._hashable = True
        except TypeError:
            self.values = materialized
            self._hashable = False

    def __call__(self, row: Row) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if self._hashable:
            try:
                return value in self.values
            except TypeError:
                # the *row* value is unhashable (e.g. a JSON list);
                # fall through to sequential comparison
                pass
        return any(value == candidate for candidate in self.values)

    def __repr__(self) -> str:
        return f"({self.column} IN {sorted(map(repr, self.values))})"

    def equality_conditions(self) -> dict[str, Any]:
        # A one-element IN-list is an equality; anything else (or an
        # unhashable singleton) must not be reported, or the planner would
        # wrongly narrow the candidate set.
        if self._hashable and len(self.values) == 1:
            value = next(iter(self.values))
            if value is not None:
                return {self.column: value}
        return {}

    def membership_conditions(self) -> dict[str, tuple[Any, ...]]:
        if not self._hashable or not self.values:
            return {}
        return {self.column: tuple(self.values)}


class Like(Predicate):
    """SQL-ish LIKE with ``%`` (any run) and ``_`` (one char) wildcards."""

    def __init__(self, column: str, pattern: str, case_sensitive: bool = True) -> None:
        self.column = column
        self.pattern = pattern
        self.case_sensitive = case_sensitive
        translated = fnmatch.translate(
            pattern.replace("%", "*").replace("_", "?")
        )
        flags = 0 if case_sensitive else re.IGNORECASE
        self._regex = re.compile(translated, flags)

    def __call__(self, row: Row) -> bool:
        value = row.get(self.column)
        return isinstance(value, str) and bool(self._regex.match(value))

    def __repr__(self) -> str:
        return f"({self.column} LIKE {self.pattern!r})"


class IsNull(Predicate):
    def __init__(self, column: str, negate: bool = False) -> None:
        self.column = column
        self.negate = negate

    def __call__(self, row: Row) -> bool:
        is_null = row.get(self.column) is None
        return not is_null if self.negate else is_null

    def __repr__(self) -> str:
        suffix = "IS NOT NULL" if self.negate else "IS NULL"
        return f"({self.column} {suffix})"


class Matches(Predicate):
    """Arbitrary user predicate on a single column value."""

    def __init__(self, column: str, func: Callable[[Any], bool]) -> None:
        self.column = column
        self.func = func

    def __call__(self, row: Row) -> bool:
        return bool(self.func(row.get(self.column)))

    def __repr__(self) -> str:
        return f"({self.column} MATCHES {self.func!r})"


class And(Predicate):
    def __init__(self, *parts: Predicate) -> None:
        self.parts = parts

    def __call__(self, row: Row) -> bool:
        return all(part(row) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"

    def equality_conditions(self) -> dict[str, Any]:
        merged: dict[str, Any] = {}
        for part in self.parts:
            merged.update(part.equality_conditions())
        return merged

    def range_conditions(self) -> dict[str, tuple[Any, Any]]:
        merged: dict[str, tuple[Any, Any]] = {}
        for part in self.parts:
            for column, (low, high) in part.range_conditions().items():
                if column in merged:
                    old_low, old_high = merged[column]
                    low = old_low if low is None else (
                        low if old_low is None else max(low, old_low)
                    )
                    high = old_high if high is None else (
                        high if old_high is None else min(high, old_high)
                    )
                merged[column] = (low, high)
        return merged

    def membership_conditions(self) -> dict[str, tuple[Any, ...]]:
        merged: dict[str, tuple[Any, ...]] = {}
        for part in self.parts:
            for column, values in part.membership_conditions().items():
                if column in merged:
                    keep = frozenset(merged[column]) & frozenset(values)
                    merged[column] = tuple(keep)
                else:
                    merged[column] = values
        return merged


class Or(Predicate):
    def __init__(self, *parts: Predicate) -> None:
        self.parts = parts

    def __call__(self, row: Row) -> bool:
        return any(part(row) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def __call__(self, row: Row) -> bool:
        return not self.inner(row)

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class ColumnRef:
    """A fluent builder for predicates on one column; created by :func:`col`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, value: Any) -> Comparison:  # type: ignore[override] - builds predicates
        return Comparison(self.name, "=", value)

    def __ne__(self, value: Any) -> Comparison:  # type: ignore[override] - builds predicates
        return Comparison(self.name, "!=", value)

    def __lt__(self, value: Any) -> Comparison:
        return Comparison(self.name, "<", value)

    def __le__(self, value: Any) -> Comparison:
        return Comparison(self.name, "<=", value)

    def __gt__(self, value: Any) -> Comparison:
        return Comparison(self.name, ">", value)

    def __ge__(self, value: Any) -> Comparison:
        return Comparison(self.name, ">=", value)

    def __hash__(self) -> int:
        return hash(self.name)

    def between(self, low: Any, high: Any) -> Between:
        return Between(self.name, low, high)

    def in_(self, values: Iterable[Any]) -> InSet:
        return InSet(self.name, values)

    def like(self, pattern: str) -> Like:
        return Like(self.name, pattern)

    def ilike(self, pattern: str) -> Like:
        return Like(self.name, pattern, case_sensitive=False)

    def is_null(self) -> IsNull:
        return IsNull(self.name)

    def is_not_null(self) -> IsNull:
        return IsNull(self.name, negate=True)

    def matches(self, func: Callable[[Any], bool]) -> Matches:
        return Matches(self.name, func)


def col(name: str) -> ColumnRef:
    """Return a :class:`ColumnRef` used to build predicates fluently."""
    return ColumnRef(name)
