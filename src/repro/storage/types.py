"""Column types for the storage engine.

Each type knows how to *validate* a Python value, how to *coerce* loosely
typed input (e.g. ``"42"`` for an INTEGER column), and how to round-trip
through the JSON journal (:meth:`ColumnType.to_json` /
:meth:`ColumnType.from_json`).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable

from repro.errors import SchemaError

__all__ = [
    "ColumnType",
    "INTEGER",
    "REAL",
    "TEXT",
    "BOOLEAN",
    "DATE",
    "DATETIME",
    "JSON",
    "type_by_name",
]


class ColumnType:
    """A column type: validation, coercion and JSON round-tripping.

    Instances are immutable singletons (``INTEGER``, ``TEXT``...); equality
    is by :attr:`name`.
    """

    def __init__(
        self,
        name: str,
        python_types: tuple[type, ...],
        coerce: Callable[[Any], Any],
        to_json: Callable[[Any], Any] | None = None,
        from_json: Callable[[Any], Any] | None = None,
    ) -> None:
        self.name = name
        self.python_types = python_types
        self._coerce = coerce
        self._to_json = to_json or (lambda value: value)
        self._from_json = from_json or (lambda value: value)

    def __repr__(self) -> str:
        return f"ColumnType({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def validate(self, value: Any) -> bool:
        """Return ``True`` when ``value`` is already of this type.

        ``None`` is always valid here; nullability is enforced by the
        schema layer, not the type layer.
        """
        if value is None:
            return True
        if self.name == "BOOLEAN":
            # bool is a subclass of int; be strict both ways.
            return isinstance(value, bool)
        if isinstance(value, bool) and self.name in ("INTEGER", "REAL"):
            return False
        if self.name == "DATE" and isinstance(value, _dt.datetime):
            # datetime subclasses date; DATE columns hold plain dates only.
            return False
        return isinstance(value, self.python_types)

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type, raising ``ValueError`` on failure."""
        if value is None or self.validate(value):
            return value
        return self._coerce(value)

    def to_json(self, value: Any) -> Any:
        """Encode a validated value into a JSON-representable one."""
        if value is None:
            return None
        return self._to_json(value)

    def from_json(self, value: Any) -> Any:
        """Decode a value previously produced by :meth:`to_json`."""
        if value is None:
            return None
        return self._from_json(value)


def _coerce_integer(value: Any) -> int:
    if isinstance(value, bool):
        raise ValueError("booleans are not INTEGER values")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"non-integral float {value!r} for INTEGER column")
        return int(value)
    return int(str(value).strip())


def _coerce_real(value: Any) -> float:
    if isinstance(value, bool):
        raise ValueError("booleans are not REAL values")
    return float(value)


def _coerce_text(value: Any) -> str:
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise ValueError(f"cannot coerce {type(value).__name__} to TEXT")


def _coerce_boolean(value: Any) -> bool:
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "yes", "1"):
            return True
        if lowered in ("false", "f", "no", "0"):
            return False
    raise ValueError(f"cannot coerce {value!r} to BOOLEAN")


def _coerce_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, str):
        return _dt.date.fromisoformat(value.strip())
    raise ValueError(f"cannot coerce {value!r} to DATE")


def _coerce_datetime(value: Any) -> _dt.datetime:
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return _dt.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value.strip())
    raise ValueError(f"cannot coerce {value!r} to DATETIME")


def _coerce_json(value: Any) -> Any:
    if isinstance(value, (dict, list, str, int, float, bool)):
        return value
    raise ValueError(f"cannot store {type(value).__name__} in a JSON column")


INTEGER = ColumnType("INTEGER", (int,), _coerce_integer)
REAL = ColumnType("REAL", (int, float), _coerce_real)
TEXT = ColumnType("TEXT", (str,), _coerce_text)
BOOLEAN = ColumnType("BOOLEAN", (bool,), _coerce_boolean)
DATE = ColumnType(
    "DATE",
    (_dt.date,),
    _coerce_date,
    to_json=lambda d: d.isoformat(),
    from_json=lambda s: _dt.date.fromisoformat(s),
)
DATETIME = ColumnType(
    "DATETIME",
    (_dt.datetime,),
    _coerce_datetime,
    to_json=lambda d: d.isoformat(),
    from_json=lambda s: _dt.datetime.fromisoformat(s),
)
JSON = ColumnType("JSON", (dict, list, str, int, float, bool), _coerce_json)

_BY_NAME = {
    t.name: t for t in (INTEGER, REAL, TEXT, BOOLEAN, DATE, DATETIME, JSON)
}


def type_by_name(name: str) -> ColumnType:
    """Return the singleton :class:`ColumnType` called ``name``.

    Raises :class:`~repro.errors.SchemaError` for unknown names; this is
    used when deserializing schemas from the journal.
    """
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise SchemaError(f"unknown column type {name!r}") from None
