"""Concurrent transactions with undo logs and conflict detection.

The engine supports one open transaction *per thread* and any number of
threads: every session gets its own undo log and write-ahead journal
buffer, rows touched by an uncommitted transaction are claimed under
first-writer-wins conflict rules (see
:meth:`repro.storage.database.Database._claim_row`), and commits are
serialized through the database's write lock so the journal records one
consistent history.  Databases expose the ergonomic form::

    with db.transaction():
        db.insert("species_updates", {...})
        db.update("recordings", rid, {...})
    # committed; an exception inside the block rolls everything back

Transaction states: ``open`` -> ``committed`` | ``rolled_back`` |
``failed``.  ``failed`` means the transaction was abandoned: either a
rollback blew up mid-replay (a ``restore_*`` call raised) or the owning
thread exited with the transaction still open (detected through a weak
reference to the thread and reaped by the database, since OS thread
idents are recycled).  Either way its row claims are released and every
further use raises :class:`TransactionError` — the database refuses to
reuse it.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Any

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import Database

__all__ = ["Transaction", "UndoRecord"]


class UndoRecord:
    """One reversible mutation: table, op and before/after images."""

    __slots__ = ("table", "op", "rowid", "before", "after")

    def __init__(self, table: str, op: str, rowid: int,
                 before: dict[str, Any] | None,
                 after: dict[str, Any] | None) -> None:
        self.table = table
        self.op = op
        self.rowid = rowid
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return f"UndoRecord({self.op} {self.table}#{self.rowid})"


class Transaction:
    """An open transaction; create via ``Database.transaction()``."""

    def __init__(self, database: "Database", tid: int,
                 start_seq: int) -> None:
        self._database = database
        self.tid = tid
        #: database commit sequence when this transaction began; writes
        #: to rows committed after this point conflict (first committer
        #: wins)
        self.start_seq = start_seq
        #: thread that opened the transaction — terminal operations must
        #: come from the same thread
        self.thread_ident = threading.get_ident()
        # weakly referenced so a finished worker thread can be detected
        # (and the Thread object collected) — OS idents are recycled, so
        # the ident alone cannot tell a dead owner from a new thread
        self._thread = weakref.ref(threading.current_thread())
        self._undo: list[UndoRecord] = []
        self._state = "open"
        #: journal entries buffered until commit (rolled-back work must
        #: never hit disk)
        self.journal_buffer: list[dict[str, Any]] = []
        #: ``(table, rowid)`` pairs this transaction holds write claims on
        self.claims: set[tuple[str, int]] = set()

    # -- recording ------------------------------------------------------

    def record(self, table: str, op: str, rowid: int,
               before: dict[str, Any] | None,
               after: dict[str, Any] | None) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction is {self._state}")
        self._undo.append(UndoRecord(table, op, rowid, before, after))

    @property
    def state(self) -> str:
        return self._state

    def thread_alive(self) -> bool:
        """Whether the thread that opened this transaction still runs.

        A dead owner means the transaction is abandoned: it can never
        commit, and the database reaps it (rolls the undo log back,
        marks it ``failed``, releases its claims) on the next access.
        """
        thread = self._thread()
        return thread is not None and thread.is_alive()

    def mark_abandoned(self) -> None:
        """Called by the database when the owning thread died with the
        transaction open; every further use raises."""
        self._state = "failed"

    @property
    def pending_operations(self) -> int:
        return len(self._undo)

    def final_images(self) -> dict[tuple[str, int],
                                   tuple[dict[str, Any] | None,
                                         dict[str, Any] | None]]:
        """Per touched row: (first before-image, last after-image).

        This is what the commit publishes to the MVCC version history —
        intermediate images within the transaction were never visible to
        anyone else and need no version entries.
        """
        images: dict[tuple[str, int],
                     tuple[dict[str, Any] | None,
                           dict[str, Any] | None]] = {}
        for record in self._undo:
            key = (record.table, record.rowid)
            if key in images:
                images[key] = (images[key][0], record.after)
            else:
                images[key] = (record.before, record.after)
        return images

    def undo_records(self) -> list[UndoRecord]:
        return list(self._undo)

    # -- terminal operations ---------------------------------------------

    def commit(self) -> None:
        if self._state != "open":
            raise TransactionError(f"cannot commit a {self._state} transaction")
        self._database._commit_transaction(self)
        self._state = "committed"

    def rollback(self) -> None:
        if self._state != "open":
            raise TransactionError(
                f"cannot roll back a {self._state} transaction"
            )
        try:
            self._database._rollback_transaction(self)
        except Exception as exc:  # noqa: BLE001 - any mid-replay fault must abandon, see below
            # A restore_* call raised mid-replay: the database may hold a
            # half-undone state for the rows this transaction touched.
            # Mark the transaction failed (every further use raises) and
            # release its claims so other sessions are not wedged.
            self._state = "failed"
            self._database._abandon_transaction(self)
            self._database._storage_counter(
                "storage_rollback_failures_total").inc()
            raise TransactionError(
                "rollback failed mid-replay; transaction abandoned in "
                f"state 'failed': {exc}"
            ) from exc
        self._state = "rolled_back"

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state != "open":
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def __repr__(self) -> str:
        return (f"Transaction(tid={self.tid}, state={self._state}, "
                f"{len(self._undo)} undo records)")
