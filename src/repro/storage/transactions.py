"""Transactions with rollback.

The engine supports one open transaction at a time per database (the
paper's workloads are single-writer).  While a transaction is open, every
table mutation appends an undo record; :meth:`Transaction.rollback`
replays them in reverse.  Databases expose the ergonomic form::

    with db.transaction():
        db.insert("species_updates", {...})
        db.update("recordings", rid, {...})
    # committed; an exception inside the block rolls everything back
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import Database

__all__ = ["Transaction", "UndoRecord"]


class UndoRecord:
    """One reversible mutation: table, op and before/after images."""

    __slots__ = ("table", "op", "rowid", "before", "after")

    def __init__(self, table: str, op: str, rowid: int,
                 before: dict[str, Any] | None,
                 after: dict[str, Any] | None) -> None:
        self.table = table
        self.op = op
        self.rowid = rowid
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return f"UndoRecord({self.op} {self.table}#{self.rowid})"


class Transaction:
    """An open transaction; create via ``Database.transaction()``."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._undo: list[UndoRecord] = []
        self._state = "open"

    # -- recording ------------------------------------------------------

    def record(self, table: str, op: str, rowid: int,
               before: dict[str, Any] | None,
               after: dict[str, Any] | None) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction is {self._state}")
        self._undo.append(UndoRecord(table, op, rowid, before, after))

    @property
    def state(self) -> str:
        return self._state

    @property
    def pending_operations(self) -> int:
        return len(self._undo)

    # -- terminal operations ---------------------------------------------

    def commit(self) -> None:
        if self._state != "open":
            raise TransactionError(f"cannot commit a {self._state} transaction")
        self._state = "committed"
        self._database._finish_transaction(self)

    def rollback(self) -> None:
        if self._state != "open":
            raise TransactionError(
                f"cannot roll back a {self._state} transaction"
            )
        for record in reversed(self._undo):
            table = self._database.table(record.table)
            if record.op == "insert":
                table.restore_delete(record.rowid)
            elif record.op == "delete":
                assert record.before is not None
                table.restore_insert(record.rowid, record.before)
            else:  # update
                assert record.before is not None
                table.restore_update(record.rowid, record.before)
        self._state = "rolled_back"
        self._database._finish_transaction(self)

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state != "open":
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
