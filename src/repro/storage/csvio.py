"""CSV import/export for tables.

Biodiversity collections exchange data as CSV before anything else;
level-2 preservation packages and curator spreadsheets both want it.
Values are rendered through each column type's JSON hooks, so dates
round-trip; ``None`` is an empty cell.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.storage.database import Database

__all__ = ["export_csv", "import_csv"]


def export_csv(database: Database, table_name: str,
               path: str | Path,
               columns: list[str] | None = None) -> int:
    """Write the table to ``path``; returns rows written."""
    table = database.table(table_name)
    schema = table.schema
    if columns is None:
        columns = list(schema.column_names)
    for column in columns:
        schema.column(column)  # raises on unknown names
    path = Path(path)
    written = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in table.rows():
            rendered = []
            for column in columns:
                value = schema.column(column).type.to_json(
                    row.get(column))
                if value is None:
                    rendered.append("")
                elif isinstance(value, (dict, list)):
                    rendered.append(json.dumps(value, sort_keys=True))
                else:
                    rendered.append(str(value))
            writer.writerow(rendered)
            written += 1
    return written


def import_csv(database: Database, table_name: str,
               path: str | Path) -> int:
    """Load rows from ``path`` into an existing table; returns rows
    inserted.  Cells are coerced through the column types; empty cells
    become ``None``.

    Rows are parsed first and then written through the database's bulk
    write path (:meth:`~repro.storage.database.Database.bulk_load`): one
    batched unique-check, deferred index maintenance and a single
    batched journal entry — and a file that fails validation part-way
    leaves the table untouched instead of half-loaded.
    """
    table = database.table(table_name)
    schema = table.schema
    path = Path(path)
    parsed: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path}: empty CSV") from None
        for column in header:
            schema.column(column)
        for line_number, cells in enumerate(reader, start=2):
            if len(cells) != len(header):
                raise StorageError(
                    f"{path}:{line_number}: expected {len(header)} "
                    f"cells, found {len(cells)}"
                )
            row: dict[str, Any] = {}
            for column, cell in zip(header, cells):
                if cell == "":
                    row[column] = None
                    continue
                column_type = schema.column(column).type
                if column_type.name == "JSON":
                    row[column] = json.loads(cell)
                else:
                    row[column] = column_type.coerce(
                        column_type.from_json(cell))
            parsed.append(row)
    database.bulk_load(table_name, parsed)
    return len(parsed)
