"""Durability: a JSON-lines write-ahead journal plus snapshots.

Every committed mutation is appended to the journal as one JSON object per
line::

    {"op": "create_table", "schema": {...}}
    {"op": "insert", "table": "recordings", "rowid": 17, "row": {...}}

:func:`Journal.replay` rebuilds a :class:`~repro.storage.database.Database`
from an empty state.  Snapshots (:meth:`Journal.write_snapshot`) compact
the journal: a snapshot file plus a truncated journal replaces the full
history.

The journal encodes values through each column type's ``to_json`` hook so
dates and datetimes survive the round trip.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import JournalError
from repro.storage.schema import TableSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import Database

__all__ = ["Journal"]


class Journal:
    """Append-only journal bound to a file path."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries_written = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, entry: dict[str, Any]) -> None:
        """Append one entry and fsync-lite (flush) it."""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._entries_written += 1

    def append_many(self, entries: list[dict[str, Any]]) -> None:
        if not entries:
            return
        with self.path.open("a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._entries_written += len(entries)

    @property
    def entries_written(self) -> int:
        return self._entries_written

    # ------------------------------------------------------------------
    # reading / replay
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[dict[str, Any]]:
        """Yield journal entries in order; tolerate a torn final line
        (interrupted write) but raise on corruption in the middle."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                if number == len(lines):
                    # torn tail from an interrupted append: ignore
                    return
                raise JournalError(
                    f"{self.path}: corrupt journal line {number}: {exc}"
                ) from None

    def replay(self, database: "Database") -> int:
        """Apply every journal entry to ``database``; returns the count."""
        applied = 0
        for entry in self.entries():
            self._apply(database, entry)
            applied += 1
        return applied

    @staticmethod
    def _apply(database: "Database", entry: dict[str, Any]) -> None:
        op = entry.get("op")
        if op == "create_table":
            schema = TableSchema.from_dict(entry["schema"])
            if schema.name not in database.table_names():
                database.create_table(schema, _journal=False)
        elif op == "drop_table":
            if entry["table"] in database.table_names():
                database.drop_table(entry["table"], _journal=False)
        elif op == "insert":
            table = database.table(entry["table"])
            row = _decode_row(table.schema, entry["row"])
            table.restore_insert(entry["rowid"], row)
        elif op == "bulk_insert":
            # one batched entry from Database.bulk_load: {"rows":
            # [{"rowid": ..., "row": {...}}, ...]}
            table = database.table(entry["table"])
            for item in entry["rows"]:
                row = _decode_row(table.schema, item["row"])
                table.restore_insert(item["rowid"], row)
        elif op == "update":
            table = database.table(entry["table"])
            row = _decode_row(table.schema, entry["row"])
            table.restore_update(entry["rowid"], row)
        elif op == "delete":
            table = database.table(entry["table"])
            table.restore_delete(entry["rowid"])
        elif op == "create_index":
            table = database.table(entry["table"])
            table.create_index(entry["column"], entry.get("kind", "hash"))
        else:
            raise JournalError(f"unknown journal op {op!r}")

    # ------------------------------------------------------------------
    # snapshot compaction
    # ------------------------------------------------------------------

    def snapshot_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".snapshot")

    def write_snapshot(self, database: "Database") -> Path:
        """Write a full snapshot of ``database`` and truncate the journal."""
        snapshot = database.dump_state()
        target = self.snapshot_path()
        tmp = target.with_suffix(target.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, sort_keys=True)
        os.replace(tmp, target)
        # Truncate the journal now that its effects live in the snapshot.
        with self.path.open("w", encoding="utf-8"):
            pass
        self._entries_written = 0
        return target

    def load_snapshot(self, database: "Database") -> bool:
        """Load the snapshot (if any) into ``database``; returns whether a
        snapshot existed.  Call before :meth:`replay`."""
        target = self.snapshot_path()
        if not target.exists():
            return False
        with target.open("r", encoding="utf-8") as handle:
            try:
                state = json.load(handle)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"{target}: corrupt snapshot: {exc}"
                ) from None
        database.load_state(state)
        return True


def _decode_row(schema: TableSchema, encoded: dict[str, Any]) -> dict[str, Any]:
    decoded: dict[str, Any] = {}
    for column in schema.columns:
        if column.name in encoded:
            decoded[column.name] = column.type.from_json(encoded[column.name])
    return decoded


def encode_row(schema: TableSchema, row: dict[str, Any]) -> dict[str, Any]:
    """Encode ``row`` for the journal using the schema's type hooks."""
    encoded: dict[str, Any] = {}
    for column in schema.columns:
        if column.name in row:
            encoded[column.name] = column.type.to_json(row[column.name])
    return encoded
