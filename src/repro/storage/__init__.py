"""An embeddable relational storage engine.

This package is the "DBMS" box of the paper's architecture (Fig. 1): it
provides access to the data, workflow and provenance repositories.  It is a
small but real engine:

* typed schemas with NOT NULL / UNIQUE / CHECK / FOREIGN KEY constraints
  (:mod:`repro.storage.schema`),
* hash and sorted secondary indexes (:mod:`repro.storage.index`),
* a composable predicate algebra and query builder
  (:mod:`repro.storage.predicate`, :mod:`repro.storage.query`),
* transactions with rollback (:mod:`repro.storage.transactions`),
* durability via a JSON-lines write-ahead journal
  (:mod:`repro.storage.journal`).

Quick tour::

    from repro.storage import Database, TableSchema, Column, column_types as ct

    db = Database("fnjv")
    db.create_table(TableSchema(
        "species", [
            Column("id", ct.INTEGER),
            Column("name", ct.TEXT, nullable=False, unique=True),
        ], primary_key="id"))
    db.insert("species", {"id": 1, "name": "Elachistocleis ovalis"})
    rows = db.query("species").where(col("name").like("Elachistocleis%")).all()
"""

from repro.storage import types as column_types
from repro.storage.csvio import export_csv, import_csv
from repro.storage.database import Database
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.journal import Journal
from repro.storage.planner import QueryPlan, plan_query
from repro.storage.predicate import Predicate, col
from repro.storage.query import Query
from repro.storage.schema import Column, ForeignKey, TableSchema
from repro.storage.snapshot import Snapshot, SnapshotTable
from repro.storage.table import Table
from repro.storage.transactions import Transaction
from repro.storage.types import ColumnType

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "ForeignKey",
    "HashIndex",
    "Journal",
    "Predicate",
    "Query",
    "QueryPlan",
    "Snapshot",
    "SnapshotTable",
    "SortedIndex",
    "plan_query",
    "Table",
    "TableSchema",
    "Transaction",
    "col",
    "column_types",
    "export_csv",
    "import_csv",
]
