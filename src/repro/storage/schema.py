"""Table schemas: columns, constraints and foreign keys.

A :class:`TableSchema` is a pure description — it owns no rows.  The
:class:`~repro.storage.table.Table` class enforces it at write time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import SchemaError, UnknownColumnError
from repro.storage.types import ColumnType, type_by_name

__all__ = ["Column", "ForeignKey", "TableSchema"]


def _check_identifier(kind: str, name: str) -> None:
    if not name or not name.replace("_", "a").isalnum():
        raise SchemaError(f"invalid {kind} name {name!r}")
    if name[0].isdigit():
        raise SchemaError(f"{kind} name {name!r} must not start with a digit")


class Column:
    """One column of a table.

    Parameters
    ----------
    name:
        Column identifier (letters, digits, underscores).
    type:
        A :class:`~repro.storage.types.ColumnType` singleton.
    nullable:
        When ``False``, inserts and updates must provide a non-``None``
        value (after the default is applied).
    unique:
        When ``True``, no two rows may share a non-``None`` value.
    default:
        Value (or zero-argument callable) used when an insert omits the
        column.
    check:
        Optional predicate ``value -> bool`` evaluated on every non-``None``
        write; ``False`` raises a CHECK constraint violation.
    """

    __slots__ = ("name", "type", "nullable", "unique", "default", "check")

    def __init__(
        self,
        name: str,
        type: ColumnType,
        nullable: bool = True,
        unique: bool = False,
        default: Any = None,
        check: Callable[[Any], bool] | None = None,
    ) -> None:
        _check_identifier("column", name)
        if not isinstance(type, ColumnType):
            raise SchemaError(f"column {name!r}: type must be a ColumnType")
        self.name = name
        self.type = type
        self.nullable = nullable
        self.unique = unique
        self.default = default
        self.check = check

    def __repr__(self) -> str:
        flags = []
        if not self.nullable:
            flags.append("NOT NULL")
        if self.unique:
            flags.append("UNIQUE")
        suffix = (" " + " ".join(flags)) if flags else ""
        return f"Column({self.name} {self.type.name}{suffix})"

    def resolve_default(self) -> Any:
        """Return the default value, calling it if it is a callable."""
        if callable(self.default):
            return self.default()
        return self.default

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the journal.  ``check`` and callable defaults are
        not serializable and are dropped (they are re-attached by the code
        that recreates the schema)."""
        return {
            "name": self.name,
            "type": self.type.name,
            "nullable": self.nullable,
            "unique": self.unique,
            "default": None if callable(self.default) else self.default,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Column":
        return cls(
            data["name"],
            type_by_name(data["type"]),
            nullable=data.get("nullable", True),
            unique=data.get("unique", False),
            default=data.get("default"),
        )


class ForeignKey:
    """A referential constraint: ``column`` must match an existing value of
    ``parent_table.parent_column`` (or be ``None``)."""

    __slots__ = ("column", "parent_table", "parent_column")

    def __init__(self, column: str, parent_table: str, parent_column: str) -> None:
        self.column = column
        self.parent_table = parent_table
        self.parent_column = parent_column

    def __repr__(self) -> str:
        return (
            f"ForeignKey({self.column} -> "
            f"{self.parent_table}.{self.parent_column})"
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "column": self.column,
            "parent_table": self.parent_table,
            "parent_column": self.parent_column,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "ForeignKey":
        return cls(data["column"], data["parent_table"], data["parent_column"])


class TableSchema:
    """The full description of one table.

    Parameters
    ----------
    name:
        Table identifier.
    columns:
        Ordered columns.  Names must be unique.
    primary_key:
        Name of the primary-key column.  The column is implicitly
        ``NOT NULL UNIQUE``.  When omitted, the engine assigns hidden
        monotonically increasing row ids.
    foreign_keys:
        Referential constraints enforced on insert/update.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: str | None = None,
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        _check_identifier("table", name)
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self._by_name: dict[str, Column] = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise SchemaError(
                    f"table {name!r}: duplicate column {column.name!r}"
                )
            self._by_name[column.name] = column
        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(
                f"table {name!r}: primary key {primary_key!r} is not a column"
            )
        self.primary_key = primary_key
        if primary_key is not None:
            pk = self._by_name[primary_key]
            pk.nullable = False
            pk.unique = True
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            if fk.column not in self._by_name:
                raise SchemaError(
                    f"table {name!r}: foreign key on unknown column "
                    f"{fk.column!r}"
                )

    def __repr__(self) -> str:
        return f"TableSchema({self.name}, {len(self.columns)} columns)"

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name``.

        Raises :class:`~repro.errors.UnknownColumnError` when absent.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "columns": [column.to_dict() for column in self.columns],
            "primary_key": self.primary_key,
            "foreign_keys": [fk.to_dict() for fk in self.foreign_keys],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TableSchema":
        return cls(
            data["name"],
            [Column.from_dict(c) for c in data["columns"]],
            primary_key=data.get("primary_key"),
            foreign_keys=[
                ForeignKey.from_dict(fk) for fk in data.get("foreign_keys", ())
            ],
        )
