"""Query builder and a minimal planner.

A :class:`Query` is an immutable-ish fluent pipeline over one table (plus
optional equi-joins).  Terminal methods (:meth:`Query.all`,
:meth:`Query.first`, :meth:`Query.count`, :meth:`Query.aggregate`, ...)
execute it.

The planner is deliberately simple: it asks the predicate tree for the
equality and range conditions that must hold, and intersects the row-id
sets from any matching indexes before falling back to a filtered scan.

Example::

    (db.query("recordings")
       .where((col("genus") == "Scinax") & col("collect_date").is_not_null())
       .order_by("collect_date", descending=True)
       .limit(10)
       .all())
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.index import SortedIndex
from repro.storage.predicate import Predicate, TruePredicate
from repro.storage.table import Row, Table
from repro.telemetry import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.planner import QueryPlan

__all__ = ["Query", "Aggregate"]


class Aggregate:
    """Named aggregate over a column: ``Aggregate("avg", "frequency_khz")``.

    Supported functions: ``count`` (``column=None`` counts rows), ``sum``,
    ``avg``, ``min``, ``max``, ``count_distinct``.
    """

    FUNCTIONS = ("count", "sum", "avg", "min", "max", "count_distinct")

    def __init__(self, function: str, column: str | None = None,
                 alias: str | None = None) -> None:
        if function not in self.FUNCTIONS:
            raise StorageError(f"unknown aggregate function {function!r}")
        if function != "count" and column is None:
            raise StorageError(f"aggregate {function!r} requires a column")
        self.function = function
        self.column = column
        self.alias = alias or (
            function if column is None else f"{function}_{column}"
        )

    def compute(self, rows: Sequence[Row]) -> Any:
        if self.function == "count":
            if self.column is None:
                return len(rows)
            return sum(1 for row in rows if row.get(self.column) is not None)
        values = [
            row[self.column]
            for row in rows
            if row.get(self.column) is not None
        ]
        if self.function == "count_distinct":
            return len(set(values))
        if not values:
            return None
        try:
            if self.function == "sum":
                return sum(values)
            if self.function == "avg":
                return sum(values) / len(values)
            if self.function == "min":
                return min(values)
            return max(values)
        except TypeError as exc:
            raise StorageError(
                f"aggregate {self.function!r} over column {self.column!r} "
                f"hit mixed or non-numeric values: {exc}"
            ) from None


class Query:
    """A fluent query over ``table``.  Built by ``Database.query(name)``."""

    def __init__(self, table: Table, resolve_table: Callable[[str], Table] | None = None) -> None:
        self._table = table
        self._resolve_table = resolve_table
        self._predicate: Predicate = TruePredicate()
        self._projection: tuple[str, ...] | None = None
        self._order: list[tuple[str, bool]] = []
        self._limit: int | None = None
        self._offset: int = 0
        self._joins: list[tuple[Table, str, str, str]] = []
        self._distinct = False

    # ------------------------------------------------------------------
    # builders (each returns self for chaining)
    # ------------------------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        """AND another predicate into the filter."""
        if isinstance(self._predicate, TruePredicate):
            self._predicate = predicate
        else:
            self._predicate = self._predicate & predicate
        return self

    def select(self, *columns: str) -> "Query":
        """Project the result rows to ``columns`` (post-join names)."""
        self._projection = columns
        return self

    def distinct(self) -> "Query":
        """Drop duplicate result rows (after projection)."""
        self._distinct = True
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Add a sort key; call repeatedly for secondary keys."""
        self._order.append((column, descending))
        return self

    def limit(self, count: int) -> "Query":
        self._limit = count
        return self

    def offset(self, count: int) -> "Query":
        self._offset = count
        return self

    def join(self, other: str | Table, left_column: str, right_column: str,
             prefix: str | None = None) -> "Query":
        """Nested-loop equi-join with ``other``.

        Joined columns are exposed as ``{prefix}.{column}`` where ``prefix``
        defaults to the joined table's name.  Inner-join semantics: rows
        without a partner are dropped.
        """
        if isinstance(other, str):
            if self._resolve_table is None:
                raise StorageError(
                    "cannot join by table name without a database context"
                )
            other = self._resolve_table(other)
        self._joins.append(
            (other, left_column, right_column, prefix or other.name)
        )
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _plan(self, include_order: bool = True) -> "QueryPlan":
        """Ask the cost-based planner for this query's access path.

        ``include_order=False`` (count/aggregate paths) suppresses the
        order/limit strategies — they would change nothing and the
        streaming executors assume a limit exists.
        """
        from repro.storage.planner import plan_query

        return plan_query(
            self._table, self._predicate,
            self._order if include_order else (),
            self._limit if include_order else None,
            self._offset,
            has_joins=bool(self._joins),
        )

    def _record_plan(self, plan: "QueryPlan") -> None:
        get_telemetry().metrics.counter(
            "storage_planner_decisions_total",
            table=self._table.name,
            path=plan.access_path,
            strategy=plan.strategy,
        ).inc()

    def _base_rows(self, plan: "QueryPlan",
                   filtered: bool = True) -> Iterator[Row]:
        candidates = plan.rowids()
        metrics = get_telemetry().metrics
        table_name = self._table.name
        if candidates is None:
            metrics.counter("storage_full_scans_total",
                            table=table_name).inc()
        else:
            metrics.counter("storage_index_hits_total",
                            table=table_name).inc(len(candidates))
            total = len(self._table)
            if total:
                # Fraction of the table the chosen access path narrowed
                # this query to.
                metrics.gauge("storage_index_selectivity",
                              table=table_name).set(
                    len(candidates) / total)
        scanned = 0
        try:
            for row in self._table.scan(candidates):
                scanned += 1
                if not filtered or self._predicate(row):
                    yield row
        finally:
            metrics.counter("storage_rows_scanned_total",
                            table=table_name).inc(scanned)

    def _joined_rows(self, plan: "QueryPlan") -> Iterator[Row]:
        if not self._joins:
            return self._base_rows(plan)
        # With joins, the predicate may reference joined columns
        # (``prefix.column``), so filtering happens after the joins.  The
        # index-derived candidate set is still used: equality/range
        # conditions reachable through conjunctions are necessary, and
        # the planner ignores conditions on columns the base table has no
        # index for (which covers all prefixed names).
        rows: Iterable[Row] = self._base_rows(plan, filtered=False)
        for other, left_column, right_column, prefix in self._joins:
            rows = self._apply_join(rows, other, left_column, right_column,
                                    prefix)
        return (row for row in rows if self._predicate(row))

    def _stream_ordered(self, plan: "QueryPlan") -> list[Row]:
        """Serve ``order_by`` + ``limit`` straight off the sorted index.

        Rows come out already sorted (ties in ascending rowid order —
        exactly what the stable sort in :meth:`_finalize` would produce),
        so execution stops as soon as ``offset + limit`` matches exist.
        Rows whose order column is NULL are not indexed; ascending order
        puts them last, so they are only scanned for when the index runs
        dry before the limit is reached.
        """
        table = self._table
        column = plan.order_column
        index = table.index_on(column)
        assert isinstance(index, SortedIndex)
        needed = max(0, self._limit or 0) + max(0, self._offset)
        rows: list[Row] = []
        scanned = 0
        if needed:
            iterator = (index.iter_descending() if plan.descending
                        else index.iter_ascending())
            for rowid in iterator:
                row = table.row_by_id(rowid)
                scanned += 1
                if self._predicate(row):
                    rows.append(row)
                    if len(rows) == needed:
                        break
            if len(rows) < needed and not plan.descending and (
                    len(index) < len(table)):
                for row in table.scan():
                    scanned += 1
                    if row.get(column) is None and self._predicate(row):
                        rows.append(row)
                        if len(rows) == needed:
                            break
        get_telemetry().metrics.counter(
            "storage_rows_scanned_total", table=table.name).inc(scanned)
        return rows[self._offset:]

    def _heap_topk(self, plan: "QueryPlan") -> list[Row]:
        """Bounded top-k via a heap instead of sorting every match.

        ``heapq.nsmallest``/``nlargest`` are documented equivalents of
        ``sorted(...)[:k]`` / ``sorted(..., reverse=True)[:k]`` including
        stability, so the result is byte-identical to the full sort.
        """
        column = plan.order_column
        needed = max(0, self._limit or 0) + max(0, self._offset)
        if not needed:
            return []
        rows = self._base_rows(plan)

        def key(row: Row) -> tuple:
            value = row.get(column)
            return (value is None, value)

        if plan.descending:
            top = heapq.nlargest(needed, rows, key=key)
        else:
            top = heapq.nsmallest(needed, rows, key=key)
        return top[self._offset:]

    @staticmethod
    def _apply_join(rows: Iterable[Row], other: Table, left_column: str,
                    right_column: str, prefix: str) -> Iterator[Row]:
        # Hash the smaller (right) side once; use its index when present.
        index = other.index_on(right_column)
        if index is None:
            partners: dict[Any, list[Row]] = {}
            for partner in other.rows():
                key = partner.get(right_column)
                if key is not None:
                    partners.setdefault(key, []).append(partner)
            lookup = lambda key: partners.get(key, ())  # noqa: E731 - tiny local closure
        else:
            lookup = lambda key: [  # noqa: E731 - tiny local closure
                other.row_by_id(rowid) for rowid in sorted(index.lookup(key))
            ]
        for row in rows:
            key = row.get(left_column)
            if key is None:
                continue
            for partner in lookup(key):
                merged = dict(row)
                for column, value in partner.items():
                    merged[f"{prefix}.{column}"] = value
                yield merged

    def _finalize(self, rows: list[Row], ordered: bool = False,
                  limited: bool = False) -> list[Row]:
        """Apply order/offset/limit/projection/distinct.

        ``ordered``/``limited`` mark steps a streaming access path already
        performed, so they are not repeated here.
        """
        if not ordered:
            for column, descending in reversed(self._order):
                rows.sort(
                    key=lambda row: (row.get(column) is None,
                                     row.get(column)),
                    reverse=descending,
                )
        if not limited:
            if self._offset:
                rows = rows[self._offset:]
            if self._limit is not None:
                rows = rows[: self._limit]
        if self._projection is not None:
            rows = [
                {column: row.get(column) for column in self._projection}
                for row in rows
            ]
        if self._distinct:
            seen: set[tuple] = set()
            unique: list[Row] = []
            for row in rows:
                key = tuple(sorted((k, _hashable(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        return rows

    def explain(self, analyze: bool = False) -> dict[str, Any]:
        """Describe how this query would execute (planner introspection).

        Reports the conditions the planner extracted, which of them an
        index can serve, and the chosen plan: ``access_path`` (full scan,
        single index lookup, index intersection or ordered index scan),
        ``strategy`` (materialize, streaming ordered scan or heap top-k),
        ``estimated_rows``, and the planner's one-line ``reason``.
        ``analyze=True`` additionally executes the query and records
        ``actual_rows``.
        """
        plan = self._plan()
        equalities = self._predicate.equality_conditions()
        ranges = self._predicate.range_conditions()
        memberships = self._predicate.membership_conditions()
        usable_equalities = sorted(
            column for column in equalities
            if self._table.index_on(column) is not None
        )
        usable_ranges = sorted(
            column for column in ranges
            if isinstance(self._table.index_on(column), SortedIndex)
        )
        result: dict[str, Any] = {
            "table": self._table.name,
            "equality_conditions": dict(equalities),
            "range_conditions": dict(ranges),
            "membership_conditions": {
                column: list(values)
                for column, values in memberships.items()
            },
            "indexed_equalities": usable_equalities,
            "indexed_ranges": usable_ranges,
            "candidate_rows": plan.candidate_count,
            "full_scan": plan.access_path == "full_scan",
            "joins": len(self._joins),
            "filter_after_joins": bool(self._joins),
            "access_path": plan.access_path,
            "strategy": plan.strategy,
            "index_columns": plan.index_columns,
            "estimated_rows": plan.estimated_rows,
            "order_by": [list(pair) for pair in self._order],
            "limit": self._limit,
            "offset": self._offset,
            "reason": plan.reason,
        }
        if analyze:
            result["actual_rows"] = len(self.all())
        return result

    def _execute(self) -> list[Row]:
        plan = self._plan()
        self._record_plan(plan)
        if plan.strategy == "stream_ordered":
            return self._finalize(self._stream_ordered(plan),
                                  ordered=True, limited=True)
        if plan.strategy == "topk_heap":
            return self._finalize(self._heap_topk(plan),
                                  ordered=True, limited=True)
        return self._finalize(list(self._joined_rows(plan)))

    def all(self) -> list[Row]:
        """Execute and return every matching row."""
        return self._execute()

    def __iter__(self) -> Iterator[Row]:
        return iter(self.all())

    def first(self) -> Row | None:
        """Execute and return the first row or ``None``."""
        rows = self.all()
        return rows[0] if rows else None

    def exists(self) -> bool:
        return self.first() is not None

    def count(self) -> int:
        """Number of matching rows (ignores limit/offset/projection)."""
        plan = self._plan(include_order=False)
        self._record_plan(plan)
        return sum(1 for __ in self._joined_rows(plan))

    def values(self, column: str) -> list[Any]:
        """The (non-projected) values of one column, in result order."""
        return [row.get(column) for row in self.all()]

    def aggregate(self, *aggregates: Aggregate) -> dict[str, Any]:
        """Compute aggregates over the matching rows."""
        plan = self._plan(include_order=False)
        self._record_plan(plan)
        rows = list(self._joined_rows(plan))
        return {agg.alias: agg.compute(rows) for agg in aggregates}

    def group_by(self, *columns: str,
                 aggregates: Sequence[Aggregate] = ()) -> list[Row]:
        """Group matching rows and compute ``aggregates`` per group.

        Returns one row per group carrying the grouping columns plus one
        key per aggregate alias, ordered by group key.
        """
        plan = self._plan(include_order=False)
        self._record_plan(plan)
        groups: dict[tuple, list[Row]] = {}
        for row in self._joined_rows(plan):
            key = tuple(_hashable(row.get(column)) for column in columns)
            groups.setdefault(key, []).append(row)
        results: list[Row] = []
        for key in sorted(groups, key=_group_sort_key):
            rows = groups[key]
            result: Row = {
                column: rows[0].get(column) for column in columns
            }
            for agg in aggregates:
                result[agg.alias] = agg.compute(rows)
            results.append(result)
        return results


def _hashable(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def _group_sort_key(key: tuple) -> tuple:
    # None sorts first, and mixed types fall back to type-name ordering so
    # sorting never raises.
    return tuple(
        (value is None, type(value).__name__, value if value is not None else 0)
        for value in key
    )
