"""End-to-end reproduction of the paper's FNJV case study."""

from repro.casestudy.fnjv import CaseStudyResults, FNJVCaseStudy
from repro.casestudy.reporting import comparison_table, render_comparison

__all__ = [
    "CaseStudyResults",
    "FNJVCaseStudy",
    "comparison_table",
    "render_comparison",
]
