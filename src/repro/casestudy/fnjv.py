"""The FNJV case study, end to end.

One call builds the whole Fig. 3 instance — synthetic FNJV collection,
simulated Catalogue of Life service (reputation 1.0, availability 0.9),
workflow engine, Provenance Manager, Data Quality Manager — runs the
five-step process of §IV-C and hands back the paper's numbers:

* Fig. 2 — 11 898 records processed, 1 929 distinct names, 134 outdated;
* §IV-C — accuracy 93 %, reputation 1.0, availability 0.9.
"""

from __future__ import annotations

from typing import Any

from repro.core.assessment import AssessmentReport
from repro.core.manager import DataQualityManager
from repro.curation.pipeline import CurationPipeline, PipelineReport
from repro.curation.species_check import SpeciesCheckResult
from repro.geo.climate import ClimateArchive
from repro.geo.gazetteer import Gazetteer
from repro.provenance.manager import ProvenanceManager
from repro.sounds.generator import (
    CollectionConfig,
    GroundTruth,
    generate_collection,
)
from repro.taxonomy.catalogue import CatalogueOfLife
from repro.taxonomy.service import CatalogueService
from repro.workflow.cache import ResultCache
from repro.workflow.engine import WorkflowEngine

__all__ = ["PAPER_FIGURES", "CaseStudyResults", "FNJVCaseStudy"]

#: the quantitative claims of §IV, used for paper-vs-measured reporting
PAPER_FIGURES: dict[str, Any] = {
    "records_processed": 11_898,
    "distinct_species_names": 1_929,
    "outdated_names": 134,
    "outdated_fraction": 0.07,
    "accuracy": 0.93,
    "reputation": 1.0,
    "availability": 0.9,
}


class CaseStudyResults:
    """Everything one reproduction run produced."""

    def __init__(self, check: SpeciesCheckResult,
                 quality: AssessmentReport,
                 pipeline: PipelineReport,
                 truth: GroundTruth) -> None:
        self.check = check
        self.quality = quality
        self.pipeline = pipeline
        self.truth = truth

    def measured_figures(self) -> dict[str, Any]:
        """The measured counterparts of :data:`PAPER_FIGURES`."""
        return {
            "records_processed": self.check.records_processed,
            "distinct_species_names": self.check.distinct_names,
            "outdated_names": self.check.outdated_names,
            "outdated_fraction": round(self.check.outdated_fraction, 3),
            "accuracy": round(self.quality.value("accuracy"), 3),
            "reputation": self.quality.value("reputation"),
            "availability": self.quality.value("availability"),
        }

    def __repr__(self) -> str:
        return f"CaseStudyResults({self.measured_figures()})"


class FNJVCaseStudy:
    """Builder + runner for the whole case study.

    Parameters
    ----------
    seed:
        Master seed; the default (2013) reproduces the paper's numbers
        exactly.
    config:
        Collection generation parameters (paper scale by default).
    availability / reputation:
        The Catalogue service profile (Listing 1's values by default).
    max_workers / result_cache:
        Engine knobs: wave-parallel execution width and an optional
        content-keyed result cache.  Traces and results are identical
        for every ``max_workers`` — only wall-clock time changes.
    """

    def __init__(self, seed: int = 2013,
                 config: CollectionConfig | None = None,
                 availability: float = 0.9,
                 reputation: float = 1.0,
                 max_workers: int = 1,
                 result_cache: ResultCache | None = None) -> None:
        self.seed = seed
        self.config = config or CollectionConfig(seed=seed)
        self.catalogue = CatalogueOfLife()
        self.gazetteer = Gazetteer(seed=seed)
        self.climate = ClimateArchive()
        self.collection, self.truth = generate_collection(
            self.catalogue, self.gazetteer, self.climate, self.config,
        )
        self.service = CatalogueService(
            self.catalogue, availability=availability,
            reputation=reputation, seed=seed,
        )
        self.engine = WorkflowEngine(max_workers=max_workers,
                                     cache=result_cache)
        self.provenance = ProvenanceManager()
        self.pipeline = CurationPipeline(
            self.collection, self.service,
            gazetteer=self.gazetteer, climate=self.climate,
            engine=self.engine, provenance=self.provenance,
        )
        self.quality_manager = DataQualityManager(
            provenance=self.provenance.repository,
        )

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------

    def run_detection_only(self) -> SpeciesCheckResult:
        """Stage 1.1 (so names are syntactically clean) + the detection
        workflow — the minimal path to the Fig. 2 numbers."""
        from repro.curation.cleaning import MetadataCleaner

        MetadataCleaner(self.pipeline.history).run()
        return self.pipeline.checker.run()

    def assess_quality(self, run_id: str) -> AssessmentReport:
        """The §IV-C quality report for a captured run."""
        return self.quality_manager.assess_species_check_run(
            run_id, collection=self.collection,
        )

    def run(self, full_pipeline: bool = False) -> CaseStudyResults:
        """The five-step §IV-C process (optionally the full stage 1+2)."""
        if full_pipeline:
            pipeline_report = self.pipeline.run_all()
            check = pipeline_report.species_check
            assert check is not None
        else:
            check = self.run_detection_only()
            pipeline_report = PipelineReport()
            pipeline_report.species_check = check
        quality = self.assess_quality(check.run_id)
        return CaseStudyResults(check, quality, pipeline_report, self.truth)
