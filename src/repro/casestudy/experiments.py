"""Programmatic experiment runner.

Each function regenerates one of the paper's quantitative artifacts and
returns a plain dict (experiment id, what it reproduces, paper vs.
measured rows, pass/fail against the shape criteria).  The pytest
benches under ``benchmarks/`` wrap the same logic with timing; this
module is the library surface — ``repro experiments`` on the CLI, or::

    from repro.casestudy.experiments import run_all
    for result in run_all():
        print(result["id"], "PASS" if result["passed"] else "FAIL")

The full suite at paper scale takes a minute or two.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.casestudy.fnjv import FNJVCaseStudy, PAPER_FIGURES

__all__ = ["run_e1_fig2", "run_e2_quality", "run_a2_decay",
           "run_a4_crossref", "run_all", "EXPERIMENTS"]


def run_e1_fig2(study: FNJVCaseStudy | None = None,
                max_workers: int = 1) -> dict[str, Any]:
    """E1 — Figure 2's detection summary at paper scale.

    ``max_workers`` widens the engine's wave scheduler (used only when
    no ``study`` is supplied); the measured numbers are identical for
    every width — the engine guarantees it.
    """
    study = study or FNJVCaseStudy(max_workers=max_workers)
    result = study.run_detection_only()
    measured = {
        "records_processed": result.records_processed,
        "distinct_species_names": result.distinct_names,
        "outdated_names": result.outdated_names,
    }
    paper = {k: PAPER_FIGURES[k] for k in measured}
    passed = (
        measured["records_processed"] == paper["records_processed"]
        and measured["distinct_species_names"] == (
            paper["distinct_species_names"])
        and abs(measured["outdated_names"]
                - paper["outdated_names"]) <= 2
    )
    return {"id": "E1", "reproduces": "Figure 2", "paper": paper,
            "measured": measured, "passed": passed, "_study": study,
            "_result": result}


def run_e2_quality(previous: dict[str, Any] | None = None) -> dict[str, Any]:
    """E2 — the §IV-C quality report (reuses E1's run when given)."""
    if previous is None:
        previous = run_e1_fig2()
    study: FNJVCaseStudy = previous["_study"]
    report = study.assess_quality(previous["_result"].run_id)
    measured = {
        "accuracy": round(report.value("accuracy"), 3),
        "reputation": report.value("reputation"),
        "availability": report.value("availability"),
    }
    paper = {k: PAPER_FIGURES[k] for k in measured}
    passed = (
        abs(measured["accuracy"] - paper["accuracy"]) < 0.01
        and measured["reputation"] == paper["reputation"]
        and measured["availability"] == paper["availability"]
    )
    return {"id": "E2", "reproduces": "§IV-C quality report",
            "paper": paper, "measured": measured, "passed": passed}


def run_a2_decay(seed: int = 2013) -> dict[str, Any]:
    """A2 — curation-policy comparison over evolving taxonomy."""
    from repro.core.decay import DecaySimulator
    from repro.taxonomy.backbone import BackboneConfig, build_backbone
    from repro.taxonomy.catalogue import CatalogueOfLife
    from repro.taxonomy.synonyms import generate_changes

    backbone = build_backbone(BackboneConfig(seed=seed,
                                             total_species=600))
    catalogue = CatalogueOfLife(
        backbone, generate_changes(backbone, yearly_rate=0.01,
                                   seed=seed))
    names = catalogue.as_of(1990).species_names()
    comparison = DecaySimulator(catalogue).compare_policies(
        names, 1990, 2013, period_years=2)
    measured = {
        "final_accuracy_none": round(
            comparison["none"].final_accuracy, 3),
        "final_accuracy_periodic": round(
            comparison["periodic"].final_accuracy, 3),
    }
    passed = (measured["final_accuracy_none"] < 0.95
              and measured["final_accuracy_periodic"] > 0.97)
    return {"id": "A2", "reproduces": "quality decay motivation",
            "paper": {"shape": "uncurated decays; periodic holds"},
            "measured": measured, "passed": passed}


def run_a4_crossref(seed: int = 2013) -> dict[str, Any]:
    """A4 — the Shadows curation dividend."""
    from repro.linkeddata.shadows import (
        CrossReferencer,
        generate_publications,
    )
    from repro.taxonomy.backbone import BackboneConfig, build_backbone
    from repro.taxonomy.catalogue import CatalogueOfLife
    from repro.taxonomy.synonyms import generate_changes

    backbone = build_backbone(BackboneConfig(seed=seed,
                                             total_species=400))
    catalogue = CatalogueOfLife(
        backbone, generate_changes(backbone, yearly_rate=0.015,
                                   seed=seed))
    publications = generate_publications(catalogue, count=120, seed=seed)
    dividend = CrossReferencer(catalogue).curation_dividend(publications)
    passed = dividend["recovered_by_curation"] > 0
    return {"id": "A4", "reproduces": "Shadows cross-referencing claim",
            "paper": {"shape": "curation recovers hidden links"},
            "measured": dividend, "passed": passed}


EXPERIMENTS: dict[str, Callable[[], dict[str, Any]]] = {
    "E1": run_e1_fig2,
    "E2": run_e2_quality,
    "A2": run_a2_decay,
    "A4": run_a4_crossref,
}


def run_all() -> Iterator[dict[str, Any]]:
    """Run the library-surface experiments, sharing the E1 run with E2.

    (The full table/figure matrix, with timing, lives in
    ``benchmarks/``; this runner covers the headline results.)
    """
    e1 = run_e1_fig2()
    yield {k: v for k, v in e1.items() if not k.startswith("_")}
    yield run_e2_quality(e1)
    yield run_a2_decay()
    yield run_a4_crossref()
