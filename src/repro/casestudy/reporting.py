"""Paper-vs-measured reporting.

Utilities shared by the benchmarks, the examples and EXPERIMENTS.md:
line up the paper's published figures against what this reproduction
measures, and render the comparison.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["comparison_table", "render_comparison", "relative_error"]


def relative_error(expected: float, measured: float) -> float:
    """|measured - expected| / |expected| (0 when both are 0)."""
    if expected == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - expected) / abs(expected)


def comparison_table(paper: Mapping[str, Any],
                     measured: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Rows of {figure, paper, measured, relative_error} for the shared
    keys, in paper-key order."""
    rows = []
    for key, expected in paper.items():
        if key not in measured:
            continue
        actual = measured[key]
        row: dict[str, Any] = {
            "figure": key, "paper": expected, "measured": actual,
        }
        if isinstance(expected, (int, float)) and isinstance(
            actual, (int, float)
        ):
            row["relative_error"] = round(
                relative_error(float(expected), float(actual)), 4
            )
        rows.append(row)
    return rows


def render_comparison(paper: Mapping[str, Any],
                      measured: Mapping[str, Any],
                      title: str = "paper vs. measured") -> str:
    """A fixed-width text table of the comparison."""
    rows = comparison_table(paper, measured)
    width = max((len(row["figure"]) for row in rows), default=10)
    lines = [title, "=" * len(title),
             f"{'figure':<{width}}  {'paper':>12}  {'measured':>12}  {'rel.err':>8}"]
    for row in rows:
        err = row.get("relative_error")
        err_text = "-" if err is None else f"{err:8.2%}"
        lines.append(
            f"{row['figure']:<{width}}  {row['paper']!s:>12}  "
            f"{row['measured']!s:>12}  {err_text:>8}"
        )
    return "\n".join(lines)
