"""Entities, measurements, observations.

The ObsDB model in miniature: an :class:`Observation` asserts that an
:class:`Entity` was observed at some place and time, with a set of
:class:`Measurement` values; observations can reference *context*
observations (e.g. a vocalization observed within a weather
observation's conditions).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterable

from repro.errors import ReproError

__all__ = ["Entity", "Measurement", "Observation"]

_ENTITY_KINDS = ("taxon", "location", "sample", "device", "event")


class Entity:
    """The thing observed."""

    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str) -> None:
        if kind not in _ENTITY_KINDS:
            raise ReproError(f"unknown entity kind {kind!r}")
        if not name:
            raise ReproError("entity needs a name")
        self.kind = kind
        self.name = name

    def __repr__(self) -> str:
        return f"Entity({self.kind}: {self.name})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entity):
            return NotImplemented
        return (self.kind, self.name) == (other.kind, other.name)

    def __hash__(self) -> int:
        return hash((self.kind, self.name))

    @property
    def key(self) -> str:
        return f"{self.kind}:{self.name}"


class Measurement:
    """One recorded value of one characteristic."""

    __slots__ = ("characteristic", "value", "unit", "precision")

    def __init__(self, characteristic: str, value: Any,
                 unit: str = "", precision: float | None = None) -> None:
        if not characteristic:
            raise ReproError("measurement needs a characteristic")
        self.characteristic = characteristic
        self.value = value
        self.unit = unit
        self.precision = precision

    def __repr__(self) -> str:
        unit = f" {self.unit}" if self.unit else ""
        return f"Measurement({self.characteristic}={self.value!r}{unit})"

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float)) and not isinstance(
            self.value, bool)


class Observation:
    """One assertion: entity + measurements + place/time + context."""

    def __init__(self, obs_id: str, entity: Entity,
                 measurements: Iterable[Measurement] = (),
                 observed_at: _dt.datetime | None = None,
                 latitude: float | None = None,
                 longitude: float | None = None,
                 observer: str = "",
                 source: str = "",
                 context: Iterable[str] = ()) -> None:
        if not obs_id:
            raise ReproError("observation needs an id")
        self.obs_id = obs_id
        self.entity = entity
        self.measurements = list(measurements)
        self.observed_at = observed_at
        self.latitude = latitude
        self.longitude = longitude
        self.observer = observer
        self.source = source
        #: ids of context observations (conditions this one sits within)
        self.context = list(context)

    def __repr__(self) -> str:
        return (
            f"Observation({self.obs_id}, {self.entity.key}, "
            f"{len(self.measurements)} measurements)"
        )

    def measurement(self, characteristic: str) -> Measurement | None:
        for measurement in self.measurements:
            if measurement.characteristic == characteristic:
                return measurement
        return None

    def value_of(self, characteristic: str, default: Any = None) -> Any:
        measurement = self.measurement(characteristic)
        return default if measurement is None else measurement.value

    def characteristics(self) -> list[str]:
        return [m.characteristic for m in self.measurements]

    def add_measurement(self, measurement: Measurement) -> None:
        self.measurements.append(measurement)

    def add_context(self, obs_id: str) -> None:
        if obs_id == self.obs_id:
            raise ReproError("an observation cannot be its own context")
        if obs_id not in self.context:
            self.context.append(obs_id)
