"""The observation store — heterogeneous sources, one query surface.

Two tables on the storage engine: ``observations`` (entity, place,
time, source, context links as JSON) and ``measurements`` (one row per
characteristic value, FK to its observation).  Queries cut across
sources: "every numeric value of characteristic X", "all observations
of entity E", "observations within a bounding box", per-characteristic
statistics.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ReproError
from repro.observations.model import Entity, Measurement, Observation
from repro.storage import Column, Database, ForeignKey, TableSchema, col
from repro.storage import column_types as ct
from repro.storage.query import Aggregate

__all__ = ["ObservationStore"]

_OBS = "observations"
_MEAS = "measurements"


class ObservationStore:
    """Uniform storage for observations of any kind."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database or Database("observations")
        if not self.database.has_table(_OBS):
            self.database.create_table(TableSchema(_OBS, [
                Column("obs_id", ct.TEXT),
                Column("entity_kind", ct.TEXT, nullable=False),
                Column("entity_name", ct.TEXT, nullable=False),
                Column("observed_at", ct.DATETIME),
                Column("latitude", ct.REAL),
                Column("longitude", ct.REAL),
                Column("observer", ct.TEXT, default=""),
                Column("source", ct.TEXT, default=""),
                Column("context", ct.JSON, default=list),
            ], primary_key="obs_id"))
            self.database.create_index(_OBS, "entity_name", "hash")
            self.database.create_index(_OBS, "source", "hash")
            self.database.create_table(TableSchema(_MEAS, [
                Column("measurement_id", ct.INTEGER),
                Column("obs_id", ct.TEXT, nullable=False),
                Column("characteristic", ct.TEXT, nullable=False),
                Column("value_num", ct.REAL),
                Column("value_text", ct.TEXT),
                Column("unit", ct.TEXT, default=""),
                Column("precision", ct.REAL),
            ], primary_key="measurement_id",
                foreign_keys=[ForeignKey("obs_id", _OBS, "obs_id")]))
            self.database.create_index(_MEAS, "characteristic", "hash")
            self.database.create_index(_MEAS, "obs_id", "hash")
            self.database.create_index(_MEAS, "value_num", "sorted")
        self._next_measurement_id = self.database.count(_MEAS) + 1

    def __len__(self) -> int:
        return self.database.count(_OBS)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _observation_row(self, observation: Observation) -> dict[str, Any]:
        return {
            "obs_id": observation.obs_id,
            "entity_kind": observation.entity.kind,
            "entity_name": observation.entity.name,
            "observed_at": observation.observed_at,
            "latitude": observation.latitude,
            "longitude": observation.longitude,
            "observer": observation.observer,
            "source": observation.source,
            "context": list(observation.context),
        }

    def _measurement_row(self, observation: Observation,
                         measurement: Measurement,
                         measurement_id: int) -> dict[str, Any]:
        numeric = measurement.value if measurement.is_numeric else None
        text = None if measurement.is_numeric else (
            None if measurement.value is None
            else str(measurement.value))
        return {
            "measurement_id": measurement_id,
            "obs_id": observation.obs_id,
            "characteristic": measurement.characteristic,
            "value_num": numeric,
            "value_text": text,
            "unit": measurement.unit,
            "precision": measurement.precision,
        }

    def add(self, observation: Observation) -> str:
        """Store one observation with its measurements."""
        for context_id in observation.context:
            if not self.database.query(_OBS).where(
                    col("obs_id") == context_id).exists():
                raise ReproError(
                    f"context observation {context_id!r} is not stored"
                )
        self.database.insert(_OBS, self._observation_row(observation))
        for measurement in observation.measurements:
            self.database.insert(_MEAS, self._measurement_row(
                observation, measurement, self._next_measurement_id))
            self._next_measurement_id += 1
        return observation.obs_id

    def add_all(self, observations: Iterator[Observation]) -> int:
        """Bulk-store a batch through :meth:`Database.bulk_load`.

        One context-validation pre-pass replaces the per-row point
        queries of repeated :meth:`add` calls: a reference is satisfied
        by an *earlier observation in the same batch* or by the store,
        and each distinct stored id is probed at most once.  Unlike the
        old loop, a failing reference leaves the store untouched (the
        batch validates before anything lands), and both tables get one
        journal entry / deferred index rebuild instead of one per row.
        """
        batch = list(observations)
        if not batch:
            return 0
        satisfied: set[str] = set()
        obs_rows: list[dict[str, Any]] = []
        meas_rows: list[dict[str, Any]] = []
        next_id = self._next_measurement_id
        for observation in batch:
            for context_id in observation.context:
                if context_id in satisfied:
                    continue
                if self.database.query(_OBS).where(
                        col("obs_id") == context_id).exists():
                    satisfied.add(context_id)
                    continue
                raise ReproError(
                    f"context observation {context_id!r} is not stored"
                )
            satisfied.add(observation.obs_id)
            obs_rows.append(self._observation_row(observation))
            for measurement in observation.measurements:
                meas_rows.append(self._measurement_row(
                    observation, measurement, next_id))
                next_id += 1
        self.database.bulk_load(_OBS, obs_rows)
        if meas_rows:
            self.database.bulk_load(_MEAS, meas_rows)
        self._next_measurement_id = next_id
        return len(batch)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, obs_id: str) -> Observation:
        row = self.database.query(_OBS).where(
            col("obs_id") == obs_id).first()
        if row is None:
            raise ReproError(f"no observation {obs_id!r}")
        measurements = []
        for m in self.database.query(_MEAS).where(
                col("obs_id") == obs_id).order_by("measurement_id").all():
            value = m["value_num"] if m["value_num"] is not None else (
                m["value_text"])
            measurements.append(Measurement(
                m["characteristic"], value, unit=m["unit"] or "",
                precision=m["precision"]))
        return Observation(
            row["obs_id"],
            Entity(row["entity_kind"], row["entity_name"]),
            measurements=measurements,
            observed_at=row["observed_at"],
            latitude=row["latitude"], longitude=row["longitude"],
            observer=row["observer"] or "", source=row["source"] or "",
            context=row["context"] or [],
        )

    def observations_of(self, entity: Entity) -> list[Observation]:
        rows = self.database.query(_OBS).where(
            (col("entity_kind") == entity.kind)
            & (col("entity_name") == entity.name)
        ).order_by("obs_id").all()
        return [self.get(row["obs_id"]) for row in rows]

    def sources(self) -> list[str]:
        return sorted({
            row["source"]
            for row in self.database.query(_OBS).select("source").all()
            if row["source"]
        })

    def entity_names(self, kind: str | None = None) -> list[str]:
        query = self.database.query(_OBS)
        if kind is not None:
            query = query.where(col("entity_kind") == kind)
        return sorted({
            row["entity_name"]
            for row in query.select("entity_name").all()
        })

    # ------------------------------------------------------------------
    # cross-source queries
    # ------------------------------------------------------------------

    def values_of(self, characteristic: str,
                  numeric_only: bool = True) -> list[Any]:
        """Every stored value of one characteristic, across sources."""
        rows = self.database.query(_MEAS).where(
            col("characteristic") == characteristic).all()
        values = []
        for row in rows:
            if row["value_num"] is not None:
                values.append(row["value_num"])
            elif not numeric_only and row["value_text"] is not None:
                values.append(row["value_text"])
        return values

    def observations_where(self, characteristic: str, low: float,
                           high: float) -> list[str]:
        """Observation ids whose numeric measurement lies in
        [low, high]."""
        rows = self.database.query(_MEAS).where(
            (col("characteristic") == characteristic)
            & col("value_num").between(low, high)
        ).select("obs_id").all()
        return sorted({row["obs_id"] for row in rows})

    def within_box(self, lat_min: float, lat_max: float,
                   lon_min: float, lon_max: float) -> list[str]:
        rows = self.database.query(_OBS).where(
            col("latitude").between(lat_min, lat_max)
            & col("longitude").between(lon_min, lon_max)
        ).select("obs_id").all()
        return sorted(row["obs_id"] for row in rows)

    def statistics(self, characteristic: str) -> dict[str, Any]:
        """count / min / max / mean of one characteristic."""
        result = self.database.query(_MEAS).where(
            col("characteristic") == characteristic
        ).aggregate(
            Aggregate("count", "value_num", alias="count"),
            Aggregate("min", "value_num", alias="min"),
            Aggregate("max", "value_num", alias="max"),
            Aggregate("avg", "value_num", alias="mean"),
        )
        return result

    def context_chain(self, obs_id: str) -> list[str]:
        """Transitive context closure of one observation."""
        seen: list[str] = []
        frontier = [obs_id]
        while frontier:
            current = self.get(frontier.pop(0))
            for context_id in current.context:
                if context_id not in seen:
                    seen.append(context_id)
                    frontier.append(context_id)
        return seen
