"""A uniform observation model (ObsDB-style; the paper's ref. [20]).

"An observation represents an assertion that a particular entity was
observed and that the corresponding set of measurements were recorded
(as part of the observation).  Data in observation databases can be
very heterogeneous, and concern observations at multiple spatial and
temporal scales."

* :mod:`repro.observations.model` — Entity / Measurement / Observation
  with observation-context links;
* :mod:`repro.observations.store` — the observation store on the
  storage engine, queryable across heterogeneous sources;
* :mod:`repro.observations.adapter` — adapters mapping sound-recording
  metadata (and arbitrary tabular rows) into observations, so a sound
  archive and a weather logger share one query surface.
"""

from repro.observations.adapter import (
    observation_from_row,
    observation_from_sound_record,
)
from repro.observations.model import Entity, Measurement, Observation
from repro.observations.store import ObservationStore

__all__ = [
    "Entity",
    "Measurement",
    "Observation",
    "ObservationStore",
    "observation_from_row",
    "observation_from_sound_record",
]
