"""Adapters: heterogeneous records -> uniform observations.

``observation_from_sound_record`` turns one FNJV-style recording into a
taxon observation whose measurements carry the environmental and
recording characteristics; ``observation_from_row`` maps any tabular
row given a small column specification — the ObsDB promise that a sound
archive and a weather logger can share one store.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Mapping

from repro.errors import ReproError
from repro.observations.model import Entity, Measurement, Observation
from repro.sounds.record import SoundRecord

__all__ = ["observation_from_sound_record", "observation_from_row"]


def _observed_at(record: SoundRecord) -> _dt.datetime | None:
    date = record.collect_date
    if date is None:
        return None
    hour, minute = 12, 0
    time_text = record.collect_time
    if time_text and len(time_text) == 5 and time_text[2] == ":":
        try:
            hour, minute = int(time_text[:2]), int(time_text[3:])
        except ValueError:
            pass
    if not (0 <= hour <= 23 and 0 <= minute <= 59):
        hour, minute = 12, 0
    return _dt.datetime(date.year, date.month, date.day, hour, minute)


def observation_from_sound_record(record: SoundRecord,
                                  source: str = "fnjv") -> Observation:
    """One recording as a taxon observation."""
    if record.species is None:
        raise ReproError(
            f"record {record.record_id} has no species; cannot form a "
            "taxon observation"
        )
    measurements = [Measurement("vocalization_recorded", True)]
    if record.number_of_individuals is not None:
        measurements.append(Measurement(
            "individuals", record.number_of_individuals, unit="count"))
    if record.air_temperature_c is not None:
        measurements.append(Measurement(
            "air_temperature", record.air_temperature_c, unit="degC"))
    if record.frequency_khz is not None:
        measurements.append(Measurement(
            "sampling_rate", record.frequency_khz, unit="kHz"))
    if record.duration_s is not None:
        measurements.append(Measurement(
            "recording_duration", record.duration_s, unit="s"))
    if record.habitat is not None:
        measurements.append(Measurement("habitat", record.habitat))
    if record.atmospheric_conditions is not None:
        measurements.append(Measurement(
            "atmospheric_conditions", record.atmospheric_conditions))
    return Observation(
        f"{source}/rec/{record.record_id}",
        Entity("taxon", record.species),
        measurements=measurements,
        observed_at=_observed_at(record),
        latitude=record.latitude,
        longitude=record.longitude,
        observer=record.recordist or "",
        source=source,
    )


def observation_from_row(row: Mapping[str, Any], obs_id: str,
                         entity_kind: str, entity_column: str,
                         measurement_columns: Mapping[str, str],
                         source: str,
                         observed_at_column: str | None = None,
                         latitude_column: str | None = None,
                         longitude_column: str | None = None) -> Observation:
    """A generic tabular row as an observation.

    ``measurement_columns`` maps ``column name -> unit`` (empty unit for
    categorical values).
    """
    entity_name = row.get(entity_column)
    if not entity_name:
        raise ReproError(f"row lacks entity column {entity_column!r}")
    measurements = []
    for column, unit in measurement_columns.items():
        value = row.get(column)
        if value is not None:
            measurements.append(Measurement(column, value, unit=unit))
    observed_at = row.get(observed_at_column) if observed_at_column else None
    if isinstance(observed_at, _dt.date) and not isinstance(
            observed_at, _dt.datetime):
        observed_at = _dt.datetime(observed_at.year, observed_at.month,
                                   observed_at.day)
    return Observation(
        obs_id,
        Entity(entity_kind, str(entity_name)),
        measurements=measurements,
        observed_at=observed_at,
        latitude=row.get(latitude_column) if latitude_column else None,
        longitude=row.get(longitude_column) if longitude_column else None,
        source=source,
    )
