"""The Open Provenance Model (OPM) v1.1 core.

Node kinds
----------
* :class:`Artifact` — an immutable piece of state (a value on a port, a
  dataset, a record).
* :class:`Process` — an action performed on or caused by artifacts.
* :class:`Agent` — a contextual entity controlling a process.

Edge kinds (cause <- effect, per the spec's arrow direction: an edge
points from effect to cause)
----------------------------
* ``used(process -> artifact, role)`` — the process consumed the artifact.
* ``wasGeneratedBy(artifact -> process, role)`` — the artifact was
  produced by the process.
* ``wasControlledBy(process -> agent, role)`` — the agent controlled the
  process.
* ``wasTriggeredBy(process -> process)`` — process started because of
  another process.
* ``wasDerivedFrom(artifact -> artifact)`` — artifact depends on another
  artifact.

Every node and edge may belong to *accounts* — named, possibly
overlapping views of the same execution (OPM §6).  Nodes carry an
``annotations`` dict used by the quality layer (reputation of a source
artifact, availability of a service process, ...).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import InvalidEdgeError, ProvenanceError, UnknownNodeError

__all__ = ["Node", "Artifact", "Process", "Agent", "Edge", "OPMGraph",
           "EDGE_KINDS"]

#: edge kind -> (effect node kind, cause node kind)
EDGE_KINDS: dict[str, tuple[str, str]] = {
    "used": ("process", "artifact"),
    "wasGeneratedBy": ("artifact", "process"),
    "wasControlledBy": ("process", "agent"),
    "wasTriggeredBy": ("process", "process"),
    "wasDerivedFrom": ("artifact", "artifact"),
}


class Node:
    """Common behaviour of OPM nodes."""

    kind = "node"

    def __init__(self, node_id: str, label: str = "",
                 value: Any = None,
                 accounts: Iterable[str] = (),
                 annotations: Mapping[str, Any] | None = None) -> None:
        if not node_id:
            raise ProvenanceError(f"{self.kind} needs an id")
        self.id = node_id
        self.label = label or node_id
        self.value = value
        self.accounts: set[str] = set(accounts)
        self.annotations: dict[str, Any] = dict(annotations or {})

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.id})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.kind == other.kind and self.id == other.id

    def __hash__(self) -> int:
        return hash((self.kind, self.id))

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "label": self.label,
            "value": self.value,
            "accounts": sorted(self.accounts),
            "annotations": dict(self.annotations),
        }


class Artifact(Node):
    kind = "artifact"


class Process(Node):
    kind = "process"


class Agent(Node):
    kind = "agent"


_NODE_CLASSES: dict[str, type[Node]] = {
    "artifact": Artifact, "process": Process, "agent": Agent,
}


def node_from_dict(data: Mapping[str, Any]) -> Node:
    cls = _NODE_CLASSES.get(data.get("kind", ""))
    if cls is None:
        raise ProvenanceError(f"unknown node kind {data.get('kind')!r}")
    return cls(
        data["id"],
        label=data.get("label", ""),
        value=data.get("value"),
        accounts=data.get("accounts", ()),
        annotations=data.get("annotations"),
    )


class Edge:
    """One causal dependency.  ``effect`` depends on ``cause``."""

    __slots__ = ("kind", "effect", "cause", "role", "accounts")

    def __init__(self, kind: str, effect: str, cause: str,
                 role: str = "", accounts: Iterable[str] = ()) -> None:
        if kind not in EDGE_KINDS:
            raise InvalidEdgeError(f"unknown edge kind {kind!r}")
        self.kind = kind
        self.effect = effect
        self.cause = cause
        self.role = role
        self.accounts = set(accounts)

    def __repr__(self) -> str:
        role = f" role={self.role!r}" if self.role else ""
        return f"Edge({self.effect} -{self.kind}-> {self.cause}{role})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (self.kind, self.effect, self.cause, self.role) == (
            other.kind, other.effect, other.cause, other.role
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.effect, self.cause, self.role))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "effect": self.effect,
            "cause": self.cause,
            "role": self.role,
            "accounts": sorted(self.accounts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Edge":
        return cls(data["kind"], data["effect"], data["cause"],
                   role=data.get("role", ""),
                   accounts=data.get("accounts", ()))


class OPMGraph:
    """A validated OPM graph.

    Nodes are unique by (kind, id); ids are shared across kinds only if
    you enjoy confusion, so :meth:`add` also rejects reusing an id for a
    different kind.
    """

    def __init__(self, graph_id: str = "opm") -> None:
        self.id = graph_id
        self._nodes: dict[str, Node] = {}
        self._edges: list[Edge] = []

    def __repr__(self) -> str:
        return (
            f"OPMGraph({self.id}, {len(self._nodes)} nodes, "
            f"{len(self._edges)} edges)"
        )

    # -- nodes ----------------------------------------------------------

    def add(self, node: Node) -> Node:
        existing = self._nodes.get(node.id)
        if existing is not None:
            if existing.kind != node.kind:
                raise ProvenanceError(
                    f"id {node.id!r} already used by a {existing.kind}"
                )
            # merge accounts/annotations on re-add
            existing.accounts |= node.accounts
            existing.annotations.update(node.annotations)
            return existing
        self._nodes[node.id] = node
        return node

    def add_artifact(self, node_id: str, **kwargs: Any) -> Artifact:
        node = self.add(Artifact(node_id, **kwargs))
        assert isinstance(node, Artifact)
        return node

    def add_process(self, node_id: str, **kwargs: Any) -> Process:
        node = self.add(Process(node_id, **kwargs))
        assert isinstance(node, Process)
        return node

    def add_agent(self, node_id: str, **kwargs: Any) -> Agent:
        node = self.add(Agent(node_id, **kwargs))
        assert isinstance(node, Agent)
        return node

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self, kind: str | None = None) -> Iterator[Node]:
        for node in self._nodes.values():
            if kind is None or node.kind == kind:
                yield node

    def artifacts(self) -> Iterator[Artifact]:
        return (n for n in self.nodes("artifact"))  # type: ignore[return-value] - node iter

    def processes(self) -> Iterator[Process]:
        return (n for n in self.nodes("process"))  # type: ignore[return-value] - node iter

    def agents(self) -> Iterator[Agent]:
        return (n for n in self.nodes("agent"))  # type: ignore[return-value] - node iter

    # -- edges ----------------------------------------------------------

    def _check_endpoint(self, node_id: str, expected_kind: str,
                        edge_kind: str) -> None:
        node = self.node(node_id)
        if node.kind != expected_kind:
            raise InvalidEdgeError(
                f"{edge_kind} requires a {expected_kind} but {node_id!r} "
                f"is a {node.kind}"
            )

    def add_edge(self, edge: Edge) -> Edge:
        effect_kind, cause_kind = EDGE_KINDS[edge.kind]
        self._check_endpoint(edge.effect, effect_kind, edge.kind)
        self._check_endpoint(edge.cause, cause_kind, edge.kind)
        self._edges.append(edge)
        return edge

    def used(self, process: str, artifact: str, role: str = "") -> Edge:
        return self.add_edge(Edge("used", process, artifact, role=role))

    def was_generated_by(self, artifact: str, process: str,
                         role: str = "") -> Edge:
        return self.add_edge(
            Edge("wasGeneratedBy", artifact, process, role=role)
        )

    def was_controlled_by(self, process: str, agent: str,
                          role: str = "") -> Edge:
        return self.add_edge(
            Edge("wasControlledBy", process, agent, role=role)
        )

    def was_triggered_by(self, effect_process: str,
                         cause_process: str) -> Edge:
        return self.add_edge(
            Edge("wasTriggeredBy", effect_process, cause_process)
        )

    def was_derived_from(self, effect_artifact: str,
                         cause_artifact: str) -> Edge:
        return self.add_edge(
            Edge("wasDerivedFrom", effect_artifact, cause_artifact)
        )

    def edges(self, kind: str | None = None) -> Iterator[Edge]:
        for edge in self._edges:
            if kind is None or edge.kind == kind:
                yield edge

    def edges_from(self, effect: str, kind: str | None = None) -> Iterator[Edge]:
        """Edges whose *effect* end is ``effect`` (i.e. its causes)."""
        for edge in self._edges:
            if edge.effect != effect:
                continue
            if kind is not None and edge.kind != kind:
                continue
            yield edge

    def edges_to(self, cause: str, kind: str | None = None) -> Iterator[Edge]:
        """Edges whose *cause* end is ``cause`` (i.e. its effects)."""
        for edge in self._edges:
            if edge.cause != cause:
                continue
            if kind is not None and edge.kind != kind:
                continue
            yield edge

    # -- accounts ----------------------------------------------------------

    def accounts(self) -> set[str]:
        names: set[str] = set()
        for node in self._nodes.values():
            names |= node.accounts
        for edge in self._edges:
            names |= edge.accounts
        return names

    def view(self, account: str) -> "OPMGraph":
        """The subgraph visible in ``account``."""
        sub = OPMGraph(f"{self.id}[{account}]")
        for node in self._nodes.values():
            if account in node.accounts:
                sub.add(node_from_dict(node.to_dict()))
        for edge in self._edges:
            if account in edge.accounts and (
                sub.has_node(edge.effect) and sub.has_node(edge.cause)
            ):
                sub.add_edge(Edge.from_dict(edge.to_dict()))
        return sub

    # -- composition -------------------------------------------------------

    def merge(self, other: "OPMGraph") -> None:
        """Union ``other`` into this graph (shared ids are merged)."""
        for node in other._nodes.values():
            self.add(node_from_dict(node.to_dict()))
        seen = set(self._edges)
        for edge in other._edges:
            if edge not in seen:
                self.add_edge(Edge.from_dict(edge.to_dict()))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "nodes": [node.to_dict() for node in self._nodes.values()],
            "edges": [edge.to_dict() for edge in self._edges],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OPMGraph":
        graph = cls(data.get("id", "opm"))
        for node_data in data.get("nodes", ()):
            graph.add(node_from_dict(node_data))
        for edge_data in data.get("edges", ()):
            graph.add_edge(Edge.from_dict(edge_data))
        return graph
