"""The Data Provenance Repository (Fig. 1).

Persists, per workflow run:

* the raw execution trace (JSON),
* the OPM graph (JSON),
* the workflow description it ran against (JSON, optional),

on the storage engine, and offers the queries the Data Quality Manager
needs: the graph for a run, the runs of a workflow, and the quality
annotations of the processes involved in producing an output.

Every stored run is also ingested — transparently, on the same
database — into the archival
:class:`~repro.provenance.store.ProvenanceStore`, so cross-run lineage
(``ancestors``/``descendants`` of an artifact, cache-replay chains,
"which vault objects derive from run X") is answered by interned
columnar indexes instead of re-parsing every graph.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Iterator

from repro.errors import ProvenanceError
from repro.provenance.opm import OPMGraph
from repro.provenance.serialization import graph_from_json, graph_to_json
from repro.provenance.store import ProvenanceStore
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct
from repro.workflow.model import Workflow
from repro.workflow.serialization import workflow_from_json, workflow_to_json
from repro.workflow.trace import WorkflowTrace

__all__ = ["ProvenanceRepository"]

_RUNS = "provenance_runs"


class ProvenanceRepository:
    """Run-indexed provenance storage on a :class:`~repro.storage.Database`.

    Parameters
    ----------
    database:
        Storage engine; a fresh in-memory one when omitted.
    store:
        The attached archival store.  ``None`` (default) creates one
        on the same database; pass an existing
        :class:`~repro.provenance.store.ProvenanceStore` to share, or
        ``False`` to run store-less (legacy scans only).
    """

    def __init__(self, database: Database | None = None,
                 store: ProvenanceStore | bool | None = None) -> None:
        self.database = database or Database("provenance_repository")
        if not self.database.has_table(_RUNS):
            self.database.create_table(TableSchema(_RUNS, [
                Column("run_id", ct.TEXT),
                Column("workflow_name", ct.TEXT, nullable=False),
                Column("status", ct.TEXT, nullable=False),
                Column("started", ct.DATETIME),
                Column("finished", ct.DATETIME),
                Column("trace", ct.TEXT, nullable=False),
                Column("graph", ct.TEXT, nullable=False),
                Column("workflow", ct.TEXT),
            ], primary_key="run_id"))
            self.database.create_index(_RUNS, "workflow_name", "hash")
        if store is False:
            self.store: ProvenanceStore | None = None
        elif store is None or store is True:
            self.store = ProvenanceStore(self.database)
        else:
            self.store = store
        if self.store is not None:
            self._sync_store()

    def _sync_store(self) -> None:
        """Re-index runs persisted here but absent from the store —
        the rebuild path after reattaching to a recovered database
        (tail runs are not persisted as segments; their graphs are)."""
        assert self.store is not None
        if self.store.run_count() >= self.database.count(_RUNS):
            return
        missing = (
            (row["run_id"], graph_from_json(row["graph"]))
            for row in self.database.query(_RUNS).select(
                "run_id", "graph").order_by("run_id").all()
            if not self.store.has_run(row["run_id"])
        )
        self.store.ingest_repository_rows(missing)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def store_run(self, trace: WorkflowTrace, graph: OPMGraph,
                  workflow: Workflow | None = None) -> None:
        """Persist one run.  Storing the same run id twice replaces it
        (re-capture after a retry)."""
        row = {
            "run_id": trace.run_id,
            "workflow_name": trace.workflow_name,
            "status": trace.status,
            "started": trace.started,
            "finished": trace.finished,
            "trace": json.dumps(trace.to_dict(), sort_keys=True,
                                default=str),
            "graph": graph_to_json(graph),
            "workflow": None if workflow is None
            else workflow_to_json(workflow, indent=None),
        }
        existing = self.database.query(_RUNS).where(
            col("run_id") == trace.run_id
        ).first()
        if existing is None:
            self.database.insert(_RUNS, row)
        else:
            rowid = self.database.rowid_for(_RUNS, trace.run_id)
            self.database.update(_RUNS, rowid, row)
        if self.store is not None:
            # append-only archive: a re-capture keeps the first
            # archived skeleton (ingest_graph counts the skip)
            self.store.ingest_graph(trace.run_id, graph)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def run_ids(self, workflow_name: str | None = None) -> list[str]:
        query = self.database.query(_RUNS)
        if workflow_name is not None:
            query = query.where(col("workflow_name") == workflow_name)
        return sorted(query.values("run_id"))

    def has_run(self, run_id: str) -> bool:
        """Primary-key membership probe (no run-list materialization)."""
        return self.database.query(_RUNS).where(
            col("run_id") == run_id
        ).first() is not None

    def run_count(self) -> int:
        """How many runs are archived — read from the store manifest
        when one is attached, so no table scan is ever needed."""
        if self.store is not None:
            counts = self.store.manifest_counts()
            if "runs_total" in counts:
                return int(counts["runs_total"])
        return self.database.count(_RUNS)

    def runs_for_artifact(self, artifact_id: str, *,
                          scan: bool = False) -> list[str]:
        """Every run whose OPM graph mentions ``artifact_id``.

        Served by the store's backward (artifact -> runs) index.  The
        pre-store behaviour — deserialize every graph and probe it —
        survives as the ``scan=True`` / store-less path, deprecated
        and counted (``provstore_legacy_artifact_scans_total``) so
        dashboards surface callers still paying O(n-runs).
        """
        if self.store is not None and not scan:
            return self.store.runs_for_artifact(artifact_id)
        from repro.telemetry import get_telemetry
        get_telemetry().metrics.counter(
            "provstore_legacy_artifact_scans_total").inc()
        warnings.warn(
            "linear run scan for an artifact id is deprecated; attach "
            "a ProvenanceStore and use its backward index",
            DeprecationWarning, stacklevel=2)
        matches = []
        for row in self.database.query(_RUNS).select(
                "run_id", "graph").order_by("run_id").all():
            if graph_from_json(row["graph"]).has_node(artifact_id):
                matches.append(row["run_id"])
        return matches

    def latest_run_id(self, workflow_name: str) -> str | None:
        ids = self.run_ids(workflow_name)
        return ids[-1] if ids else None

    def _row(self, run_id: str) -> dict[str, Any]:
        row = self.database.query(_RUNS).where(
            col("run_id") == run_id
        ).first()
        if row is None:
            raise ProvenanceError(f"no provenance for run {run_id!r}")
        return row

    def graph_for(self, run_id: str) -> OPMGraph:
        return graph_from_json(self._row(run_id)["graph"])

    def trace_for(self, run_id: str) -> WorkflowTrace:
        return WorkflowTrace.from_dict(json.loads(self._row(run_id)["trace"]))

    def workflow_for(self, run_id: str) -> Workflow | None:
        document = self._row(run_id)["workflow"]
        if document is None:
            return None
        return workflow_from_json(document)

    def runs(self, workflow_name: str | None = None) -> Iterator[dict[str, Any]]:
        """Run metadata rows (no heavy payloads)."""
        query = self.database.query(_RUNS).select(
            "run_id", "workflow_name", "status", "started", "finished"
        )
        if workflow_name is not None:
            query = query.where(col("workflow_name") == workflow_name)
        yield from query.order_by("run_id").all()

    # ------------------------------------------------------------------
    # quality-oriented queries
    # ------------------------------------------------------------------

    def process_annotations(self, run_id: str) -> dict[str, dict[str, Any]]:
        """``{processor label: quality annotation dict}`` for a run.

        Only processes that actually carry a ``quality`` annotation appear.
        This is the provenance-side half of the paper's quality assessment:
        the reputation/availability the Workflow Adapter attached travel
        with the provenance, not with the data.
        """
        graph = self.graph_for(run_id)
        result: dict[str, dict[str, Any]] = {}
        for process in graph.nodes("process"):
            quality = process.annotations.get("quality")
            if quality:
                result[process.label] = dict(quality)
        return result

    def __len__(self) -> int:
        return self.database.count(_RUNS)
