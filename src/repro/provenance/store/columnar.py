"""Columnar graph segments with CSR adjacency indexes.

A segment holds a batch of runs' provenance as flat integer columns
(every string routed through the store's :class:`StringPool`):

* one **node row** per (run, node) observation — node sid, kind code,
  label sid, run sid;
* one **edge row** per causal edge — kind code, effect sid, cause sid,
  role sid.

Two segment forms exist:

* :class:`SegmentBuilder` — the *active tail*.  Mutable, dict-based
  adjacency so queries stay answerable while runs accumulate.
* :class:`SealedSegment` — immutable.  Columns become ``array``
  vectors and the adjacency becomes CSR (compressed sparse row)
  indexes: per edge kind, a *forward* index (effect -> causes; the
  "where did it come from" direction OPM arrows point in) and a
  *backward* index (cause -> effects).  Lookups are a binary search
  plus a contiguous slice — no per-node Python objects survive.

Edge kind 5, ``wasCachedFrom``, is a store-level materialization: the
engine records cache replays as a *process annotation* (the OPM graph
of a single run cannot hold an edge to a process of another run), and
the builder lifts that annotation into a typed cross-run edge so chain
resolution is an index walk instead of an annotation hunt.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Iterator, Mapping

from repro.errors import ProvenanceError
from repro.provenance.opm import OPMGraph
from repro.provenance.store.interning import StringPool

__all__ = [
    "CSRIndex",
    "SegmentBuilder",
    "SealedSegment",
    "KIND_CODES",
    "KIND_NAMES",
    "EDGE_CODES",
    "EDGE_NAMES",
    "CACHED_FROM",
]

#: node kind -> code (order is load-bearing for payload compatibility)
KIND_CODES: dict[str, int] = {"artifact": 0, "process": 1, "agent": 2}
KIND_NAMES: dict[int, str] = {v: k for k, v in KIND_CODES.items()}

#: the store-level edge vocabulary: OPM's five kinds plus the
#: materialized cache-replay edge
CACHED_FROM = "wasCachedFrom"
EDGE_NAMES: tuple[str, ...] = (
    "used", "wasGeneratedBy", "wasControlledBy", "wasTriggeredBy",
    "wasDerivedFrom", CACHED_FROM,
)
EDGE_CODES: dict[str, int] = {n: c for c, n in enumerate(EDGE_NAMES)}

#: edge kind codes queries follow by default — OPM causal kinds only;
#: wasCachedFrom must be asked for explicitly
OPM_EDGE_CODES: tuple[int, ...] = tuple(range(5))

#: typecode of every sid vector: int32 halves resident bytes vs "q",
#: and 2**31 interned strings is far beyond an in-process dictionary
SID = "i"


class CSRIndex:
    """Key -> values adjacency as three flat int vectors.

    ``keys`` is sorted and unique; ``offsets[i]:offsets[i+1]`` slices
    ``values`` for ``keys[i]``.  Built once at seal time from (key,
    value) pairs; lookups are O(log k) bisect + O(degree) slice.
    """

    __slots__ = ("_keys", "_offsets", "_values")

    def __init__(self, keys: array, offsets: array, values: array) -> None:
        self._keys = keys
        self._offsets = offsets
        self._values = values

    @classmethod
    def build(cls, pairs: list[tuple[int, int]]) -> "CSRIndex":
        pairs.sort()
        keys = array(SID)
        offsets = array(SID, [0])
        values = array(SID)
        previous: int | None = None
        for key, value in pairs:
            if key != previous:
                if previous is not None:
                    offsets.append(len(values))
                keys.append(key)
                previous = key
            values.append(value)
        if previous is not None:
            offsets.append(len(values))
        return cls(keys, offsets, values)

    def neighbors(self, key: int) -> array:
        """The values of ``key`` (empty array when absent)."""
        position = bisect_left(self._keys, key)
        if position == len(self._keys) or self._keys[position] != key:
            return array(SID)
        return self._values[self._offsets[position]:
                            self._offsets[position + 1]]

    def __contains__(self, key: int) -> bool:
        position = bisect_left(self._keys, key)
        return (position < len(self._keys)
                and self._keys[position] == key)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def nbytes(self) -> int:
        return (self._keys.itemsize * len(self._keys)
                + self._offsets.itemsize * len(self._offsets)
                + self._values.itemsize * len(self._values))


def _lift_cached_from(graph: OPMGraph) -> Iterator[tuple[str, str]]:
    """(effect process id, cause process id) pairs for every cache
    replay recorded as a ``wasCachedFrom`` annotation."""
    for node in graph.nodes("process"):
        target = node.annotations.get(CACHED_FROM)
        if isinstance(target, str) and target and target != node.id:
            yield node.id, target


class SegmentBuilder:
    """The store's active tail: mutable columns + dict adjacency."""

    sealed = False

    def __init__(self, segment_id: str, pool: StringPool) -> None:
        self.segment_id = segment_id
        self.pool = pool
        self.pool_base = len(pool)
        self.run_sids: list[int] = []
        # node columns
        self.node_sids: list[int] = []
        self.node_kinds: list[int] = []
        self.node_labels: list[int] = []
        self.node_runs: list[int] = []
        # edge columns
        self.edge_kinds: list[int] = []
        self.edge_effects: list[int] = []
        self.edge_causes: list[int] = []
        self.edge_roles: list[int] = []
        # live adjacency: (edge code, sid) -> neighbor sids
        self._forward: dict[tuple[int, int], list[int]] = {}
        self._backward: dict[tuple[int, int], list[int]] = {}
        self._node_runs: dict[int, list[int]] = {}
        self._run_nodes: dict[int, list[int]] = {}

    # -- ingest --------------------------------------------------------

    def add_graph(self, run_id: str, graph: OPMGraph) -> tuple[int, int]:
        """Intern and append one run's graph; returns (nodes, edges)
        appended (cache-replay edges count)."""
        run_sid = self.pool.intern(run_id)
        self.run_sids.append(run_sid)
        self._run_nodes.setdefault(run_sid, [])
        nodes = edges = 0
        for node in graph.nodes():
            sid = self.pool.intern(node.id)
            self.node_sids.append(sid)
            self.node_kinds.append(KIND_CODES[node.kind])
            self.node_labels.append(self.pool.intern(node.label))
            self.node_runs.append(run_sid)
            self._node_runs.setdefault(sid, []).append(run_sid)
            self._run_nodes[run_sid].append(sid)
            nodes += 1
        for edge in graph.edges():
            self._append_edge(EDGE_CODES[edge.kind],
                              self.pool.intern(edge.effect),
                              self.pool.intern(edge.cause),
                              self.pool.intern(edge.role))
            edges += 1
        for effect_id, cause_id in _lift_cached_from(graph):
            self._append_edge(EDGE_CODES[CACHED_FROM],
                              self.pool.intern(effect_id),
                              self.pool.intern(cause_id),
                              self.pool.intern("cache-replay"))
            edges += 1
        return nodes, edges

    def _append_edge(self, code: int, effect: int, cause: int,
                     role: int) -> None:
        self.edge_kinds.append(code)
        self.edge_effects.append(effect)
        self.edge_causes.append(cause)
        self.edge_roles.append(role)
        self._forward.setdefault((code, effect), []).append(cause)
        self._backward.setdefault((code, cause), []).append(effect)

    # -- query surface (shared with SealedSegment) ---------------------

    def neighbors(self, code: int, sid: int, *,
                  forward: bool = True) -> list[int]:
        table = self._forward if forward else self._backward
        return table.get((code, sid), [])

    def runs_of(self, sid: int) -> list[int]:
        return self._node_runs.get(sid, [])

    def nodes_of_run(self, run_sid: int) -> list[int]:
        return self._run_nodes.get(run_sid, [])

    def has_node(self, sid: int) -> bool:
        return sid in self._node_runs

    @property
    def n_runs(self) -> int:
        return len(self.run_sids)

    @property
    def n_nodes(self) -> int:
        return len(self.node_sids)

    @property
    def n_edges(self) -> int:
        return len(self.edge_kinds)

    # -- sealing -------------------------------------------------------

    def seal(self) -> "SealedSegment":
        if not self.run_sids:
            raise ProvenanceError(
                f"segment {self.segment_id!r} has no runs to seal")
        return SealedSegment(
            self.segment_id,
            array(SID, self.run_sids),
            array(SID, self.node_sids),
            array("b", self.node_kinds),
            array(SID, self.node_labels),
            array(SID, self.node_runs),
            array("b", self.edge_kinds),
            array(SID, self.edge_effects),
            array(SID, self.edge_causes),
            array(SID, self.edge_roles),
            pool_base=self.pool_base,
        )


class SealedSegment:
    """An immutable columnar segment with CSR adjacency."""

    sealed = True

    def __init__(self, segment_id: str, run_sids: array,
                 node_sids: array, node_kinds: array,
                 node_labels: array, node_runs: array,
                 edge_kinds: array, edge_effects: array,
                 edge_causes: array, edge_roles: array,
                 pool_base: int = 0) -> None:
        self.segment_id = segment_id
        self.run_sids = run_sids
        self.node_sids = node_sids
        self.node_kinds = node_kinds
        self.node_labels = node_labels
        self.node_runs = node_runs
        self.edge_kinds = edge_kinds
        self.edge_effects = edge_effects
        self.edge_causes = edge_causes
        self.edge_roles = edge_roles
        self.pool_base = pool_base
        self._forward, self._backward = self._build_adjacency()
        self._node_runs_index = CSRIndex.build(
            list(zip(node_sids, node_runs)))
        self._run_nodes_index = CSRIndex.build(
            list(zip(node_runs, node_sids)))

    def _build_adjacency(self) -> tuple[dict[int, CSRIndex],
                                        dict[int, CSRIndex]]:
        forward_pairs: dict[int, list[tuple[int, int]]] = {}
        backward_pairs: dict[int, list[tuple[int, int]]] = {}
        for code, effect, cause in zip(self.edge_kinds,
                                       self.edge_effects,
                                       self.edge_causes):
            forward_pairs.setdefault(code, []).append((effect, cause))
            backward_pairs.setdefault(code, []).append((cause, effect))
        return (
            {code: CSRIndex.build(pairs)
             for code, pairs in forward_pairs.items()},
            {code: CSRIndex.build(pairs)
             for code, pairs in backward_pairs.items()},
        )

    def __repr__(self) -> str:
        return (f"SealedSegment({self.segment_id}, {self.n_runs} runs, "
                f"{self.n_nodes} nodes, {self.n_edges} edges)")

    # -- query surface -------------------------------------------------

    def neighbors(self, code: int, sid: int, *,
                  forward: bool = True) -> array:
        table = self._forward if forward else self._backward
        index = table.get(code)
        if index is None:
            return array(SID)
        return index.neighbors(sid)

    def runs_of(self, sid: int) -> array:
        return self._node_runs_index.neighbors(sid)

    def nodes_of_run(self, run_sid: int) -> array:
        return self._run_nodes_index.neighbors(run_sid)

    def has_node(self, sid: int) -> bool:
        return sid in self._node_runs_index

    @property
    def n_runs(self) -> int:
        return len(self.run_sids)

    @property
    def n_nodes(self) -> int:
        return len(self.node_sids)

    @property
    def n_edges(self) -> int:
        return len(self.edge_kinds)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the columns + indexes."""
        columns = sum(
            vector.itemsize * len(vector)
            for vector in (self.run_sids, self.node_sids,
                           self.node_kinds, self.node_labels,
                           self.node_runs, self.edge_kinds,
                           self.edge_effects, self.edge_causes,
                           self.edge_roles)
        )
        indexes = sum(index.nbytes
                      for table in (self._forward, self._backward)
                      for index in table.values())
        indexes += (self._node_runs_index.nbytes
                    + self._run_nodes_index.nbytes)
        return columns + indexes

    # -- persistence ---------------------------------------------------

    def to_payload(self, pool: StringPool) -> dict[str, Any]:
        """The JSON-serializable persisted form.  ``pool_delta`` is the
        slice of the pool this segment introduced; replaying segments
        in seal order rebuilds the full dictionary."""
        return {
            "format": 1,
            "segment_id": self.segment_id,
            "pool_base": self.pool_base,
            "pool_delta": pool.slice_from(self.pool_base),
            "runs": list(self.run_sids),
            "node_sids": list(self.node_sids),
            "node_kinds": list(self.node_kinds),
            "node_labels": list(self.node_labels),
            "node_runs": list(self.node_runs),
            "edge_kinds": list(self.edge_kinds),
            "edge_effects": list(self.edge_effects),
            "edge_causes": list(self.edge_causes),
            "edge_roles": list(self.edge_roles),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any],
                     pool: StringPool) -> "SealedSegment":
        """Rebuild a segment, extending ``pool`` with the persisted
        delta.  Payloads must be replayed in seal order."""
        if payload.get("format") != 1:
            raise ProvenanceError(
                f"unknown segment payload format "
                f"{payload.get('format')!r}")
        pool_base = int(payload["pool_base"])
        if pool_base != len(pool):
            raise ProvenanceError(
                f"segment {payload.get('segment_id')!r} expects pool "
                f"base {pool_base} but pool has {len(pool)} entries "
                "(segments replayed out of order?)")
        pool.extend(payload["pool_delta"])
        return cls(
            str(payload["segment_id"]),
            array(SID, payload["runs"]),
            array(SID, payload["node_sids"]),
            array("b", payload["node_kinds"]),
            array(SID, payload["node_labels"]),
            array(SID, payload["node_runs"]),
            array("b", payload["edge_kinds"]),
            array(SID, payload["edge_effects"]),
            array(SID, payload["edge_causes"]),
            array(SID, payload["edge_roles"]),
            pool_base=pool_base,
        )
