"""Archival provenance store: interned columnar segments + bounded
lineage queries.

Per-run OPM object graphs do not survive archival scale — a million
runs of Python dicts and node objects exhaust memory long before they
exhaust usefulness.  This package keeps the *cross-run skeleton* of
the provenance record in a form sized for decades of appends:

* :mod:`~repro.provenance.store.interning` — every id dictionary-
  encoded to a dense int, paid for once;
* :mod:`~repro.provenance.store.columnar` — immutable sealed segments
  of flat int columns with CSR forward/backward adjacency per OPM
  edge kind, plus the mutable active tail;
* :mod:`~repro.provenance.store.queries` — iterative frontier
  traversals under explicit node/depth budgets;
* :mod:`~repro.provenance.store.store` — the
  :class:`~repro.provenance.store.store.ProvenanceStore` facade wiring
  segments to the storage engine (segment rows + a counts manifest)
  and exposing ``ancestors`` / ``descendants`` / ``cached_from_chain``
  / ``runs_for_artifact`` / ``derived_objects``.
"""

from repro.provenance.store.columnar import (
    CACHED_FROM,
    CSRIndex,
    EDGE_CODES,
    EDGE_NAMES,
    KIND_CODES,
    SealedSegment,
    SegmentBuilder,
)
from repro.provenance.store.interning import StringPool
from repro.provenance.store.queries import (
    LineageResult,
    TraversalBudget,
)
from repro.provenance.store.store import (
    DEFAULT_RUNS_PER_SEGMENT,
    ProvenanceStore,
)

__all__ = [
    "CACHED_FROM",
    "CSRIndex",
    "DEFAULT_RUNS_PER_SEGMENT",
    "EDGE_CODES",
    "EDGE_NAMES",
    "KIND_CODES",
    "LineageResult",
    "ProvenanceStore",
    "SealedSegment",
    "SegmentBuilder",
    "StringPool",
    "TraversalBudget",
]
