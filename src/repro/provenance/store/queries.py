"""Bounded-memory lineage traversals over store segments.

Archival lineage queries cannot assume the answer fits in memory: the
transitive closure of a heavily-shared artifact in a million-run store
can touch most of the graph.  Every traversal here is an *iterative
frontier walk* (no recursion, no materialized subgraphs) carrying an
explicit :class:`TraversalBudget`:

* ``max_nodes`` caps the visited set — the only structure whose size
  grows with the answer;
* ``max_depth`` caps the frontier distance from the start node.

When a budget trips, the walk stops and the :class:`LineageResult`
says so (``truncated=True``) instead of silently returning a wrong
"complete" answer.  Segment boundaries are invisible to the caller:
each frontier expansion unions the adjacency of every sealed segment
plus the active tail, which is what makes *cross-run* lineage (cache
replay chains, vault objects re-audited over the years) a single walk.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.errors import ProvenanceError
from repro.provenance.store.columnar import (
    CACHED_FROM,
    EDGE_CODES,
    OPM_EDGE_CODES,
)

__all__ = ["TraversalBudget", "LineageResult", "frontier_walk",
           "resolve_edge_codes"]

#: ceilings applied when the caller does not pass a budget — generous,
#: but finite: an archival store must never hand out an unbounded walk
DEFAULT_MAX_NODES = 100_000


class TraversalBudget:
    """Explicit bounds for one lineage traversal."""

    __slots__ = ("max_nodes", "max_depth")

    def __init__(self, max_nodes: int = DEFAULT_MAX_NODES,
                 max_depth: int | None = None) -> None:
        if max_nodes < 1:
            raise ProvenanceError("max_nodes must be >= 1")
        if max_depth is not None and max_depth < 0:
            raise ProvenanceError("max_depth must be >= 0")
        self.max_nodes = max_nodes
        self.max_depth = max_depth

    def __repr__(self) -> str:
        return (f"TraversalBudget(max_nodes={self.max_nodes}, "
                f"max_depth={self.max_depth})")


class LineageResult:
    """The outcome of one bounded traversal.

    ``node_ids`` excludes the start node (mirroring
    :func:`repro.provenance.graph.ancestors`).  ``truncated`` means a
    budget stopped the walk before the frontier drained; ``visited``
    counts nodes actually expanded, ``depth_reached`` the deepest
    frontier level entered.
    """

    __slots__ = ("start", "direction", "node_ids", "truncated",
                 "visited", "depth_reached")

    def __init__(self, start: str, direction: str,
                 node_ids: list[str], truncated: bool,
                 visited: int, depth_reached: int) -> None:
        self.start = start
        self.direction = direction
        self.node_ids = node_ids
        self.truncated = truncated
        self.visited = visited
        self.depth_reached = depth_reached

    def __repr__(self) -> str:
        flag = ", truncated" if self.truncated else ""
        return (f"LineageResult({self.direction}({self.start}): "
                f"{len(self.node_ids)} nodes{flag})")

    def __len__(self) -> int:
        return len(self.node_ids)

    def __iter__(self):
        return iter(self.node_ids)

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "direction": self.direction,
            "nodes": list(self.node_ids),
            "truncated": self.truncated,
            "visited": self.visited,
            "depth_reached": self.depth_reached,
        }


def resolve_edge_codes(kinds: Iterable[str] | None) -> tuple[int, ...]:
    """Edge kind names -> codes.  ``None`` means the five OPM causal
    kinds; ``wasCachedFrom`` is followed only when named explicitly."""
    if kinds is None:
        return OPM_EDGE_CODES
    codes = []
    for kind in kinds:
        code = EDGE_CODES.get(kind)
        if code is None:
            raise ProvenanceError(
                f"unknown edge kind {kind!r}; expected one of "
                + ", ".join(sorted(EDGE_CODES)))
        codes.append(code)
    return tuple(codes)


def frontier_walk(segments: Sequence, start_sids: Sequence[int], *,
                  codes: tuple[int, ...],
                  forward: bool,
                  budget: TraversalBudget) -> tuple[set[int], bool,
                                                    int, int]:
    """Breadth-first walk from ``start_sids`` across ``segments``.

    ``forward=True`` follows edges effect -> cause (ancestors in OPM's
    arrow convention); ``forward=False`` walks cause -> effect
    (descendants).  Returns ``(seen sids, truncated, visited,
    depth_reached)``; ``seen`` excludes the start nodes.

    Memory is bounded by ``budget.max_nodes``: the visited set and the
    frontier are the only growing structures and neither admits a node
    beyond the cap.
    """
    starts = set(start_sids)
    seen: set[int] = set()
    frontier: deque[tuple[int, int]] = deque(
        (sid, 0) for sid in start_sids)
    truncated = False
    visited = 0
    depth_reached = 0
    while frontier:
        current, depth = frontier.popleft()
        if budget.max_depth is not None and depth >= budget.max_depth:
            # neighbors of this node would exceed the depth bound; if
            # it has any unseen ones, the answer is incomplete
            if _has_unseen_neighbor(segments, current, codes, forward,
                                    seen, starts):
                truncated = True
            continue
        visited += 1
        depth_reached = max(depth_reached, depth)
        for code in codes:
            for segment in segments:
                for neighbor in segment.neighbors(code, current,
                                                  forward=forward):
                    if neighbor in seen or neighbor in starts:
                        continue
                    if len(seen) >= budget.max_nodes:
                        truncated = True
                        return seen, truncated, visited, depth_reached
                    seen.add(neighbor)
                    frontier.append((neighbor, depth + 1))
    return seen, truncated, visited, depth_reached


def _has_unseen_neighbor(segments: Sequence, sid: int,
                         codes: tuple[int, ...], forward: bool,
                         seen: set[int], starts: set[int]) -> bool:
    for code in codes:
        for segment in segments:
            for neighbor in segment.neighbors(code, sid,
                                              forward=forward):
                if neighbor not in seen and neighbor not in starts:
                    return True
    return False


def cached_chain(segments: Sequence, start_sid: int, *,
                 budget: TraversalBudget) -> tuple[list[int], bool]:
    """Follow ``wasCachedFrom`` links from a process to the execution
    that originally produced its outputs.

    Returns (chain of sids starting at ``start_sid``, truncated).  A
    process has at most one replay source; duplicate edges (the same
    run re-ingested is impossible, but a corrupted segment is not) and
    cycles terminate the walk with ``truncated=True``.
    """
    code = EDGE_CODES[CACHED_FROM]
    chain = [start_sid]
    on_chain = {start_sid}
    truncated = False
    while True:
        if len(chain) > budget.max_nodes:
            return chain, True
        current = chain[-1]
        targets: list[int] = []
        for segment in segments:
            targets.extend(segment.neighbors(code, current,
                                             forward=True))
        if not targets:
            return chain, truncated
        target = targets[0]
        if target in on_chain:
            # a replay loop can only come from damage; report it
            return chain, True
        chain.append(target)
        on_chain.add(target)
