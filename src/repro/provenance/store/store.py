"""The archival provenance store.

:class:`ProvenanceStore` replaces "keep a million OPM object graphs in
memory" with a compact, queryable archive:

* every string interned once (:mod:`~repro.provenance.store.interning`),
* graphs appended to an **active tail** segment and periodically
  **sealed** into immutable columnar segments with CSR adjacency
  (:mod:`~repro.provenance.store.columnar`),
* sealed segments persisted through the existing storage engine — one
  row per segment in ``provstore_segments``, counts in the
  ``provstore_manifest`` table so "how many runs are archived" never
  requires a scan,
* lineage answered by bounded frontier walks
  (:mod:`~repro.provenance.store.queries`).

The store is an *index*, not the system of record: the
:class:`~repro.provenance.repository.ProvenanceRepository` keeps the
full per-run graphs (labels, values, annotations), and the store keeps
the cross-run skeleton (ids + typed edges) that lineage queries touch.
Losing the store therefore loses nothing — it is rebuilt from the
repository's rows, which is exactly what the attach path does for runs
that never made it into a sealed segment.
"""

from __future__ import annotations

import json
from array import array
from typing import Any, Iterable, Iterator

from repro.errors import ProvenanceError
from repro.provenance.opm import OPMGraph
from repro.provenance.store.columnar import (
    KIND_CODES,
    KIND_NAMES,
    SealedSegment,
    SegmentBuilder,
)
from repro.provenance.store.interning import StringPool
from repro.provenance.store.queries import (
    LineageResult,
    TraversalBudget,
    cached_chain,
    frontier_walk,
    resolve_edge_codes,
)
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct

__all__ = ["ProvenanceStore", "DEFAULT_RUNS_PER_SEGMENT"]

#: runs accumulated in the active tail before it is sealed
DEFAULT_RUNS_PER_SEGMENT = 256

_SEGMENTS = "provstore_segments"
_MANIFEST = "provstore_manifest"

_ARTIFACT = KIND_CODES["artifact"]
_VAULT_PREFIX = "cas:"


class ProvenanceStore:
    """Interned, columnar, segment-persisted provenance archive.

    Parameters
    ----------
    database:
        Storage engine holding the segment and manifest tables; a
        fresh in-memory database when omitted.  Pre-existing sealed
        segments are loaded (in seal order) on attach.
    runs_per_segment:
        Tail size that triggers an automatic :meth:`seal`.
    telemetry:
        Metrics sink; the process-wide default when omitted.
    """

    def __init__(self, database: Database | None = None,
                 runs_per_segment: int = DEFAULT_RUNS_PER_SEGMENT,
                 telemetry: Any | None = None) -> None:
        if runs_per_segment < 1:
            raise ProvenanceError("runs_per_segment must be >= 1")
        self.database = database or Database("provenance_store")
        self.runs_per_segment = runs_per_segment
        if telemetry is None:
            from repro.telemetry import get_telemetry
            telemetry = get_telemetry()
        self.telemetry = telemetry
        self.pool = StringPool()
        self.segments: list[SealedSegment] = []
        #: node kind per sid (-1 = the sid is not a node id)
        self._kinds = array("b")
        self._run_sids: set[int] = set()
        self._runs_sealed = 0
        self._nodes_total = 0
        self._edges_total = 0
        self._ensure_tables()
        self._load_segments()
        self.tail = SegmentBuilder(self._next_segment_id(), self.pool)
        self._write_manifest()

    # ------------------------------------------------------------------
    # persistence plumbing
    # ------------------------------------------------------------------

    def _ensure_tables(self) -> None:
        if not self.database.has_table(_SEGMENTS):
            self.database.create_table(TableSchema(_SEGMENTS, [
                Column("seq", ct.INTEGER),
                Column("segment_id", ct.TEXT, nullable=False),
                Column("runs", ct.INTEGER, nullable=False),
                Column("nodes", ct.INTEGER, nullable=False),
                Column("edges", ct.INTEGER, nullable=False),
                Column("payload", ct.JSON, nullable=False),
            ], primary_key="seq"))
        if not self.database.has_table(_MANIFEST):
            self.database.create_table(TableSchema(_MANIFEST, [
                Column("key", ct.TEXT),
                Column("value", ct.INTEGER, nullable=False),
            ], primary_key="key"))

    def _load_segments(self) -> None:
        rows = self.database.query(_SEGMENTS).order_by("seq").all()
        for row in rows:
            payload = row["payload"]
            if isinstance(payload, str):  # compact text persistence
                payload = json.loads(payload)
            segment = SealedSegment.from_payload(payload, self.pool)
            self._index_segment(segment)
            self.segments.append(segment)
            self._runs_sealed += segment.n_runs
            self._nodes_total += segment.n_nodes
            self._edges_total += segment.n_edges

    def _index_segment(self, segment: SealedSegment) -> None:
        self._grow_kinds()
        for sid, kind in zip(segment.node_sids, segment.node_kinds):
            self._kinds[sid] = kind
        self._run_sids.update(segment.run_sids)

    def _grow_kinds(self) -> None:
        missing = len(self.pool) - len(self._kinds)
        if missing > 0:
            self._kinds.extend(array("b", [-1]) * missing)

    def _next_segment_id(self) -> str:
        return f"seg-{len(self.segments) + 1:05d}"

    def _manifest_set(self, key: str, value: int) -> None:
        existing = self.database.query(_MANIFEST).where(
            col("key") == key).first()
        if existing is None:
            self.database.insert(_MANIFEST, {"key": key,
                                             "value": int(value)})
        elif existing["value"] != int(value):
            rowid = self.database.rowid_for(_MANIFEST, key)
            self.database.update(_MANIFEST, rowid,
                                 {"key": key, "value": int(value)})

    def _write_manifest(self) -> None:
        counts = {
            "runs_total": len(self._run_sids),
            "runs_sealed": self._runs_sealed,
            "runs_tail": self.tail.n_runs if hasattr(self, "tail") else 0,
            "segments_sealed": len(self.segments),
            "nodes_total": self._nodes_total,
            "edges_total": self._edges_total,
            "pool_size": len(self.pool),
        }
        for key, value in counts.items():
            self._manifest_set(key, value)
        metrics = self.telemetry.metrics
        metrics.gauge("provstore_pool_strings").set(len(self.pool))
        metrics.gauge("provstore_tail_runs").set(counts["runs_tail"])
        metrics.gauge("provstore_sealed_segments").set(
            counts["segments_sealed"])

    def manifest_counts(self) -> dict[str, int]:
        """The persisted counters — the O(1) answer to "how big is the
        archive" that replaces scanning the runs table."""
        return {row["key"]: row["value"]
                for row in self.database.query(_MANIFEST).all()}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def has_run(self, run_id: str) -> bool:
        sid = self.pool.get(run_id)
        return sid is not None and sid in self._run_sids

    def run_count(self) -> int:
        return len(self._run_sids)

    def ingest_graph(self, run_id: str, graph: OPMGraph) -> bool:
        """Append one run's graph to the active tail.

        Returns ``False`` (and counts a skip) when the run is already
        archived: segments are append-only, so a re-captured run keeps
        its first archived skeleton — the repository row still carries
        the latest full graph.
        """
        metrics = self.telemetry.metrics
        if self.has_run(run_id):
            metrics.counter("provstore_reingest_skipped_total").inc()
            return False
        nodes, edges = self.tail.add_graph(run_id, graph)
        self._grow_kinds()
        for node in graph.nodes():
            sid = self.pool.get(node.id)
            if sid is not None:
                self._kinds[sid] = KIND_CODES[node.kind]
        self._run_sids.add(self.pool.intern(run_id))
        self._nodes_total += nodes
        self._edges_total += edges
        metrics.counter("provstore_runs_ingested_total").inc()
        metrics.counter("provstore_nodes_ingested_total").inc(nodes)
        metrics.counter("provstore_edges_ingested_total").inc(edges)
        if self.tail.n_runs >= self.runs_per_segment:
            self.seal()
        else:
            self._write_manifest()
        return True

    def ingest_repository_rows(self, rows: Iterable[tuple[str, OPMGraph]]
                               ) -> int:
        """Bulk (re-)ingest ``(run_id, graph)`` pairs — the rebuild
        path for runs persisted in the repository but absent here
        (e.g. tail runs lost with the process)."""
        ingested = 0
        for run_id, graph in rows:
            if self.ingest_graph(run_id, graph):
                ingested += 1
        return ingested

    def seal(self) -> str | None:
        """Seal the active tail into an immutable persisted segment.
        Returns the new segment id, or ``None`` for an empty tail."""
        if self.tail.n_runs == 0:
            return None
        segment = self.tail.seal()
        # persisted as one compact JSON string: a text blob is ~8x
        # lighter in-process than the equivalent dict of int lists
        payload = json.dumps(segment.to_payload(self.pool),
                             separators=(",", ":"))
        self.database.insert(_SEGMENTS, {
            "seq": len(self.segments) + 1,
            "segment_id": segment.segment_id,
            "runs": segment.n_runs,
            "nodes": segment.n_nodes,
            "edges": segment.n_edges,
            "payload": payload,
        })
        self.segments.append(segment)
        self._runs_sealed += segment.n_runs
        self.tail = SegmentBuilder(self._next_segment_id(), self.pool)
        self.telemetry.metrics.counter(
            "provstore_segments_sealed_total").inc()
        self._write_manifest()
        return segment.segment_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _query_segments(self) -> list:
        segments: list = list(self.segments)
        if self.tail.n_runs:
            segments.append(self.tail)
        return segments

    def _count_query(self, kind: str) -> None:
        self.telemetry.metrics.counter("provstore_queries_total",
                                       kind=kind).inc()

    def _lineage(self, node_id: str, *, forward: bool, direction: str,
                 kinds: Iterable[str] | None,
                 budget: TraversalBudget | None) -> LineageResult:
        self._count_query(direction)
        budget = budget or TraversalBudget()
        sid = self.pool.get(node_id)
        if sid is None or sid >= len(self._kinds) \
                or self._kinds[sid] < 0:
            return LineageResult(node_id, direction, [], False, 0, 0)
        seen, truncated, visited, depth = frontier_walk(
            self._query_segments(), (sid,),
            codes=resolve_edge_codes(kinds),
            forward=forward, budget=budget)
        if truncated:
            self.telemetry.metrics.counter(
                "provstore_truncations_total").inc()
        return LineageResult(
            node_id, direction,
            sorted(self.pool.lookup(s) for s in seen),
            truncated, visited, depth)

    def ancestors(self, node_id: str,
                  kinds: Iterable[str] | None = None,
                  budget: TraversalBudget | None = None
                  ) -> LineageResult:
        """Everything that (transitively) caused ``node_id``, walking
        effect -> cause within the budget."""
        return self._lineage(node_id, forward=True,
                             direction="ancestors", kinds=kinds,
                             budget=budget)

    def descendants(self, node_id: str,
                    kinds: Iterable[str] | None = None,
                    budget: TraversalBudget | None = None
                    ) -> LineageResult:
        """Everything (transitively) caused *by* ``node_id``."""
        return self._lineage(node_id, forward=False,
                             direction="descendants", kinds=kinds,
                             budget=budget)

    def cached_from_chain(self, process_id: str,
                          budget: TraversalBudget | None = None
                          ) -> dict[str, Any]:
        """Resolve a cache-replay chain to the execution that really
        produced the outputs.

        Returns ``{"chain": [process ids, replay first], "origin":
        the process that actually executed, "truncated": bool}``; a
        process that was never replayed yields a single-element chain.
        """
        self._count_query("cached_chain")
        budget = budget or TraversalBudget()
        sid = self.pool.get(process_id)
        if sid is None:
            return {"chain": [process_id], "origin": process_id,
                    "truncated": False}
        chain, truncated = cached_chain(self._query_segments(), sid,
                                        budget=budget)
        if truncated:
            self.telemetry.metrics.counter(
                "provstore_truncations_total").inc()
        ids = [self.pool.lookup(s) for s in chain]
        return {"chain": ids, "origin": ids[-1], "truncated": truncated}

    def runs_for_artifact(self, artifact_id: str) -> list[str]:
        """Every archived run whose graph mentions ``artifact_id`` —
        the backward index that replaces the O(n-runs) repository
        scan."""
        self._count_query("artifact_runs")
        sid = self.pool.get(artifact_id)
        if sid is None:
            return []
        run_sids: set[int] = set()
        for segment in self._query_segments():
            run_sids.update(segment.runs_of(sid))
        return sorted(self.pool.lookup(s) for s in run_sids)

    def derived_objects(self, run_id: str,
                        budget: TraversalBudget | None = None
                        ) -> dict[str, Any]:
        """Which preserved vault objects derive from run ``run_id``.

        Walks cause -> effect from every artifact the run touched and
        keeps reachable artifacts addressed in the vault's content
        namespace (``cas:`` digests) — including the run's own
        artifacts when they are vault objects themselves.
        """
        self._count_query("derived_objects")
        budget = budget or TraversalBudget()
        run_sid = self.pool.get(run_id)
        if run_sid is None or run_sid not in self._run_sids:
            raise ProvenanceError(f"run {run_id!r} is not archived")
        start_sids = sorted({
            sid
            for segment in self._query_segments()
            for sid in segment.nodes_of_run(run_sid)
            if self._kinds[sid] == _ARTIFACT
        })
        seen, truncated, __, __depth = frontier_walk(
            self._query_segments(), start_sids,
            codes=resolve_edge_codes(None), forward=False,
            budget=budget)
        if truncated:
            self.telemetry.metrics.counter(
                "provstore_truncations_total").inc()
        objects = sorted(
            self.pool.lookup(sid)
            for sid in set(start_sids) | seen
            if self._kinds[sid] == _ARTIFACT
            and self.pool.lookup(sid).startswith(_VAULT_PREFIX)
        )
        return {"run_id": run_id, "objects": objects,
                "truncated": truncated}

    def node_kind(self, node_id: str) -> str | None:
        """The OPM kind of ``node_id`` (``None`` when unknown)."""
        sid = self.pool.get(node_id)
        if sid is None or sid >= len(self._kinds):
            return None
        code = self._kinds[sid]
        return KIND_NAMES.get(code)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def run_ids(self) -> list[str]:
        return sorted(self.pool.lookup(sid) for sid in self._run_sids)

    def iter_segments(self) -> Iterator[Any]:
        """Sealed segments then the (possibly empty) active tail."""
        yield from self.segments
        yield self.tail

    def memory_bytes(self) -> int:
        """Approximate resident bytes of sealed columns + indexes
        (the tail's dict-based share is excluded — it is bounded by
        ``runs_per_segment``)."""
        return sum(segment.nbytes for segment in self.segments)

    def stats(self) -> dict[str, Any]:
        counts = self.manifest_counts()
        counts.update({
            "runs_per_segment": self.runs_per_segment,
            "sealed_bytes": self.memory_bytes(),
            "segments": [
                {"segment_id": segment.segment_id,
                 "sealed": segment.sealed,
                 "runs": segment.n_runs,
                 "nodes": segment.n_nodes,
                 "edges": segment.n_edges}
                for segment in self.iter_segments()
            ],
        })
        return counts

    def __len__(self) -> int:
        return len(self._run_sids)

    def __repr__(self) -> str:
        return (f"ProvenanceStore({len(self._run_sids)} runs, "
                f"{len(self.segments)} sealed segments, "
                f"{self.tail.n_runs} in tail)")
