"""String interning: dictionary-encoding ids to dense ints.

Every identifier the archival store touches — artifact ids, process
ids, agent ids, run ids, account names, edge roles — is interned once
into a :class:`StringPool` and referred to everywhere else by its dense
integer *sid*.  A million-run store repeats the same processor names,
agent ids and content digests over and over; paying for each string
once and shipping 8-byte ints through the columnar segments is the
single biggest memory lever the store has.

The pool is append-only (sids are stable forever, which is what lets
sealed segments stay immutable) and segment payloads persist it as
*deltas*: each sealed segment carries only the strings interned since
the previous seal, so reloading segments in order reconstructs the
exact pool.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ProvenanceError

__all__ = ["StringPool"]


class StringPool:
    """An append-only bidirectional string <-> dense-int dictionary."""

    __slots__ = ("_strings", "_sids")

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self._strings: list[str] = []
        self._sids: dict[str, int] = {}
        for text in strings:
            self.intern(text)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, text: str) -> bool:
        return text in self._sids

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)

    def __repr__(self) -> str:
        return f"StringPool({len(self._strings)} strings)"

    def intern(self, text: str) -> int:
        """The sid of ``text``, allocating one on first sight."""
        sid = self._sids.get(text)
        if sid is None:
            sid = len(self._strings)
            self._strings.append(text)
            self._sids[text] = sid
        return sid

    def get(self, text: str) -> int | None:
        """The sid of ``text`` if already interned, else ``None``
        (lookups must never grow the dictionary)."""
        return self._sids.get(text)

    def lookup(self, sid: int) -> str:
        """The string behind ``sid``."""
        try:
            return self._strings[sid]
        except IndexError:
            raise ProvenanceError(
                f"sid {sid} is not in the string pool "
                f"({len(self._strings)} entries)"
            ) from None

    def slice_from(self, start: int) -> list[str]:
        """The strings interned at or after sid ``start`` — the delta a
        sealed segment persists."""
        if start < 0 or start > len(self._strings):
            raise ProvenanceError(
                f"invalid pool delta start {start} "
                f"(pool has {len(self._strings)} entries)"
            )
        return self._strings[start:]

    def extend(self, strings: Iterable[str]) -> None:
        """Re-append a persisted delta (reload path).  Deltas must be
        replayed in seal order; an out-of-order replay shows up as a
        string that is already interned."""
        for text in strings:
            if text in self._sids:
                raise ProvenanceError(
                    f"pool delta replayed out of order: {text!r} is "
                    "already interned"
                )
            self.intern(text)
