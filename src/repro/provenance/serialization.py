"""OPM graph serialization (JSON).

The storage layout follows the OPM XML schema's structure — a node list
plus per-kind edge lists — but rendered as JSON for the repository.
"""

from __future__ import annotations

import json

from repro.errors import ProvenanceError
from repro.provenance.opm import OPMGraph

__all__ = ["graph_to_json", "graph_from_json"]


def graph_to_json(graph: OPMGraph, indent: int | None = None) -> str:
    """Serialize an OPM graph to a JSON document."""
    return json.dumps(graph.to_dict(), indent=indent, sort_keys=True,
                      default=_encode_value)


def _encode_value(value: object) -> object:
    # Artifact values can be arbitrary Python objects; fall back to repr
    # so serialization never fails (the value is informational).
    try:
        return {"__repr__": repr(value)}
    except Exception:  # pragma: no cover - repr() failing is pathological
        return {"__repr__": "<unrepresentable>"}


def graph_from_json(document: str) -> OPMGraph:
    """Parse a graph from :func:`graph_to_json` output."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise ProvenanceError(f"invalid OPM JSON: {exc}") from None
    return OPMGraph.from_dict(data)
