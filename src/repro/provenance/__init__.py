"""Provenance: OPM graphs, capture, storage.

The paper stores "provenance information from the data source, workflow
description and execution logs" using the Open Provenance Model (OPM)
exported by Taverna.  This package implements:

* the OPM v1.1 core model — artifacts, processes, agents and the five
  causal edge kinds (:mod:`repro.provenance.opm`),
* graph queries: lineage, derivation closure, source discovery
  (:mod:`repro.provenance.graph`),
* the **Provenance Manager** that listens to workflow runs and builds
  OPM graphs, merging workflow quality annotations
  (:mod:`repro.provenance.manager`),
* the **Data Provenance Repository** persisting graphs and traces on the
  storage engine (:mod:`repro.provenance.repository`),
* JSON serialization for OPM graphs
  (:mod:`repro.provenance.serialization`).
"""

from repro.provenance.graph import (
    ancestors,
    derivation_sources,
    descendants,
    lineage_subgraph,
    to_networkx,
)
from repro.provenance.manager import ProvenanceManager
from repro.provenance.opm import (
    Agent,
    Artifact,
    Edge,
    OPMGraph,
    Process,
)
from repro.provenance.repository import ProvenanceRepository
from repro.provenance.serialization import graph_from_json, graph_to_json
from repro.provenance.store import (
    LineageResult,
    ProvenanceStore,
    TraversalBudget,
)

__all__ = [
    "Agent",
    "Artifact",
    "Edge",
    "LineageResult",
    "OPMGraph",
    "Process",
    "ProvenanceManager",
    "ProvenanceRepository",
    "ProvenanceStore",
    "TraversalBudget",
    "ancestors",
    "derivation_sources",
    "descendants",
    "graph_from_json",
    "graph_to_json",
    "lineage_subgraph",
    "to_networkx",
]
