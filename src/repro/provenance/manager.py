"""The Provenance Manager (Fig. 1).

"During workflow processing, the Provenance Manager extracts provenance
information from data and workflows, storing such information in the Data
Provenance Repository."

The manager subscribes to a :class:`~repro.workflow.engine.WorkflowEngine`
and, for every finished run, maps the trace into an OPM graph:

* every distinct port value becomes an :class:`Artifact`;
* every processor invocation becomes a :class:`Process` carrying the
  processor's quality annotations (this is how the Workflow Adapter's
  ``Q(reputation)`` statements reach the quality layer);
* the engine's operator becomes the controlling :class:`Agent`;
* ``used`` / ``wasGeneratedBy`` edges follow the bindings,
  ``wasDerivedFrom`` closes outputs over inputs, and
  ``wasTriggeredBy`` follows the data links between processors.

The resulting graph plus the raw trace are persisted in the
:class:`~repro.provenance.repository.ProvenanceRepository`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.provenance.opm import OPMGraph
from repro.provenance.repository import ProvenanceRepository
from repro.workflow.engine import WorkflowEngine
from repro.workflow.model import Workflow
from repro.workflow.trace import WorkflowTrace

__all__ = ["ProvenanceManager"]


class ProvenanceManager:
    """Captures OPM provenance from workflow runs.

    Parameters
    ----------
    repository:
        Where graphs and traces are persisted.  A fresh in-memory
        repository is created when omitted.
    agent_id:
        The OPM agent controlling the runs (defaults to the generic
        engine operator).
    """

    def __init__(self, repository: ProvenanceRepository | None = None,
                 agent_id: str = "agent/workflow-engine") -> None:
        # `is not None`, not `or`: an *empty* repository is falsy
        # (it has __len__) but must still be used, not replaced.
        self.repository = (repository if repository is not None
                           else ProvenanceRepository())
        self.agent_id = agent_id
        self._workflows: dict[str, Workflow] = {}

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------

    def attach(self, engine: WorkflowEngine) -> None:
        """Subscribe to ``engine``; every finished run is captured."""
        engine.add_listener(self._on_event)

    def _on_event(self, event: str, payload: Mapping[str, Any]) -> None:
        if event == "run_started":
            self._workflows[payload["run_id"]] = payload["workflow"]
        elif event == "run_finished":
            trace: WorkflowTrace = payload["trace"]
            workflow = self._workflows.pop(trace.run_id, None)
            self.capture(trace, workflow)

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    def capture(self, trace: WorkflowTrace,
                workflow: Workflow | None = None) -> OPMGraph:
        """Map ``trace`` (+ its workflow's annotations) into an OPM graph
        and persist both."""
        graph = self.build_graph(trace, workflow)
        self.repository.store_run(trace, graph, workflow)
        return graph

    def build_graph(self, trace: WorkflowTrace,
                    workflow: Workflow | None = None) -> OPMGraph:
        """The trace -> OPM mapping, without persistence."""
        account = trace.run_id
        graph = OPMGraph(f"opm/{trace.run_id}")
        graph.add_agent(self.agent_id, label="workflow engine",
                        accounts=[account])

        # Artifacts: one per artifact id observed in the bindings.
        for binding in trace.bindings:
            graph.add_artifact(
                binding.artifact_id,
                label=f"{binding.processor}.{binding.port}",
                value=_safe_value(binding.value),
                accounts=[account],
            )

        # Processes: one per processor run, annotated with quality.
        for run in trace.processor_runs:
            annotations: dict[str, Any] = {
                "kind": run.kind,
                "status": run.status,
                "started": run.started.isoformat(),
                "finished": run.finished.isoformat(),
            }
            if getattr(run, "cached_from", None):
                # the engine replayed this invocation from its result
                # cache; the annotation names the execution that really
                # produced the outputs, so the graph never claims a
                # re-execution that did not happen
                annotations["wasCachedFrom"] = run.cached_from
            if workflow is not None and run.processor in workflow.processors:
                processor = workflow.processor(run.processor)
                quality = processor.quality
                if len(quality):
                    annotations["quality"] = dict(quality)
            process_id = f"{trace.run_id}/{run.processor}"
            graph.add_process(process_id, label=run.processor,
                              accounts=[account], annotations=annotations)
            graph.was_controlled_by(process_id, self.agent_id,
                                    role="operator")

        # Edges from bindings.
        outputs_by_processor: dict[str, list[str]] = {}
        inputs_by_processor: dict[str, list[str]] = {}
        generated_by: dict[str, str] = {}
        for binding in trace.bindings:
            if binding.processor == Workflow.IO:
                continue
            process_id = f"{trace.run_id}/{binding.processor}"
            if not graph.has_node(process_id):
                continue
            if binding.direction == "input":
                graph.used(process_id, binding.artifact_id, role=binding.port)
                inputs_by_processor.setdefault(
                    binding.processor, []
                ).append(binding.artifact_id)
            else:
                graph.was_generated_by(binding.artifact_id, process_id,
                                       role=binding.port)
                outputs_by_processor.setdefault(
                    binding.processor, []
                ).append(binding.artifact_id)
                generated_by[binding.artifact_id] = binding.processor

        # wasDerivedFrom: every output of a processor derives from each of
        # its inputs (the engine does not know finer-grained dependencies).
        for processor, output_ids in outputs_by_processor.items():
            for output_id in output_ids:
                for input_id in inputs_by_processor.get(processor, ()):
                    if input_id != output_id:
                        graph.was_derived_from(output_id, input_id)

        # wasTriggeredBy: processor B consuming an artifact generated by A.
        triggered: set[tuple[str, str]] = set()
        for processor, input_ids in inputs_by_processor.items():
            for input_id in input_ids:
                producer = generated_by.get(input_id)
                if producer and producer != processor:
                    pair = (processor, producer)
                    if pair not in triggered:
                        triggered.add(pair)
                        graph.was_triggered_by(
                            f"{trace.run_id}/{processor}",
                            f"{trace.run_id}/{producer}",
                        )
        return graph


def _safe_value(value: Any) -> Any:
    """Artifact values are stored only when they are small scalars; large
    or structured values are summarized to keep graphs light."""
    if value is None or isinstance(value, (bool, int, float)):
        return value
    if isinstance(value, str):
        return value if len(value) <= 200 else value[:197] + "..."
    if isinstance(value, (list, tuple, set)):
        return f"<{type(value).__name__} of {len(value)} items>"
    if isinstance(value, Mapping):
        return f"<mapping of {len(value)} entries>"
    return f"<{type(value).__name__}>"
