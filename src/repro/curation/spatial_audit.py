"""Stage 2 — spatial error detection.

"The second stage ... was geared towards using spatial analysis to check
errors.  Examples of errors found included misidentified species and
discovery of possible new species' behavior."

For every species with enough located records, the auditor runs the
robust spatial-outlier detector: a record far outside the species'
occurrence core is flagged as either a probable *misidentification* or a
possible *range extension* (new behaviour) — telling them apart is the
biologist's call, so flags carry both hypotheses and go to review.
"""

from __future__ import annotations

from typing import Any

from repro.curation.history import CurationHistory
from repro.geo.spatial import spatial_outliers
from repro.sounds.collection import SoundCollection

__all__ = ["SpatialFlag", "SpatialAuditReport", "SpatialAuditor"]


class SpatialFlag:
    """One flagged record."""

    __slots__ = ("record_id", "species", "distance_km", "threshold_km",
                 "latitude", "longitude")

    def __init__(self, record_id: int, species: str, distance_km: float,
                 threshold_km: float, latitude: float,
                 longitude: float) -> None:
        self.record_id = record_id
        self.species = species
        self.distance_km = distance_km
        self.threshold_km = threshold_km
        self.latitude = latitude
        self.longitude = longitude

    def __repr__(self) -> str:
        return (
            f"SpatialFlag(rec{self.record_id} {self.species!r} "
            f"{self.distance_km:.0f}km out)"
        )


class SpatialAuditReport:
    """Outcome of one stage-2 audit."""

    def __init__(self) -> None:
        self.species_audited = 0
        self.species_skipped = 0
        self.flags: list[SpatialFlag] = []

    def flagged_record_ids(self) -> set[int]:
        return {flag.record_id for flag in self.flags}

    def summary(self) -> dict[str, Any]:
        return {
            "species_audited": self.species_audited,
            "species_skipped_too_few_points": self.species_skipped,
            "records_flagged": len(self.flags),
        }

    def __repr__(self) -> str:
        return f"SpatialAuditReport({self.summary()})"


class SpatialAuditor:
    """Runs stage 2 against a collection (curated view when available)."""

    STEP = "stage2-spatial-audit"

    def __init__(self, collection: SoundCollection,
                 history: CurationHistory | None = None,
                 mad_multiplier: float = 6.0,
                 min_distance_km: float = 400.0,
                 min_points: int = 5) -> None:
        self.collection = collection
        self.history = history
        self.mad_multiplier = mad_multiplier
        self.min_distance_km = min_distance_km
        self.min_points = min_points

    def _located_records(self) -> dict[str, list[tuple[int, float, float]]]:
        """species -> [(record_id, lat, lon)] using the curated view."""
        by_species: dict[str, list[tuple[int, float, float]]] = {}
        source = (
            self.history.curated_records() if self.history is not None
            else self.collection.records()
        )
        for record in source:
            coordinates = record.coordinates
            if coordinates is None or record.species is None:
                continue
            by_species.setdefault(record.species, []).append(
                (record.record_id, coordinates[0], coordinates[1])
            )
        return by_species

    def run(self) -> SpatialAuditReport:
        report = SpatialAuditReport()
        for species, entries in sorted(self._located_records().items()):
            if len(entries) < self.min_points:
                report.species_skipped += 1
                continue
            report.species_audited += 1
            points = [(lat, lon) for __, lat, lon in entries]
            for outlier in spatial_outliers(
                points,
                mad_multiplier=self.mad_multiplier,
                min_distance_km=self.min_distance_km,
                min_points=self.min_points,
            ):
                record_id = entries[outlier.index][0]
                flag = SpatialFlag(
                    record_id, species, outlier.distance_km,
                    outlier.threshold_km, outlier.latitude,
                    outlier.longitude,
                )
                report.flags.append(flag)
                if self.history is not None:
                    self.history.propose(
                        record_id, "species", species, None, self.STEP,
                        note=(
                            f"occurrence {outlier.distance_km:.0f} km from "
                            f"the species core (threshold "
                            f"{outlier.threshold_km:.0f} km): probable "
                            "misidentification or new behaviour"
                        ),
                    )
        return report
