"""The curation-history log.

"This strategy is important in order to maintain the original collection
unchanged ... It also provides a historical log of metadata
modifications.  Before such names are persisted in the database, they
are flagged to be checked by biologists."

Every curation step records :class:`ProposedChange` rows in the
``curation_history`` table of the collection's own database.  Changes
start ``flagged``; human curators :meth:`~CurationHistory.approve` or
:meth:`~CurationHistory.reject` them.  The *curated view* of a record is
the original plus its approved changes — computed on read, never written
back over the original.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.errors import CurationError
from repro.sounds.collection import RECORDINGS, SoundCollection
from repro.sounds.record import SoundRecord
from repro.storage import Column, ForeignKey, TableSchema, col
from repro.storage import column_types as ct

__all__ = ["ProposedChange", "CurationHistory"]

HISTORY = "curation_history"

_STATUSES = ("flagged", "approved", "rejected")


class ProposedChange:
    """One proposed metadata modification."""

    __slots__ = ("change_id", "record_id", "field", "old_value",
                 "new_value", "step", "status", "curator", "note")

    def __init__(self, change_id: int, record_id: int, field: str,
                 old_value: Any, new_value: Any, step: str,
                 status: str = "flagged", curator: str = "",
                 note: str = "") -> None:
        self.change_id = change_id
        self.record_id = record_id
        self.field = field
        self.old_value = old_value
        self.new_value = new_value
        self.step = step
        self.status = status
        self.curator = curator
        self.note = note

    def __repr__(self) -> str:
        return (
            f"ProposedChange(#{self.change_id} rec{self.record_id} "
            f"{self.field}: {self.old_value!r} -> {self.new_value!r} "
            f"[{self.status}])"
        )

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "ProposedChange":
        return cls(
            row["change_id"], row["record_id"], row["field"],
            json.loads(row["old_value"]) if row["old_value"] else None,
            json.loads(row["new_value"]) if row["new_value"] else None,
            row["step"], row["status"], row.get("curator") or "",
            row.get("note") or "",
        )


class CurationHistory:
    """The log, bound to one collection's database."""

    def __init__(self, collection: SoundCollection) -> None:
        self.collection = collection
        self.database = collection.database
        if not self.database.has_table(HISTORY):
            self.database.create_table(TableSchema(HISTORY, [
                Column("change_id", ct.INTEGER),
                Column("record_id", ct.INTEGER, nullable=False),
                Column("field", ct.TEXT, nullable=False),
                Column("old_value", ct.TEXT),
                Column("new_value", ct.TEXT),
                Column("step", ct.TEXT, nullable=False),
                Column("status", ct.TEXT, nullable=False,
                       check=lambda v: v in _STATUSES),
                Column("curator", ct.TEXT, default=""),
                Column("note", ct.TEXT, default=""),
            ], primary_key="change_id",
                foreign_keys=[
                    ForeignKey("record_id", RECORDINGS, "record_id")
                ]))
            self.database.create_index(HISTORY, "record_id", "hash")
            self.database.create_index(HISTORY, "status", "hash")
        self._next_id = self.database.count(HISTORY) + 1

    def __len__(self) -> int:
        return self.database.count(HISTORY)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def propose(self, record_id: int, field: str, old_value: Any,
                new_value: Any, step: str, note: str = "",
                auto_approve: bool = False,
                curator: str = "") -> ProposedChange:
        """Log one proposed change (``flagged`` unless auto-approved —
        purely syntactic fixes may skip review)."""
        change_id = self._next_id
        self._next_id += 1
        status = "approved" if auto_approve else "flagged"
        self.database.insert(HISTORY, {
            "change_id": change_id,
            "record_id": record_id,
            "field": field,
            "old_value": json.dumps(old_value, default=str),
            "new_value": json.dumps(new_value, default=str),
            "step": step,
            "status": status,
            "curator": curator,
            "note": note,
        })
        return ProposedChange(change_id, record_id, field, old_value,
                              new_value, step, status, curator, note)

    def _set_status(self, change_id: int, status: str,
                    curator: str) -> None:
        rowid = self.database.rowid_for(HISTORY, change_id)
        row = self.database.get(HISTORY, change_id)
        if row["status"] != "flagged":
            raise CurationError(
                f"change {change_id} already {row['status']}"
            )
        self.database.update(HISTORY, rowid,
                             {"status": status, "curator": curator})

    def approve(self, change_id: int, curator: str = "biologist") -> None:
        self._set_status(change_id, "approved", curator)

    def reject(self, change_id: int, curator: str = "biologist") -> None:
        self._set_status(change_id, "rejected", curator)

    def approve_step(self, step: str, curator: str = "biologist") -> int:
        """Bulk-approve every flagged change of one step; returns count."""
        count = 0
        for change in self.pending(step=step):
            self.approve(change.change_id, curator)
            count += 1
        return count

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def changes(self, record_id: int | None = None,
                step: str | None = None,
                status: str | None = None) -> Iterator[ProposedChange]:
        query = self.database.query(HISTORY)
        if record_id is not None:
            query = query.where(col("record_id") == record_id)
        if step is not None:
            query = query.where(col("step") == step)
        if status is not None:
            query = query.where(col("status") == status)
        for row in query.order_by("change_id").all():
            yield ProposedChange.from_row(row)

    def pending(self, step: str | None = None) -> list[ProposedChange]:
        return list(self.changes(step=step, status="flagged"))

    def history_for(self, record_id: int) -> list[ProposedChange]:
        return list(self.changes(record_id=record_id))

    # ------------------------------------------------------------------
    # curated view
    # ------------------------------------------------------------------

    def curated_record(self, record_id: int) -> SoundRecord:
        """The original record with every *approved* change applied.

        The original row in ``recordings`` is untouched; this view is
        recomputed from the log on every call.
        """
        record = self.collection.record(record_id)
        changes: dict[str, Any] = {}
        for change in self.changes(record_id=record_id, status="approved"):
            changes[change.field] = _coerce_back(record, change.field,
                                                 change.new_value)
        return record.replace(**changes) if changes else record

    def curated_records(self) -> Iterator[SoundRecord]:
        for record in self.collection.records():
            yield self.curated_record(record.record_id)

    def summary(self) -> dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for row in self.database.table(HISTORY).rows():
            counts[row["status"]] += 1
        counts["total"] = len(self)
        return counts


def _coerce_back(record: SoundRecord, field: str, value: Any) -> Any:
    """JSON round-trips lose dates; coerce back via the field spec."""
    from repro.sounds.fields import field_spec

    if value is None:
        return None
    spec = field_spec(field)
    try:
        return spec.type.coerce(value)
    except (ValueError, TypeError):
        return value
