"""The Outdated Species Name Detection Workflow (Fig. 3).

The five-step process of §IV-C, as an actual workflow on the engine:

1. experts add quality metadata to the workflow (via the
   :class:`~repro.core.adapter.WorkflowAdapter`);
2. the workflow receives the FNJV sound metadata as input;
3. it checks for outdated names using the Catalogue of Life external
   data source;
4. the Provenance Manager stores provenance from the data source,
   workflow description and execution logs;
5. the output is a summary of updated species names (Fig. 2).

Detected updates are persisted in a **separate table**
(``species_updates``) referencing the original record, flagged for
biologist review — the original collection is never touched.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.adapter import WorkflowAdapter
from repro.curation.history import CurationHistory
from repro.errors import InvalidNameError
from repro.provenance.manager import ProvenanceManager
from repro.sounds.collection import RECORDINGS, SoundCollection
from repro.storage import Column, ForeignKey, TableSchema, col
from repro.storage import column_types as ct
from repro.taxonomy.nomenclature import normalize_name
from repro.taxonomy.service import CatalogueService
from repro.telemetry import get_telemetry
from repro.workflow.cache import ResultCache
from repro.workflow.engine import WorkflowEngine
from repro.workflow.model import Processor, Workflow
from repro.workflow.trace import WorkflowTrace

__all__ = ["build_species_check_workflow", "SpeciesCheckResult",
           "SpeciesNameChecker", "UPDATES_TABLE"]

UPDATES_TABLE = "species_updates"

#: processor names, mirroring Fig. 3 / Listing 1
READER = "FNJV_metadata_reader"
CATALOGUE = "Catalog_of_life"
PERSISTER = "Update_persister"


def build_species_check_workflow() -> Workflow:
    """The workflow structure (behaviour is bound by the checker)."""
    workflow = Workflow(
        "outdated_species_name_detection",
        description=(
            "Detect FNJV species names that are no longer valid by "
            "contrasting them with the Catalogue of Life"
        ),
    )
    workflow.add_processor(Processor(
        READER, "metadata_reader",
        inputs=["records"],
        outputs=["names", "name_records", "records_processed"],
    ))
    workflow.add_processor(Processor(
        CATALOGUE, "catalogue_lookup",
        inputs=["names"],
        outputs=["resolutions", "service_stats"],
        # never memoize: the answer depends on the catalogue's knowledge
        # horizon and the (simulated) service's behaviour, neither of
        # which is part of the input digest
        config={"cacheable": False},
    ))
    workflow.add_processor(Processor(
        PERSISTER, "update_persister",
        inputs=["resolutions", "name_records", "records_processed"],
        outputs=["summary"],
        # never memoize: inserts rows into the species_updates table
        config={"cacheable": False},
    ))
    workflow.map_input("metadata", READER, "records")
    workflow.link(READER, "names", CATALOGUE, "names")
    workflow.link(CATALOGUE, "resolutions", PERSISTER, "resolutions")
    workflow.link(READER, "name_records", PERSISTER, "name_records")
    workflow.link(READER, "records_processed", PERSISTER,
                  "records_processed")
    workflow.map_output("summary", PERSISTER, "summary")
    workflow.map_output("service_stats", CATALOGUE, "service_stats")
    return workflow


class SpeciesCheckResult:
    """Output of one detection run — the Fig. 2 numbers."""

    def __init__(self, summary: Mapping[str, Any], run_id: str,
                 trace: WorkflowTrace) -> None:
        self.summary = dict(summary)
        self.run_id = run_id
        self.trace = trace

    @property
    def records_processed(self) -> int:
        return int(self.summary["records_processed"])

    @property
    def distinct_names(self) -> int:
        return int(self.summary["distinct_names"])

    @property
    def outdated_names(self) -> int:
        return int(self.summary["outdated_names"])

    @property
    def unresolved_names(self) -> int:
        return int(self.summary.get("unresolved_names", 0))

    @property
    def outdated_fraction(self) -> float:
        if self.distinct_names == 0:
            return 0.0
        return self.outdated_names / self.distinct_names

    @property
    def updated_names(self) -> dict[str, str]:
        """old name -> up-to-date name."""
        return dict(self.summary.get("updated_names", {}))

    def render(self) -> str:
        """A Fig. 2-style progress/result panel."""
        lines = [
            "Detection of outdated species names",
            "-" * 52,
            f"records processed:          {self.records_processed:>7,}",
            f"distinct species names:     {self.distinct_names:>7,}",
            f"outdated species names:     {self.outdated_names:>7,}"
            f"  ({self.outdated_fraction:.0%} of names analyzed)",
            f"unresolved (service down):  {self.unresolved_names:>7,}",
            "",
            "updated names (first 10):",
        ]
        for old, new in list(sorted(self.updated_names.items()))[:10]:
            lines.append(f"  {old}  ->  {new}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SpeciesCheckResult({self.outdated_names}/"
            f"{self.distinct_names} outdated, run {self.run_id})"
        )


class SpeciesNameChecker:
    """Wires the workflow to a collection, a catalogue service and the
    provenance stack, and runs it end to end.

    Parameters
    ----------
    collection:
        The collection to check.
    service:
        The (simulated) Catalogue of Life web service.
    engine:
        Shared engine; one is created when omitted.
    provenance:
        Attached :class:`ProvenanceManager` (created when omitted).
    history:
        When given, the reader consumes the *curated view* of each
        record (stage 1.1 fixes applied) instead of the raw originals.
    adapter:
        Used for step 1 — annotating the Catalogue processor with the
        service's declared reputation/availability.
    max_workers / result_cache:
        Forwarded to the engine created when ``engine`` is omitted:
        wave-parallel execution width and an optional shared
        :class:`~repro.workflow.cache.ResultCache`.
    """

    def __init__(self, collection: SoundCollection,
                 service: CatalogueService,
                 engine: WorkflowEngine | None = None,
                 provenance: ProvenanceManager | None = None,
                 history: CurationHistory | None = None,
                 adapter: WorkflowAdapter | None = None,
                 max_attempts: int = 3,
                 max_workers: int = 1,
                 result_cache: ResultCache | None = None) -> None:
        self.collection = collection
        self.service = service
        self.history = history
        self.adapter = adapter or WorkflowAdapter()
        self.max_attempts = max_attempts
        self.engine = engine or WorkflowEngine(max_workers=max_workers,
                                               cache=result_cache)
        self.provenance = provenance or ProvenanceManager()
        self.provenance.attach(self.engine)
        self._ensure_updates_table()
        self._register_kinds()
        self.workflow = build_species_check_workflow()
        # step 1: experts add quality metadata to the workflow
        self.adapter.annotate_source(
            self.workflow, CATALOGUE,
            reputation=self.service.reputation,
            availability=self.service.availability,
            note="Catalogue of Life service profile",
        )

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    def _ensure_updates_table(self) -> None:
        database = self.collection.database
        if database.has_table(UPDATES_TABLE):
            return
        database.create_table(TableSchema(UPDATES_TABLE, [
            Column("update_id", ct.INTEGER),
            Column("record_id", ct.INTEGER, nullable=False),
            Column("old_name", ct.TEXT, nullable=False),
            Column("new_name", ct.TEXT, nullable=False),
            Column("reason", ct.TEXT, default=""),
            Column("reference", ct.TEXT, default=""),
            Column("status", ct.TEXT, nullable=False, default="flagged"),
            Column("run_id", ct.TEXT, default=""),
        ], primary_key="update_id",
            foreign_keys=[ForeignKey("record_id", RECORDINGS, "record_id")]))
        database.create_index(UPDATES_TABLE, "record_id", "hash")
        database.create_index(UPDATES_TABLE, "old_name", "hash")

    def updates(self, status: str | None = None) -> list[dict[str, Any]]:
        query = self.collection.database.query(UPDATES_TABLE)
        if status is not None:
            query = query.where(col("status") == status)
        return query.order_by("update_id").all()

    def confirm_update(self, update_id: int) -> None:
        """A biologist confirms one flagged update."""
        database = self.collection.database
        rowid = database.rowid_for(UPDATES_TABLE, update_id)
        database.update(UPDATES_TABLE, rowid, {"status": "confirmed"})

    # ------------------------------------------------------------------
    # processor implementations
    # ------------------------------------------------------------------

    def _register_kinds(self) -> None:
        registry = self.engine.registry

        def reader(inputs: Mapping[str, Any]) -> dict[str, Any]:
            records = inputs.get("records") or []
            name_records: dict[str, list[int]] = {}
            for row in records:
                raw = row.get("species")
                if raw is None:
                    continue
                try:
                    name = normalize_name(raw)
                except InvalidNameError as error:
                    get_telemetry().events.record(
                        "invalid_name_kept_raw", {
                            "step": "species_check.reader",
                            "record_id": row["record_id"],
                            "raw": raw,
                            "reason": str(error),
                        })
                    name = raw
                name_records.setdefault(name, []).append(row["record_id"])
            return {
                "names": sorted(name_records),
                "name_records": name_records,
                "records_processed": len(records),
                "__duration__": max(0.5, len(records) * 0.0001),
            }

        def catalogue_lookup(inputs: Mapping[str, Any]) -> dict[str, Any]:
            names = inputs.get("names") or []
            self.service.stats.reset()
            resolutions = []
            for name in names:
                resolution = self.service.lookup_with_retry(
                    name, max_attempts=self.max_attempts
                )
                if resolution is None:
                    resolutions.append(
                        {"queried": name, "status": "unresolved"}
                    )
                else:
                    resolutions.append(resolution.to_dict())
            stats = self.service.stats
            return {
                "resolutions": resolutions,
                "service_stats": {
                    "calls": stats.calls,
                    "failures": stats.failures,
                    "retries": stats.retries,
                },
                "__duration__": stats.simulated_seconds,
            }

        def persister(inputs: Mapping[str, Any]) -> dict[str, Any]:
            resolutions = inputs.get("resolutions") or []
            name_records = inputs.get("name_records") or {}
            updated: dict[str, str] = {}
            unresolved = 0
            affected_records = 0
            next_id = self.collection.database.count(UPDATES_TABLE) + 1
            for resolution in resolutions:
                status = resolution.get("status")
                if status == "unresolved":
                    unresolved += 1
                    continue
                if status != "outdated":
                    continue
                old = resolution["queried"]
                new = resolution.get("accepted_name") or ""
                updated[old] = new
                chain = resolution.get("chain") or []
                reason = chain[0].get("reason", "") if chain else ""
                reference = chain[0].get("reference", "") if chain else ""
                for record_id in name_records.get(old, ()):
                    affected_records += 1
                    self.collection.database.insert(UPDATES_TABLE, {
                        "update_id": next_id,
                        "record_id": record_id,
                        "old_name": old,
                        "new_name": new,
                        "reason": reason,
                        "reference": reference,
                        "status": "flagged",
                    })
                    next_id += 1
            return {
                "summary": {
                    "records_processed": inputs.get("records_processed", 0),
                    "distinct_names": len(resolutions),
                    "outdated_names": len(updated),
                    "unresolved_names": unresolved,
                    "affected_records": affected_records,
                    "updated_names": updated,
                },
                "__duration__": max(0.2, affected_records * 0.001),
            }

        registry.register_function("metadata_reader", reader)
        registry.register_function("catalogue_lookup", catalogue_lookup)
        registry.register_function("update_persister", persister)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self) -> SpeciesCheckResult:
        """Steps 2-5: feed the metadata in, run, capture provenance."""
        if self.history is not None:
            rows = [
                record.to_row()
                for record in self.history.curated_records()
            ]
        else:
            rows = list(self.collection.rows())
        result = self.engine.run(self.workflow, {"metadata": rows})
        return SpeciesCheckResult(result.outputs["summary"],
                                  result.run_id, result.trace)
