"""Stage 1.3 — filling missing environmental fields.

"Finally, in the third step, we filled in missing fields whenever
possible, in particular those concerning environmental conditions (e.g.,
humidity or temperature), obtained from authoritative sources, once
location and date were defined."

The enricher consults the climate archive for every record that (a) has
coordinates — original or approved by geocoding — and (b) has a collect
date, and proposes values for the blank environmental fields.  Fills are
flagged (archive data is an estimate, not an observation).
"""

from __future__ import annotations

from repro.curation.history import CurationHistory
from repro.geo.climate import ClimateArchive
from repro.sounds.fields import ATMOSPHERIC_CONDITIONS

__all__ = ["EnrichmentReport", "EnvironmentalEnricher"]


class EnrichmentReport:
    """Outcome of one enrichment pass."""

    def __init__(self) -> None:
        self.records_scanned = 0
        self.not_located = 0
        self.no_date = 0
        self.temperature_fills: dict[int, float] = {}
        self.conditions_fills: dict[int, str] = {}

    @property
    def fills(self) -> int:
        return len(self.temperature_fills) + len(self.conditions_fills)

    def summary(self) -> dict[str, int]:
        return {
            "records_scanned": self.records_scanned,
            "not_located": self.not_located,
            "no_date": self.no_date,
            "temperature_fills": len(self.temperature_fills),
            "conditions_fills": len(self.conditions_fills),
        }

    def __repr__(self) -> str:
        return f"EnrichmentReport({self.summary()})"


class EnvironmentalEnricher:
    """Runs stage 1.3 against a collection + history log."""

    STEP = "stage1.3-enrichment"

    def __init__(self, history: CurationHistory,
                 climate: ClimateArchive | None = None) -> None:
        self.history = history
        self.collection = history.collection
        self.climate = climate or ClimateArchive()

    def run(self) -> EnrichmentReport:
        report = EnrichmentReport()
        for original in self.collection.records():
            report.records_scanned += 1
            # Work on the curated view so freshly-approved geocoding
            # results count as "location defined".
            record = self.history.curated_record(original.record_id)
            coordinates = record.coordinates
            if coordinates is None:
                report.not_located += 1
                continue
            date = record.collect_date
            if date is None:
                report.no_date += 1
                continue
            hour = _hour_of(record.collect_time)
            needs_temperature = record.air_temperature_c is None
            needs_conditions = record.atmospheric_conditions is None
            if not needs_temperature and not needs_conditions:
                continue
            reading = self.climate.reading(coordinates[0], coordinates[1],
                                           date, hour=hour)
            note = "filled from historical climate archive"
            if needs_temperature:
                value = round(reading.temperature_c, 1)
                report.temperature_fills[record.record_id] = value
                self.history.propose(record.record_id, "air_temperature_c",
                                     None, value, self.STEP, note=note)
            if needs_conditions:
                conditions = (
                    reading.conditions
                    if reading.conditions in ATMOSPHERIC_CONDITIONS
                    else "clear"
                )
                report.conditions_fills[record.record_id] = conditions
                self.history.propose(record.record_id,
                                     "atmospheric_conditions",
                                     None, conditions, self.STEP, note=note)
        return report


def _hour_of(collect_time: str | None) -> int:
    """Hour from an ``HH:MM`` string; noon when absent/garbled."""
    if collect_time and len(collect_time) >= 2 and collect_time[:2].isdigit():
        hour = int(collect_time[:2])
        if 0 <= hour <= 23:
            return hour
    return 12
