"""Stage 1.1 — basic metadata cleaning.

"The first concerned basic metadata cleaning algorithms, e.g., checking
attribute domains, and syntactic corrections."

Three passes over the collection:

1. **syntactic corrections** — species names with capitalization slips
   ("SCINAX fuscomarginatus") are normalized; being mechanical, these
   are logged auto-approved;
2. **domain checks** — every field value is checked against its
   :class:`~repro.sounds.fields.FieldSpec` domain; violations are
   reported (and nulling is *proposed*, flagged for review);
3. **era consistency** — a recording can only claim devices/formats
   that existed at its recording date; anachronisms are flagged.
"""

from __future__ import annotations

from typing import Any

from repro.curation.history import CurationHistory
from repro.sounds.fields import FIELDS
from repro.sounds.formats import era_consistent
from repro.taxonomy.nomenclature import ScientificName, normalize_name

__all__ = ["CleaningReport", "MetadataCleaner"]

_ERA_FIELDS = {
    "recording_device": "device",
    "microphone_model": "microphone",
    "sound_file_format": "format",
}


class CleaningReport:
    """What one cleaning pass found and proposed."""

    def __init__(self) -> None:
        self.records_scanned = 0
        self.syntactic_fixes: dict[int, tuple[str, str]] = {}
        self.domain_violations: dict[int, dict[str, Any]] = {}
        self.anachronisms: dict[int, dict[str, str]] = {}
        self.malformed_names: dict[int, str] = {}

    @property
    def records_with_issues(self) -> int:
        ids = (set(self.syntactic_fixes) | set(self.domain_violations)
               | set(self.anachronisms) | set(self.malformed_names))
        return len(ids)

    def summary(self) -> dict[str, int]:
        return {
            "records_scanned": self.records_scanned,
            "syntactic_fixes": len(self.syntactic_fixes),
            "records_with_domain_violations": len(self.domain_violations),
            "anachronisms": len(self.anachronisms),
            "malformed_names": len(self.malformed_names),
            "records_with_issues": self.records_with_issues,
        }

    def __repr__(self) -> str:
        return f"CleaningReport({self.summary()})"


class MetadataCleaner:
    """Runs stage 1.1 against a collection + history log."""

    STEP = "stage1.1-cleaning"

    def __init__(self, history: CurationHistory) -> None:
        self.history = history
        self.collection = history.collection

    def run(self) -> CleaningReport:
        """Scan every record; log proposals; return the report."""
        report = CleaningReport()
        for record in self.collection.records():
            report.records_scanned += 1
            self._clean_species_name(record, report)
            self._check_domains(record, report)
            self._check_eras(record, report)
        return report

    # ------------------------------------------------------------------
    # passes
    # ------------------------------------------------------------------

    def _clean_species_name(self, record, report: CleaningReport) -> None:
        name = record.species
        if name is None:
            return
        parsed = ScientificName.try_parse(name)
        if parsed is None:
            report.malformed_names[record.record_id] = name
            self.history.propose(
                record.record_id, "species", name, None, self.STEP,
                note="malformed scientific name; needs expert attention",
            )
            return
        normalized = normalize_name(name)
        if normalized != name:
            report.syntactic_fixes[record.record_id] = (name, normalized)
            self.history.propose(
                record.record_id, "species", name, normalized, self.STEP,
                note="capitalization normalized", auto_approve=True,
                curator="cleaning algorithm",
            )

    def _check_domains(self, record, report: CleaningReport) -> None:
        violations = record.domain_violations()
        if not violations:
            return
        report.domain_violations[record.record_id] = violations
        for field, value in violations.items():
            self.history.propose(
                record.record_id, field, value, None, self.STEP,
                note="value outside the field domain",
            )

    def _check_eras(self, record, report: CleaningReport) -> None:
        year = record.recording_year
        if year is None:
            return
        for field, kind in _ERA_FIELDS.items():
            value = record.get(field)
            if value is None:
                continue
            consistent = era_consistent(kind, value, year)
            if consistent is False:
                report.anachronisms.setdefault(
                    record.record_id, {}
                )[field] = value
                self.history.propose(
                    record.record_id, field, value, None, self.STEP,
                    note=f"{value!r} did not exist in {year}",
                )

    # convenience: list which field specs have domains at all (docs/tests)
    @staticmethod
    def checked_fields() -> list[str]:
        return [spec.name for spec in FIELDS if spec.domain is not None]
