"""The curators' review queue.

"Every step was validated by human curators, who also helped in
disambiguating information whenever our algorithms found problems."

:class:`ReviewQueue` is the organizing layer over the history log's
flagged proposals: priority ordering (changes that alter *meaning* come
before mechanical fills), per-step batches, a reviewer session that
tracks throughput, and queue statistics for planning curation
campaigns.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.curation.history import CurationHistory, ProposedChange
from repro.errors import CurationError

__all__ = ["ReviewQueue", "ReviewSession"]

#: lower number = reviewed first; meaning-changing steps lead
_STEP_PRIORITY = {
    "stage1.1-name-repair": 0,
    "stage2-spatial-audit": 1,
    "stage1.1-cleaning": 2,
    "stage1.2-geocoding": 3,
    "stage1.3-enrichment": 4,
}
_DEFAULT_PRIORITY = 5


def _priority(change: ProposedChange) -> tuple[int, int]:
    return (_STEP_PRIORITY.get(change.step, _DEFAULT_PRIORITY),
            change.change_id)


class ReviewSession:
    """One reviewer's sitting: decisions counted and attributed."""

    def __init__(self, queue: "ReviewQueue", curator: str) -> None:
        self.queue = queue
        self.curator = curator
        self.approved = 0
        self.rejected = 0
        self.skipped = 0

    @property
    def decisions(self) -> int:
        return self.approved + self.rejected

    def approve(self, change: ProposedChange) -> None:
        self.queue.history.approve(change.change_id, curator=self.curator)
        self.approved += 1

    def reject(self, change: ProposedChange) -> None:
        self.queue.history.reject(change.change_id, curator=self.curator)
        self.rejected += 1

    def skip(self, change: ProposedChange) -> None:
        self.skipped += 1

    def work(self, decide: Callable[[ProposedChange], str],
             limit: int | None = None) -> int:
        """Pull changes in priority order; ``decide`` returns
        ``"approve"`` / ``"reject"`` / ``"skip"``.  Returns decisions
        made."""
        done = 0
        for change in self.queue.pending():
            if limit is not None and done >= limit:
                break
            verdict = decide(change)
            if verdict == "approve":
                self.approve(change)
            elif verdict == "reject":
                self.reject(change)
            elif verdict == "skip":
                self.skip(change)
                continue
            else:
                raise CurationError(f"unknown verdict {verdict!r}")
            done += 1
        return done

    def __repr__(self) -> str:
        return (
            f"ReviewSession({self.curator}: {self.approved} approved, "
            f"{self.rejected} rejected, {self.skipped} skipped)"
        )


class ReviewQueue:
    """Priority view over the history log's flagged changes."""

    def __init__(self, history: CurationHistory) -> None:
        self.history = history

    def pending(self, step: str | None = None) -> Iterator[ProposedChange]:
        """Flagged changes, meaning-changing steps first.

        Re-reads the log each call, so decisions made mid-iteration are
        reflected (already-reviewed changes do not reappear)."""
        changes = sorted(self.history.pending(step=step), key=_priority)
        for change in changes:
            # a decision may have landed since the snapshot
            current = [
                c for c in self.history.changes(record_id=change.record_id,
                                                status="flagged")
                if c.change_id == change.change_id
            ]
            if current:
                yield change

    def __len__(self) -> int:
        return len(self.history.pending())

    def next_change(self) -> ProposedChange | None:
        for change in self.pending():
            return change
        return None

    def session(self, curator: str) -> ReviewSession:
        return ReviewSession(self, curator)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def backlog_by_step(self) -> dict[str, int]:
        backlog: dict[str, int] = {}
        for change in self.history.pending():
            backlog[change.step] = backlog.get(change.step, 0) + 1
        return dict(sorted(backlog.items()))

    def estimated_effort_minutes(self,
                                 minutes_per_change: float = 1.5) -> float:
        """Planning aid: how long the backlog takes one curator."""
        return len(self) * minutes_per_change

    def records_awaiting_review(self) -> set[int]:
        return {change.record_id for change in self.history.pending()}
