"""Typo repair through fuzzy catalogue resolution.

Part of the stage-1 "syntactic corrections": species names that are
well-formed binomials but unknown to the Catalogue of Life are probably
misspelled.  The catalogue's fuzzy resolver (bounded edit distance)
proposes the intended name; the proposal is *flagged* — unlike pure
case normalization, a spelling repair changes meaning and needs a
biologist's eye.
"""

from __future__ import annotations

from repro.curation.history import CurationHistory
from repro.taxonomy.catalogue import CatalogueOfLife
from repro.errors import InvalidNameError
from repro.taxonomy.nomenclature import normalize_name
from repro.telemetry import get_telemetry

__all__ = ["NameRepairReport", "NameRepairer"]


class NameRepairReport:
    """Outcome of one repair pass."""

    def __init__(self) -> None:
        self.records_scanned = 0
        self.known_names = 0
        #: record_id -> (misspelled, suggested)
        self.repairs: dict[int, tuple[str, str]] = {}
        #: record_id -> unknown name with no suggestion
        self.unrepairable: dict[int, str] = {}

    def summary(self) -> dict[str, int]:
        return {
            "records_scanned": self.records_scanned,
            "known_names": self.known_names,
            "repairs_proposed": len(self.repairs),
            "unrepairable": len(self.unrepairable),
        }

    def __repr__(self) -> str:
        return f"NameRepairReport({self.summary()})"


class NameRepairer:
    """Runs the fuzzy-repair pass against a collection + history log."""

    STEP = "stage1.1-name-repair"

    def __init__(self, history: CurationHistory,
                 catalogue: CatalogueOfLife,
                 max_distance: int = 2) -> None:
        self.history = history
        self.collection = history.collection
        self.catalogue = catalogue
        self.max_distance = max_distance

    def run(self) -> NameRepairReport:
        report = NameRepairReport()
        # resolve each distinct name once; collections repeat names a lot
        verdicts: dict[str, str | None] = {}
        for record in self.collection.records():
            report.records_scanned += 1
            raw = record.species
            if raw is None:
                continue
            try:
                name = normalize_name(raw)
            except InvalidNameError as error:
                get_telemetry().events.record("invalid_name_skipped", {
                    "step": self.STEP,
                    "record_id": record.record_id,
                    "raw": raw,
                    "reason": str(error),
                })
                continue
            if name not in verdicts:
                verdicts[name] = self._suggestion_for(name)
            suggestion = verdicts[name]
            if suggestion == name:
                report.known_names += 1
            elif suggestion is None:
                report.unrepairable[record.record_id] = name
            else:
                report.repairs[record.record_id] = (name, suggestion)
                self.history.propose(
                    record.record_id, "species", raw, suggestion,
                    self.STEP,
                    note=(
                        f"{name!r} is unknown to the catalogue; "
                        f"probable misspelling of {suggestion!r}"
                    ),
                )
        return report

    def _suggestion_for(self, name: str) -> str | None:
        """``name`` itself when known; a fuzzy suggestion; or ``None``."""
        resolution = self.catalogue.resolve(name, fuzzy=True,
                                            max_distance=self.max_distance)
        if resolution.is_known:
            return name
        if resolution.status == "fuzzy":
            return resolution.suggestion
        return None
