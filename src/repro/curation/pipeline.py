"""The full curation pipeline.

Orchestrates the paper's two stages over one collection:

* **stage 1** — cleaning, geocoding (with auto-approval of the
  unambiguous results so stage 1.3 can use them), environmental
  enrichment, and the Outdated Species Name Detection Workflow;
* **stage 2** — the spatial audit.

"These are not, moreover, isolated activities that are performed only
once" — the pipeline object is reusable; re-running it against an
advanced catalogue models the periodic re-curation of 2011 -> 2013.
"""

from __future__ import annotations

import time
from typing import Any, Callable, TypeVar

from repro.curation.cleaning import CleaningReport, MetadataCleaner
from repro.curation.enrichment import EnrichmentReport, EnvironmentalEnricher
from repro.curation.geocoding import Geocoder, GeocodingReport
from repro.curation.history import CurationHistory
from repro.curation.name_repair import NameRepairer, NameRepairReport
from repro.curation.spatial_audit import SpatialAuditor, SpatialAuditReport
from repro.curation.species_check import SpeciesCheckResult, SpeciesNameChecker
from repro.geo.climate import ClimateArchive
from repro.geo.gazetteer import Gazetteer
from repro.provenance.manager import ProvenanceManager
from repro.sounds.collection import SoundCollection
from repro.taxonomy.service import CatalogueService
from repro.telemetry import Telemetry, get_telemetry
from repro.workflow.cache import ResultCache
from repro.workflow.engine import WorkflowEngine

__all__ = ["PipelineReport", "CurationPipeline", "CollectionSink",
           "CATALOGUE_RESOURCE"]

_T = TypeVar("_T")

#: resource name under which catalogue-dependent cache entries are
#: tagged (see :meth:`CurationPipeline.recheck_names`)
CATALOGUE_RESOURCE = "catalogue_of_life"


class CollectionSink:
    """Adapts a :class:`SoundCollection` to the streaming ``add_all``
    protocol (see :class:`~repro.streaming.stream.ObservationStream`).

    Record ids are assigned *before* the batch lands so ``on_batch``
    hooks can map the flushed records to a dirty set;
    :attr:`last_ids` holds the ids of the most recent batch.
    """

    def __init__(self, collection: SoundCollection) -> None:
        self.collection = collection
        self.last_ids: list[int] = []
        self.total = 0

    def add_all(self, batch: list[Any]) -> int:
        from repro.sounds.collection import RECORDINGS
        rows: list[dict[str, Any]] = []
        ids: list[int] = []
        next_id = len(self.collection) + 1
        for item in batch:
            row = item.to_row() if hasattr(item, "to_row") else dict(item)
            if row.get("record_id") is None:
                row["record_id"] = next_id
            next_id = max(next_id, row["record_id"]) + 1
            ids.append(row["record_id"])
            rows.append(row)
        # same batched write path add_many uses: one validation pass,
        # deferred index maintenance, one journal entry
        self.collection.database.bulk_load(RECORDINGS, rows)
        self.last_ids = ids
        self.total += len(rows)
        return len(rows)


class PipelineReport:
    """Everything one pipeline pass produced."""

    def __init__(self) -> None:
        self.cleaning: CleaningReport | None = None
        self.name_repair: NameRepairReport | None = None
        self.geocoding: GeocodingReport | None = None
        self.enrichment: EnrichmentReport | None = None
        self.species_check: SpeciesCheckResult | None = None
        self.spatial_audit: SpatialAuditReport | None = None

    def summary(self) -> dict[str, Any]:
        parts: dict[str, Any] = {}
        if self.cleaning is not None:
            parts["cleaning"] = self.cleaning.summary()
        if self.name_repair is not None:
            parts["name_repair"] = self.name_repair.summary()
        if self.geocoding is not None:
            parts["geocoding"] = self.geocoding.summary()
        if self.enrichment is not None:
            parts["enrichment"] = self.enrichment.summary()
        if self.species_check is not None:
            parts["species_check"] = dict(self.species_check.summary)
        if self.spatial_audit is not None:
            parts["spatial_audit"] = self.spatial_audit.summary()
        return parts

    def __repr__(self) -> str:
        done = [name for name, value in (
            ("cleaning", self.cleaning), ("geocoding", self.geocoding),
            ("enrichment", self.enrichment),
            ("species_check", self.species_check),
            ("spatial_audit", self.spatial_audit),
        ) if value is not None]
        return f"PipelineReport(stages={done})"


class CurationPipeline:
    """Stage orchestration for one collection.

    ``max_workers`` / ``result_cache`` configure the engine created when
    ``engine`` is omitted: wave-parallel processor execution and
    content-keyed memoization of repeat invocations (periodic
    re-curation re-runs the same workflows over mostly unchanged data).
    """

    def __init__(self, collection: SoundCollection,
                 service: CatalogueService,
                 gazetteer: Gazetteer | None = None,
                 climate: ClimateArchive | None = None,
                 engine: WorkflowEngine | None = None,
                 provenance: ProvenanceManager | None = None,
                 telemetry: Telemetry | None = None,
                 max_workers: int = 1,
                 result_cache: ResultCache | None = None) -> None:
        self.collection = collection
        self.service = service
        self.gazetteer = gazetteer or Gazetteer()
        self.climate = climate or ClimateArchive()
        self.engine = engine or WorkflowEngine(max_workers=max_workers,
                                               cache=result_cache)
        self.provenance = provenance or ProvenanceManager()
        self.telemetry = telemetry or get_telemetry()
        self.history = CurationHistory(collection)
        self.checker = SpeciesNameChecker(
            collection, service, engine=self.engine,
            provenance=self.provenance, history=self.history,
        )

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------

    def _timed_stage(self, stage: str, work: Callable[[], _T]) -> _T:
        """Run one stage under a span, recording wall time + throughput.

        Stage spans sit on the engine's simulated timeline (so the
        species-check stage nests the workflow run); the histogram
        records real wall seconds, which is what per-stage throughput
        tuning needs.
        """
        metrics = self.telemetry.metrics
        records = len(self.collection)
        wall_start = time.perf_counter()
        with self.telemetry.tracer.span(
                "curation.stage", clock=self.engine.clock,
                stage=stage, records=records):
            result = work()
        elapsed = time.perf_counter() - wall_start
        metrics.histogram("curation_stage_seconds",
                          stage=stage).observe(elapsed)
        metrics.counter("curation_stage_records_total",
                        stage=stage).inc(records)
        metrics.counter("curation_stage_runs_total", stage=stage).inc()
        return result

    def run_stage1(self, auto_approve_geocoding: bool = True,
                   run_species_check: bool = True,
                   repair_names: bool = False) -> PipelineReport:
        """Cleaning -> (fuzzy name repair) -> geocoding -> enrichment ->
        name check."""
        report = PipelineReport()
        report.cleaning = self._timed_stage(
            "cleaning", MetadataCleaner(self.history).run)
        if repair_names:
            report.name_repair = self._timed_stage(
                "name_repair",
                NameRepairer(self.history, self.service.catalogue).run)
        geocoder = Geocoder(self.history, self.gazetteer)
        report.geocoding = self._timed_stage("geocoding", geocoder.run)
        if auto_approve_geocoding:
            # Unambiguous gazetteer hits are validated in bulk (the
            # paper's curators validated each step); ambiguous ones stay
            # in the disambiguation queue.
            self.history.approve_step(Geocoder.STEP,
                                      curator="curator (bulk validation)")
        report.enrichment = self._timed_stage(
            "enrichment",
            EnvironmentalEnricher(self.history, self.climate).run)
        if run_species_check:
            report.species_check = self._timed_stage(
                "species_check", self.checker.run)
        return report

    def run_stage2(self) -> SpatialAuditReport:
        """The spatial audit over the curated view."""
        return self._timed_stage(
            "spatial_audit",
            SpatialAuditor(self.collection, history=self.history).run)

    def run_all(self) -> PipelineReport:
        report = self.run_stage1()
        report.spatial_audit = self.run_stage2()
        return report

    # ------------------------------------------------------------------
    # continuous curation
    # ------------------------------------------------------------------

    def stream(self, capacity: int = 256, batch_size: int = 64,
               policy: str = "block",
               on_batch: Callable[[list], None] | None = None) -> Any:
        """A backpressured ingest stream into this pipeline's
        collection, flushing micro-batches through the storage engine's
        bulk write path.  Wire ``on_batch`` to an
        :class:`~repro.streaming.incremental.IncrementalCurator` hook
        to keep assessment dirty-set-proportional as records arrive."""
        from repro.streaming.stream import ObservationStream
        return ObservationStream(
            CollectionSink(self.collection), capacity=capacity,
            batch_size=batch_size, policy=policy, on_batch=on_batch,
            telemetry=self.telemetry, source=self.collection.name)

    def recheck_names(self, as_of_year: int) -> SpeciesCheckResult:
        """Re-run only the name check against the catalogue as known in
        ``as_of_year`` (the 2011 -> 2013 re-initiation of stage 1).

        Cache entries tagged with the catalogue resource are dropped
        first: any incremental curator sharing this engine's result
        cache will re-resolve names instead of replaying verdicts from
        the superseded catalogue."""
        self.service.catalogue.advance_to(as_of_year)
        if self.engine.cache is not None:
            from repro.streaming.deps import DependencyIndex
            self.engine.cache.invalidate_tags(
                DependencyIndex.resource_key(CATALOGUE_RESOURCE))
        return self.checker.run()
