"""Stage 1.2 — adding geographic coordinates.

"The second curation step was to add geographic coordinates to all
metadata records (since most recordings had been made before the advent
of GPS) ... human curators ... helped in disambiguating information
whenever our algorithms found problems (for instance, to define
coordinates when a location name was too vague)."

For every record without coordinates, the geocoder resolves the textual
place fields against the gazetteer.  Unambiguous hits are proposed
(flagged); ambiguous or unresolvable places land in the
*needs-disambiguation* queue for humans.
"""

from __future__ import annotations

from repro.curation.history import CurationHistory
from repro.errors import GeocodingError
from repro.geo.gazetteer import Gazetteer

__all__ = ["GeocodingReport", "Geocoder"]


class GeocodingReport:
    """Outcome of one geocoding pass."""

    def __init__(self) -> None:
        self.records_scanned = 0
        self.already_located = 0
        self.resolved: dict[int, tuple[float, float, float]] = {}
        self.ambiguous: dict[int, str] = {}
        self.unresolvable: dict[int, str] = {}

    @property
    def needs_disambiguation(self) -> list[int]:
        return sorted(self.ambiguous)

    def summary(self) -> dict[str, int]:
        return {
            "records_scanned": self.records_scanned,
            "already_located": self.already_located,
            "resolved": len(self.resolved),
            "ambiguous": len(self.ambiguous),
            "unresolvable": len(self.unresolvable),
        }

    def __repr__(self) -> str:
        return f"GeocodingReport({self.summary()})"


class Geocoder:
    """Runs stage 1.2 against a collection + history log."""

    STEP = "stage1.2-geocoding"

    def __init__(self, history: CurationHistory,
                 gazetteer: Gazetteer | None = None) -> None:
        self.history = history
        self.collection = history.collection
        self.gazetteer = gazetteer or Gazetteer()

    def run(self) -> GeocodingReport:
        report = GeocodingReport()
        for record in self.collection.records():
            report.records_scanned += 1
            if record.has_coordinates:
                report.already_located += 1
                continue
            try:
                place = self.gazetteer.resolve(
                    country=record.country, state=record.state,
                    city=record.city,
                )
            except GeocodingError as exc:
                message = str(exc)
                if message.startswith("ambiguous"):
                    report.ambiguous[record.record_id] = message
                else:
                    report.unresolvable[record.record_id] = message
                continue
            report.resolved[record.record_id] = (
                place.latitude, place.longitude, place.uncertainty_km
            )
            note = (
                f"geocoded from {place.kind} {place.name!r} "
                f"(±{place.uncertainty_km:.0f} km)"
            )
            self.history.propose(record.record_id, "latitude", None,
                                 round(place.latitude, 5), self.STEP,
                                 note=note)
            self.history.propose(record.record_id, "longitude", None,
                                 round(place.longitude, 5), self.STEP,
                                 note=note)
        return report

    def disambiguate(self, record_id: int, state: str) -> bool:
        """A human curator pins the record's city to ``state``; retry.

        Returns whether the record is now resolvable."""
        record = self.collection.record(record_id)
        try:
            place = self.gazetteer.resolve(country=record.country,
                                           state=state, city=record.city)
        except GeocodingError:
            return False
        if place.kind != "city":
            # The curator named a state the city is not actually in; a
            # state-centroid fallback would hide the mistake.
            return False
        note = f"disambiguated by curator to {state!r}"
        self.history.propose(record.record_id, "latitude", None,
                             round(place.latitude, 5), self.STEP, note=note)
        self.history.propose(record.record_id, "longitude", None,
                             round(place.longitude, 5), self.STEP, note=note)
        return True
