"""Curation processes for the sound-collection case study.

Stage 1 (paper §IV-B): basic cleaning (domain checks, syntactic
corrections), geocoding, environmental gap-filling, and the Outdated
Species Name Detection Workflow.  Stage 2: spatial error detection.

The original collection is **never mutated**: every proposed change goes
to the curation-history log (:mod:`repro.curation.history`) and species
name updates go to a separate table referencing the original record,
flagged for biologist review — exactly the paper's persistence strategy.
"""

from repro.curation.cleaning import CleaningReport, MetadataCleaner
from repro.curation.enrichment import EnrichmentReport, EnvironmentalEnricher
from repro.curation.geocoding import Geocoder, GeocodingReport
from repro.curation.history import CurationHistory, ProposedChange
from repro.curation.name_repair import NameRepairer, NameRepairReport
from repro.curation.pipeline import CurationPipeline, PipelineReport
from repro.curation.review import ReviewQueue, ReviewSession
from repro.curation.spatial_audit import SpatialAuditor, SpatialAuditReport
from repro.curation.species_check import (
    SpeciesCheckResult,
    SpeciesNameChecker,
    build_species_check_workflow,
)

__all__ = [
    "CleaningReport",
    "CurationHistory",
    "CurationPipeline",
    "EnrichmentReport",
    "EnvironmentalEnricher",
    "Geocoder",
    "GeocodingReport",
    "MetadataCleaner",
    "NameRepairReport",
    "NameRepairer",
    "PipelineReport",
    "ProposedChange",
    "ReviewQueue",
    "ReviewSession",
    "SpatialAuditReport",
    "SpatialAuditor",
    "SpeciesCheckResult",
    "SpeciesNameChecker",
    "build_species_check_workflow",
]
