"""Deterministic digests, shared by every subsystem that hashes.

The library hashes for three distinct reasons, and all of them must be
reproducible run over run and machine over machine:

* **seeding** — the climate oracle and the acoustic-feature synthesizer
  derive pseudo-random values *from the query itself*
  (:func:`stable_seed`, :func:`stable_unit`), so the same place-time or
  the same species always answers the same;
* **fingerprinting** — the Workflow Adapter proves it changed nothing
  but annotations by hashing a canonical JSON projection of the
  dataflow structure (:func:`canonical_digest`);
* **content addressing** — the preservation vault keys every archived
  payload by its SHA-256 (:func:`sha256_hex`), which is also the fixity
  baseline each audit sweep re-verifies.

Before this module each caller hand-rolled its own ``hashlib.sha256``
recipe; keeping them here means the recipes cannot drift apart and the
vault's CAS keys agree with every other digest in the system.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["stable_digest", "stable_seed", "stable_unit",
           "sha256_hex", "canonical_json", "canonical_digest"]


def stable_digest(*parts: object) -> bytes:
    """SHA-256 of ``parts`` joined by ``|`` (each through ``str``)."""
    return hashlib.sha256("|".join(map(str, parts)).encode()).digest()


def stable_seed(*parts: object) -> int:
    """A 64-bit seed derived from ``parts`` (for ``default_rng`` etc.)."""
    return int.from_bytes(stable_digest(*parts)[:8], "big")


def stable_unit(*parts: object) -> float:
    """Deterministic noise in ``[0, 1)`` derived from ``parts``."""
    return stable_seed(*parts) / 2**64


def sha256_hex(payload: bytes | str) -> str:
    """Hex SHA-256 of a payload (text is hashed as UTF-8)."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def canonical_json(value: Any) -> str:
    """The canonical serialization: sorted keys, ``str`` fallback.

    Equal values always serialize identically, so digests of the result
    are stable across processes — the property both the structure
    fingerprint and the vault's content addressing rely on.
    """
    return json.dumps(value, sort_keys=True, default=str)


def canonical_digest(value: Any) -> str:
    """Hex SHA-256 of :func:`canonical_json` of ``value``."""
    return sha256_hex(canonical_json(value))
