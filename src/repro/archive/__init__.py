"""The preservation vault — durable storage for Table I's promises.

The paper's preservation levels (:mod:`repro.core.preservation`) decide
*what* to keep; this package keeps it for the long term:

* :mod:`repro.archive.cas` — a sha256-keyed, deduplicating
  content-addressed object store on the storage engine;
* :mod:`repro.archive.replicas` — N-way replica groups with quorum
  reads and retry/backoff repair;
* :mod:`repro.archive.fixity` — scheduled digest re-verification,
  every sweep recorded as an OPM provenance run;
* :mod:`repro.archive.migration` — era-driven format migration with
  ``wasDerivedFrom`` provenance between CAS digests;
* :mod:`repro.archive.vault` — the :class:`PreservationVault` facade
  (``ingest / verify / repair / migrate / status``), instrumented via
  :mod:`repro.telemetry` and exposed as the ``repro vault`` CLI;
* :mod:`repro.archive.erasure` — pure-python GF(256) k-of-n erasure
  coding (systematic Reed–Solomon);
* :mod:`repro.archive.merkle` — Merkle-tree manifests for O(log n)
  cross-site fixity sync;
* :mod:`repro.archive.sites` — the simulated multi-site topology
  (regions, latency, outages, bit rot, sampling scrubs);
* :mod:`repro.archive.placement` — per-level redundancy schemes and
  geo-aware, latency-weighted placement;
* :mod:`repro.archive.federation` — the :class:`FederatedVault`
  facade tying all of the above together (``store / fetch / sync /
  audit / rebuild``), with every sync, audit and rebuild persisted as
  an OPM provenance run.
"""

from repro.archive.cas import ContentAddressedStore, ObjectStat
from repro.archive.clock import TickClock
from repro.archive.erasure import Shard, encode, overhead, reconstruct, shard_size
from repro.archive.federation import (
    AuditSampleReport,
    FederatedObject,
    FederatedVault,
    Placement,
    RebuildReport,
    SyncReport,
)
from repro.archive.fixity import AuditReport, FixityAuditor
from repro.archive.merkle import ManifestDiff, MerkleManifest
from repro.archive.migration import (
    FormatMigrationPlanner,
    MigrationPlan,
    MigrationReport,
    MigrationStep,
    at_risk_formats,
)
from repro.archive.placement import (
    PlacementPolicy,
    RedundancyScheme,
    erasure_durability,
    replica_durability,
)
from repro.archive.replicas import RepairAction, ReplicaGroup, ReplicaStatus
from repro.archive.sites import ScrubFinding, Site, SiteTopology
from repro.archive.vault import IngestReport, PreservationVault, RepairReport

__all__ = [
    "AuditReport",
    "AuditSampleReport",
    "ContentAddressedStore",
    "FederatedObject",
    "FederatedVault",
    "FixityAuditor",
    "FormatMigrationPlanner",
    "IngestReport",
    "ManifestDiff",
    "MerkleManifest",
    "MigrationPlan",
    "MigrationReport",
    "MigrationStep",
    "ObjectStat",
    "Placement",
    "PlacementPolicy",
    "PreservationVault",
    "RebuildReport",
    "RedundancyScheme",
    "RepairAction",
    "RepairReport",
    "ReplicaGroup",
    "ReplicaStatus",
    "ScrubFinding",
    "Shard",
    "Site",
    "SiteTopology",
    "SyncReport",
    "TickClock",
    "at_risk_formats",
    "encode",
    "erasure_durability",
    "overhead",
    "reconstruct",
    "replica_durability",
    "shard_size",
]
