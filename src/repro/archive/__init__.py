"""The preservation vault — durable storage for Table I's promises.

The paper's preservation levels (:mod:`repro.core.preservation`) decide
*what* to keep; this package keeps it for the long term:

* :mod:`repro.archive.cas` — a sha256-keyed, deduplicating
  content-addressed object store on the storage engine;
* :mod:`repro.archive.replicas` — N-way replica groups with quorum
  reads and retry/backoff repair;
* :mod:`repro.archive.fixity` — scheduled digest re-verification,
  every sweep recorded as an OPM provenance run;
* :mod:`repro.archive.migration` — era-driven format migration with
  ``wasDerivedFrom`` provenance between CAS digests;
* :mod:`repro.archive.vault` — the :class:`PreservationVault` facade
  (``ingest / verify / repair / migrate / status``), instrumented via
  :mod:`repro.telemetry` and exposed as the ``repro vault`` CLI.
"""

from repro.archive.cas import ContentAddressedStore, ObjectStat
from repro.archive.clock import TickClock
from repro.archive.fixity import AuditReport, FixityAuditor
from repro.archive.migration import (
    FormatMigrationPlanner,
    MigrationPlan,
    MigrationReport,
    MigrationStep,
    at_risk_formats,
)
from repro.archive.replicas import RepairAction, ReplicaGroup, ReplicaStatus
from repro.archive.vault import IngestReport, PreservationVault, RepairReport

__all__ = [
    "AuditReport",
    "ContentAddressedStore",
    "FixityAuditor",
    "FormatMigrationPlanner",
    "IngestReport",
    "MigrationPlan",
    "MigrationReport",
    "MigrationStep",
    "ObjectStat",
    "PreservationVault",
    "RepairAction",
    "RepairReport",
    "ReplicaGroup",
    "ReplicaStatus",
    "TickClock",
    "at_risk_formats",
]
