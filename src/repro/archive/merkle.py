"""Merkle-tree manifests: cross-site fixity sync in O(log n).

A full cross-site sweep re-hashes every payload on every site — fine at
thousands of objects, hopeless at millions.  A :class:`MerkleManifest`
summarizes one site's holdings as a fixed-fanout hash tree over the hex
digest space:

* a **leaf entry** is ``(object digest, state hash)`` — the state hash
  is what the site last observed the stored bytes hashing to (equal to
  the object digest while the copy is healthy, different after its
  local scrubber finds rot, absent after a drop);
* entries live in buckets addressed by the first ``depth`` nibbles of
  the object digest; a bucket's hash covers its sorted entries;
* an internal node's hash covers its 16 children's hashes, so two
  manifests with equal roots hold byte-identical state and
  :meth:`MerkleManifest.diff` only descends into subtrees whose hashes
  disagree.

Comparing two 10k-object sites therefore costs one root comparison when
they agree, and ``O(depth · divergent buckets)`` hash comparisons when
they don't — the win measured by ``benchmarks/test_infra_federation.py``.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import ArchiveError
from repro.hashing import sha256_hex

__all__ = ["MerkleManifest", "ManifestDiff", "DEFAULT_DEPTH"]

_FANOUT = 16
#: default tree depth (nibbles of the digest used for bucket addressing)
DEFAULT_DEPTH = 3

_HEX = "0123456789abcdef"
_EMPTY_HASH = sha256_hex(b"")


class ManifestDiff:
    """What two manifests disagree on.

    ``prefixes`` are the diverging bucket prefixes the walk descended
    into (the "changed subtrees"); ``digests`` the object digests whose
    state differs — present on one side only, or present on both with
    different state hashes.
    """

    __slots__ = ("prefixes", "digests", "nodes_compared")

    def __init__(self, prefixes: list[str], digests: list[str],
                 nodes_compared: int) -> None:
        self.prefixes = prefixes
        self.digests = digests
        self.nodes_compared = nodes_compared

    def __bool__(self) -> bool:
        return bool(self.digests)

    def __len__(self) -> int:
        return len(self.digests)

    def __repr__(self) -> str:
        return (
            f"ManifestDiff({len(self.digests)} digest(s) across "
            f"{len(self.prefixes)} bucket(s), "
            f"{self.nodes_compared} nodes compared)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "prefixes": list(self.prefixes),
            "digests": list(self.digests),
            "nodes_compared": self.nodes_compared,
        }


class MerkleManifest:
    """A hash tree over ``{object digest: state hash}`` entries.

    Mutations (:meth:`set`, :meth:`remove`) invalidate only the hashes
    on the touched bucket's path, so keeping a manifest current while a
    site takes writes is O(depth) per operation, not O(n).
    """

    def __init__(self, entries: Mapping[str, str] | None = None,
                 depth: int = DEFAULT_DEPTH) -> None:
        if not 1 <= depth <= 8:
            raise ArchiveError(f"manifest depth {depth} outside [1, 8]")
        self.depth = depth
        self._entries: dict[str, str] = {}
        #: bucket prefix -> {digest: state} (so rehashing one bucket
        #: never scans the whole manifest)
        self._buckets: dict[str, dict[str, str]] = {}
        #: bucket prefix -> sorted-entries hash (lazily rebuilt)
        self._bucket_hashes: dict[str, str] = {}
        self._dirty_buckets: set[str] = set()
        #: internal-node hash cache, invalidated along the touched path
        self._node_cache: dict[str, str] = {}
        self._root: str | None = None
        for digest, state in (entries or {}).items():
            self.set(digest, state)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def __repr__(self) -> str:
        return (
            f"MerkleManifest({len(self._entries)} entries, "
            f"depth={self.depth}, root={self.root[:12]}…)"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def _bucket_of(self, digest: str) -> str:
        prefix = digest[:self.depth].lower()
        if len(prefix) < self.depth or any(c not in _HEX for c in prefix):
            raise ArchiveError(
                f"{digest!r} is not a hex digest of at least "
                f"{self.depth} nibbles"
            )
        return prefix

    def _touch(self, bucket: str) -> None:
        self._dirty_buckets.add(bucket)
        for cut in range(self.depth):
            self._node_cache.pop(bucket[:cut], None)
        self._root = None

    def set(self, digest: str, state: str) -> None:
        """Record (or update) one object's observed state hash."""
        bucket = self._bucket_of(digest)
        if self._entries.get(digest) != state:
            self._entries[digest] = state
            self._buckets.setdefault(bucket, {})[digest] = state
            self._touch(bucket)

    def remove(self, digest: str) -> None:
        """Forget an object (after a drop); absent digests are a no-op."""
        if digest in self._entries:
            del self._entries[digest]
            bucket = self._bucket_of(digest)
            self._buckets.get(bucket, {}).pop(digest, None)
            self._touch(bucket)

    def state(self, digest: str) -> str | None:
        return self._entries.get(digest)

    def entries(self) -> dict[str, str]:
        return dict(self._entries)

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------

    def _bucket_entries(self, bucket: str) -> list[tuple[str, str]]:
        return sorted(self._buckets.get(bucket, {}).items())

    def _bucket_hash(self, bucket: str) -> str:
        if bucket in self._dirty_buckets or bucket not in self._bucket_hashes:
            entries = self._bucket_entries(bucket)
            if entries:
                blob = "\n".join(f"{d}={s}" for d, s in entries)
                self._bucket_hashes[bucket] = sha256_hex(blob)
            else:
                self._bucket_hashes.pop(bucket, None)
            self._dirty_buckets.discard(bucket)
        return self._bucket_hashes.get(bucket, _EMPTY_HASH)

    def node_hash(self, prefix: str) -> str:
        """The subtree hash at ``prefix`` (``""`` = the root)."""
        if len(prefix) >= self.depth:
            return self._bucket_hash(prefix[:self.depth])
        cached = self._node_cache.get(prefix)
        if cached is not None:
            return cached
        children = [self.node_hash(prefix + nibble) for nibble in _HEX]
        if all(child == _EMPTY_HASH for child in children):
            value = _EMPTY_HASH
        else:
            value = sha256_hex("|".join(children))
        self._node_cache[prefix] = value
        return value

    @property
    def root(self) -> str:
        """The manifest's summary hash: equal roots ⇒ equal state."""
        if self._root is None:
            for bucket in list(self._dirty_buckets):
                self._bucket_hash(bucket)
            self._root = self.node_hash("")
        return self._root

    # ------------------------------------------------------------------
    # diffing
    # ------------------------------------------------------------------

    def diff(self, other: "MerkleManifest") -> ManifestDiff:
        """Digests whose state differs between the two manifests,
        found by descending only into diverging subtrees."""
        if self.depth != other.depth:
            raise ArchiveError(
                f"cannot diff manifests of depth {self.depth} and "
                f"{other.depth}"
            )
        prefixes: list[str] = []
        digests: list[str] = []
        compared = 0

        def walk(prefix: str) -> None:
            nonlocal compared
            compared += 1
            if self.node_hash(prefix) == other.node_hash(prefix):
                return
            if len(prefix) >= self.depth:
                prefixes.append(prefix)
                mine = dict(self._bucket_entries(prefix))
                theirs = dict(other._bucket_entries(prefix))
                for digest in sorted(set(mine) | set(theirs)):
                    if mine.get(digest) != theirs.get(digest):
                        digests.append(digest)
                return
            for nibble in _HEX:
                walk(prefix + nibble)

        walk("")
        return ManifestDiff(prefixes, digests, compared)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "depth": self.depth,
            "root": self.root,
            "entries": dict(sorted(self._entries.items())),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "MerkleManifest":
        return cls(dict(document.get("entries", {})),
                   depth=int(document.get("depth", DEFAULT_DEPTH)))

    def iter_entries(self) -> Iterator[tuple[str, str]]:
        yield from sorted(self._entries.items())
