"""k-of-n erasure coding over GF(256).

Full replication keeps durability simple — *r* copies survive any
``r - 1`` losses — but pays ``r``× the bytes.  A Reed–Solomon-style
erasure code stores a payload as ``n`` shards of which **any** ``k``
reconstruct it, for ``n / k``× the bytes: at ``k=4, n=8`` the vault
tolerates four site losses for 2× storage where 3-way replication
tolerates two losses for 3×.

The code is systematic and pure python:

* the payload (padded to a multiple of ``k``) is cut into ``k``
  contiguous data blocks — shards ``0 .. k-1`` *are* the payload;
* for every byte offset, the ``k`` data bytes define the unique
  polynomial of degree ``< k`` over GF(256) passing through points
  ``(0, d_0) .. (k-1, d_{k-1})``; parity shard ``j`` (``k <= j < n``)
  stores the polynomial evaluated at ``x = j``;
* reconstruction Lagrange-interpolates the data points back from any
  ``k`` distinct shards.

Safety over speed: every shard carries a SHA-256 of its own bytes and
of the original payload, so :func:`reconstruct` (a) drops shards whose
bytes no longer match their checksum, (b) refuses to run with fewer
than ``k`` intact shards, and (c) re-hashes the reconstructed payload
against the declared digest before returning — it raises rather than
ever returning wrong bytes.  The property suite in
``tests/archive/test_erasure_properties.py`` pins all three behaviours.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ErasureError
from repro.hashing import sha256_hex

__all__ = ["Shard", "encode", "reconstruct", "shard_size", "overhead"]

#: GF(256) modulus: the AES polynomial x^8 + x^4 + x^3 + x + 1
_POLY = 0x11B

# exp/log tables over the multiplicative group (generator 3 = x + 1)
_EXP = [0] * 512
_LOG = [0] * 256
_value = 1
for _power in range(255):
    _EXP[_power] = _value
    _LOG[_value] = _power
    # multiply by 3 (= x + 1) in GF(256)
    _doubled = _value << 1
    if _doubled & 0x100:
        _doubled ^= _POLY
    _value = (_doubled ^ _value) & 0xFF
for _power in range(255, 512):
    _EXP[_power] = _EXP[_power - 255]


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ErasureError("0 has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def _lagrange_coefficients(xs: Sequence[int], x: int) -> list[int]:
    """Weights ``w_i`` with ``p(x) = Σ w_i · p(xs[i])`` for any
    polynomial ``p`` of degree < ``len(xs)`` (all arithmetic GF(256),
    where addition is XOR so sign vanishes)."""
    weights: list[int] = []
    for i, xi in enumerate(xs):
        numerator = 1
        denominator = 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            numerator = _gf_mul(numerator, x ^ xj)
            denominator = _gf_mul(denominator, xi ^ xj)
        weights.append(_gf_mul(numerator, _gf_inv(denominator)))
    return weights


def shard_size(payload_length: int, k: int) -> int:
    """Bytes per shard: ``ceil(payload_length / k)`` (0 for an empty
    payload) — the declared overhead formula, pinned by the property
    suite."""
    if payload_length <= 0:
        return 0
    return -(-payload_length // k)


def overhead(payload_length: int, k: int, n: int) -> int:
    """Total stored bytes across all ``n`` shards:
    ``n * shard_size(payload_length, k)``."""
    return n * shard_size(payload_length, k)


class Shard:
    """One erasure-coded fragment of a payload."""

    __slots__ = ("index", "k", "n", "payload_length", "payload_digest",
                 "data", "checksum")

    def __init__(self, index: int, k: int, n: int, payload_length: int,
                 payload_digest: str, data: bytes,
                 checksum: str | None = None) -> None:
        self.index = index
        self.k = k
        self.n = n
        self.payload_length = payload_length
        self.payload_digest = payload_digest
        self.data = bytes(data)
        self.checksum = checksum or sha256_hex(self.data)

    @property
    def is_data(self) -> bool:
        return self.index < self.k

    @property
    def size(self) -> int:
        return len(self.data)

    def intact(self) -> bool:
        """Do the shard's bytes still hash to its checksum?"""
        return sha256_hex(self.data) == self.checksum

    def __repr__(self) -> str:
        kind = "data" if self.is_data else "parity"
        return (
            f"Shard({self.index}/{self.n}, k={self.k}, {kind}, "
            f"{self.size} B)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "k": self.k,
            "n": self.n,
            "payload_length": self.payload_length,
            "payload_digest": self.payload_digest,
            "checksum": self.checksum,
            "data": self.data.hex(),
        }

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "Shard":
        return cls(
            int(document["index"]), int(document["k"]),
            int(document["n"]), int(document["payload_length"]),
            str(document["payload_digest"]),
            bytes.fromhex(document["data"]),
            checksum=str(document["checksum"]),
        )


def encode(payload: bytes | str, k: int, n: int) -> list[Shard]:
    """Cut ``payload`` into ``n`` shards, any ``k`` of which
    reconstruct it."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    if not 1 <= k <= n:
        raise ErasureError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n > 255:
        raise ErasureError(
            f"n={n} exceeds the GF(256) evaluation-point budget (255)")
    digest = sha256_hex(payload)
    length = len(payload)
    size = shard_size(length, k)
    padded = payload + b"\x00" * (k * size - length)
    blocks = [padded[i * size:(i + 1) * size] for i in range(k)]

    shards = [
        Shard(i, k, n, length, digest, blocks[i]) for i in range(k)
    ]
    data_points = list(range(k))
    for x in range(k, n):
        weights = _lagrange_coefficients(data_points, x)
        parity = bytearray(size)
        for offset in range(size):
            acc = 0
            for i in range(k):
                acc ^= _gf_mul(weights[i], blocks[i][offset])
            parity[offset] = acc
        shards.append(Shard(x, k, n, length, digest, bytes(parity)))
    return shards


def _consistent_header(shards: Sequence[Shard]) -> tuple[int, int, int, str]:
    headers = {
        (shard.k, shard.n, shard.payload_length, shard.payload_digest)
        for shard in shards
    }
    if len(headers) != 1:
        raise ErasureError(
            f"shards disagree on their coding header ({len(headers)} "
            "distinct k/n/length/digest combinations) — refusing to mix"
        )
    return next(iter(headers))


def reconstruct(shards: Iterable[Shard]) -> bytes:
    """The original payload from any ``k`` intact shards.

    Shards whose bytes fail their own checksum are discarded; if fewer
    than ``k`` intact shards remain, or the reconstructed bytes do not
    hash to the declared payload digest, an :class:`ErasureError` is
    raised — wrong bytes are never returned.
    """
    candidates = list(shards)
    if not candidates:
        raise ErasureError("no shards to reconstruct from")
    k, n, length, digest = _consistent_header(candidates)

    intact: dict[int, Shard] = {}
    corrupt = 0
    for shard in candidates:
        if not 0 <= shard.index < n:
            raise ErasureError(
                f"shard index {shard.index} outside [0, {n})")
        if not shard.intact():
            corrupt += 1
            continue
        intact.setdefault(shard.index, shard)
    if len(intact) < k:
        raise ErasureError(
            f"unrecoverable: {len(intact)} intact shard(s) of the {k} "
            f"required (k={k}, n={n}, {corrupt} failed their checksum)"
        )

    size = shard_size(length, k)
    blocks: list[bytes | None] = [None] * k
    for index in range(k):
        if index in intact:
            blocks[index] = intact[index].data

    missing = [index for index in range(k) if blocks[index] is None]
    if missing:
        # interpolate from the k lexically-smallest intact shards
        basis = sorted(intact)[:k]
        basis_blocks = [intact[index].data for index in basis]
        for target in missing:
            weights = _lagrange_coefficients(basis, target)
            block = bytearray(size)
            for offset in range(size):
                acc = 0
                for i in range(k):
                    acc ^= _gf_mul(weights[i], basis_blocks[i][offset])
                block[offset] = acc
            blocks[target] = bytes(block)

    for index, block in enumerate(blocks):
        if block is not None and len(block) != size:
            raise ErasureError(
                f"shard {index} is {len(block)} B, expected {size} B")
    payload = b"".join(blocks)[:length]  # type: ignore[arg-type] - Nones reconstructed above
    if sha256_hex(payload) != digest:
        raise ErasureError(
            "reconstructed payload fails its fixity check "
            f"(got {sha256_hex(payload)[:12]}…, "
            f"declared {digest[:12]}…)"
        )
    return payload
