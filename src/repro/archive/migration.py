"""Format-migration planning: outrunning media and codec obsolescence.

The paper's preservation levels say *what* to keep; this module keeps
it **readable**.  :mod:`repro.sounds.formats` knows each sound format's
production era, so a format whose era closes before the planning
horizon (magnetic tape ends in 2000, ATRAC in 2013) is *at risk*: the
bytes may be intact in the vault while the means to decode them
disappear.

The planner flags at-risk record payloads, plans **level-preserving**
migrations (the derived artifact inherits the source's preservation
level and the governing
:class:`~repro.core.preservation.PreservationPolicy` — migrating must
never silently demote Table I capability), and executes them through
the replica group: read the source under quorum, rewrite the format
field, store the derivative content-addressed.

Every executed migration is provenance: the derived artifact
``wasDerivedFrom`` the source artifact — both named by CAS digest, so
the link survives any amount of replica churn — and the migration
process records which format era forced the move.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.archive.clock import TickClock
from repro.archive.replicas import ReplicaGroup
from repro.core.preservation import PreservationPolicy
from repro.errors import MigrationError
from repro.hashing import canonical_json
from repro.provenance.opm import OPMGraph
from repro.provenance.repository import ProvenanceRepository
from repro.sounds.formats import SOUND_FORMATS, Era
from repro.workflow.trace import ProcessorRun, WorkflowTrace

__all__ = ["MigrationStep", "MigrationPlan", "MigrationReport",
           "FormatMigrationPlanner", "at_risk_formats",
           "MIGRATION_WORKFLOW"]

MIGRATION_WORKFLOW = "format_migration"


def at_risk_formats(horizon_year: int) -> list[Era]:
    """Formats whose production era closes before ``horizon_year`` —
    decodable today, plausibly not for the policy's whole lifetime."""
    return [era for era in SOUND_FORMATS if era.last_year < horizon_year]


class MigrationStep:
    """One planned migration of one archived payload."""

    __slots__ = ("object_id", "source_digest", "from_format", "to_format",
                 "level")

    def __init__(self, object_id: str, source_digest: str,
                 from_format: str, to_format: str, level: int) -> None:
        self.object_id = object_id
        self.source_digest = source_digest
        self.from_format = from_format
        self.to_format = to_format
        self.level = level

    def __repr__(self) -> str:
        return (
            f"MigrationStep({self.object_id}: {self.from_format} -> "
            f"{self.to_format}, level {self.level})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "object_id": self.object_id,
            "source_digest": self.source_digest,
            "from_format": self.from_format,
            "to_format": self.to_format,
            "level": self.level,
        }


class MigrationPlan:
    """Every step the planner decided on, plus the policy behind it."""

    def __init__(self, steps: Sequence[MigrationStep],
                 policy: PreservationPolicy, horizon_year: int,
                 target_format: str) -> None:
        self.steps = list(steps)
        self.policy = policy
        self.horizon_year = horizon_year
        self.target_format = target_format

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return (
            f"MigrationPlan({len(self.steps)} steps -> "
            f"{self.target_format!r}, horizon {self.horizon_year})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "horizon_year": self.horizon_year,
            "target_format": self.target_format,
            "policy": repr(self.policy),
            "steps": [step.to_dict() for step in self.steps],
        }


class MigrationReport:
    """What an executed plan produced."""

    def __init__(self, run_id: str | None,
                 migrations: Sequence[dict[str, Any]]) -> None:
        self.run_id = run_id
        self.migrations = list(migrations)

    def __len__(self) -> int:
        return len(self.migrations)

    def __repr__(self) -> str:
        return f"MigrationReport({self.run_id}, {len(self.migrations)})"

    def to_dict(self) -> dict[str, Any]:
        return {"run_id": self.run_id, "migrations": list(self.migrations)}


class FormatMigrationPlanner:
    """Plans and executes era-driven format migrations.

    Parameters
    ----------
    group:
        The replica group holding the payloads.
    provenance:
        Where migration runs are persisted as OPM graphs.
    agent_id:
        The OPM agent controlling migrations.
    clock:
        ``now() -> datetime``; deterministic tick clock by default.
    """

    def __init__(self, group: ReplicaGroup,
                 provenance: ProvenanceRepository | None = None,
                 agent_id: str = "agent/migration-planner",
                 clock: Any | None = None) -> None:
        self.group = group
        # `is not None`: an empty (falsy) repository must still be used
        self.provenance = (provenance if provenance is not None
                           else ProvenanceRepository())
        self.agent_id = agent_id
        self.clock = clock or TickClock()
        self._runs = 0

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, entries: Sequence[Mapping[str, Any]],
             policy: PreservationPolicy,
             horizon_year: int = 2014,
             target_format: str = "WAV") -> MigrationPlan:
        """Decide which of ``entries`` need migrating.

        ``entries`` are manifest-shaped mappings with ``object_id``,
        ``digest``, ``format`` and ``level`` keys (the vault passes its
        record manifest rows directly).
        """
        target = next((era for era in SOUND_FORMATS
                       if era.name == target_format), None)
        if target is None:
            raise MigrationError(f"unknown target format {target_format!r}")
        if target.last_year < horizon_year:
            raise MigrationError(
                f"target {target_format!r} is itself at risk by "
                f"{horizon_year} (era ends {target.last_year})"
            )
        risky = {era.name for era in at_risk_formats(horizon_year)}
        steps = [
            MigrationStep(entry["object_id"], entry["digest"],
                          entry["format"], target_format,
                          int(entry["level"]))
            for entry in entries
            if entry.get("format") in risky
        ]
        return MigrationPlan(steps, policy, horizon_year, target_format)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, plan: MigrationPlan) -> MigrationReport:
        """Run every step; returns the report (with its provenance run
        id) — an empty plan records nothing."""
        if not plan.steps:
            return MigrationReport(None, [])
        self._runs += 1
        run_id = f"migration/run-{self._runs:04d}"
        started = self.clock.now()

        trace = WorkflowTrace(run_id, MIGRATION_WORKFLOW, started)
        trace.inputs = {"plan": plan.to_dict()}
        graph = OPMGraph(run_id)
        graph.add_agent(self.agent_id, label="format migration planner")

        migrations: list[dict[str, Any]] = []
        for index, step in enumerate(plan.steps, start=1):
            payload = self.group.read(step.source_digest)
            document = json.loads(payload)
            if not isinstance(document, dict):
                raise MigrationError(
                    f"{step.object_id}: payload is not a record document"
                )
            document["sound_file_format"] = step.to_format
            derived_payload = canonical_json(document)
            derived_digest = self.group.put(derived_payload)

            process_id = f"{run_id}/migrate-{index:04d}"
            source_id = f"cas:{step.source_digest}"
            derived_id = f"cas:{derived_digest}"
            graph.add_process(process_id, label="format migration",
                              annotations={
                                  "object_id": step.object_id,
                                  "from_format": step.from_format,
                                  "to_format": step.to_format,
                                  "level": step.level,
                                  "lifetime_years":
                                      plan.policy.lifetime_years,
                              })
            graph.was_controlled_by(process_id, self.agent_id,
                                    role="planner")
            graph.add_artifact(source_id, label=source_id,
                               annotations={"format": step.from_format})
            graph.add_artifact(derived_id, label=derived_id,
                               annotations={"format": step.to_format,
                                            "level": step.level})
            graph.used(process_id, source_id, role="source")
            graph.was_generated_by(derived_id, process_id, role="derived")
            graph.was_derived_from(derived_id, source_id)

            step_started = self.clock.now()
            trace.record_run(ProcessorRun(
                f"migrate:{step.object_id}", "format_migration",
                step_started, self.clock.now(),
            ))
            migrations.append({
                "object_id": step.object_id,
                "source_digest": step.source_digest,
                "derived_digest": derived_digest,
                "from_format": step.from_format,
                "to_format": step.to_format,
                "level": step.level,
            })

        report = MigrationReport(run_id, migrations)
        trace.outputs = report.to_dict()
        trace.finish(self.clock.now(), "completed")
        self.provenance.store_run(trace, graph)
        return report
