"""The vault's deterministic clock.

Audit, repair and migration runs are provenance like any other run:
they carry timestamps.  Wall time would make every run unique and every
test flaky, so the vault ticks a :class:`TickClock` — a simulated clock
advancing a fixed step per reading, the same convention as the workflow
engine's ``SimulatedClock`` — unless the caller supplies a clock of
their own (``now() -> datetime``).
"""

from __future__ import annotations

import datetime as _dt

__all__ = ["TickClock", "VAULT_EPOCH"]

#: the vault's default timeline origin (tz-aware, like DEFAULT_EPOCH)
VAULT_EPOCH = _dt.datetime(2014, 1, 1, tzinfo=_dt.timezone.utc)


class TickClock:
    """A clock advancing ``step_seconds`` every time it is read."""

    __slots__ = ("_now", "step_seconds")

    def __init__(self, start: _dt.datetime = VAULT_EPOCH,
                 step_seconds: float = 1.0) -> None:
        self._now = start
        self.step_seconds = step_seconds

    def now(self) -> _dt.datetime:
        current = self._now
        self._now = current + _dt.timedelta(seconds=self.step_seconds)
        return current

    def peek(self) -> _dt.datetime:
        """The next reading, without advancing."""
        return self._now
