"""Fixity auditing: scheduled digest re-verification, as provenance.

A :class:`FixityAuditor` sweeps every object of a
:class:`~repro.archive.replicas.ReplicaGroup`, re-hashes each replica's
bytes against the content digest, and reports what it found.  The
preservation literature's demand — *who verified what, when, against
which digest* — is met by recording **every sweep as an OPM graph** in
the :class:`~repro.provenance.repository.ProvenanceRepository`:

* the sweep is a ``Process`` controlled by the auditor ``Agent``;
* every checked object is an ``Artifact`` named ``cas:<digest>``
  (the digest *is* the identity, so the claim is auditable later);
* a ``used`` edge per object carries the verdict in its role
  (``verified`` / ``flagged``), and the artifact's annotations record
  the per-store states.

Repairs are provenance too (:meth:`FixityAuditor.record_repair`): each
rebuilt replica becomes a ``replica:<store>/<digest>`` artifact
``wasGeneratedBy`` the repair process and ``wasDerivedFrom`` the
logical object — so a reader of the repository can reconstruct the
whole custody chain: ingested, verified, rotted, repaired, verified
again.

Corruption *injection* for drills lives on the store
(:meth:`~repro.archive.cas.ContentAddressedStore.corrupt`); the auditor
only ever detects.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.archive.clock import TickClock
from repro.archive.replicas import RepairAction, ReplicaGroup, ReplicaStatus
from repro.provenance.opm import OPMGraph
from repro.provenance.repository import ProvenanceRepository
from repro.workflow.trace import ProcessorRun, WorkflowTrace

__all__ = ["AuditReport", "FixityAuditor",
           "AUDIT_WORKFLOW", "REPAIR_WORKFLOW"]

AUDIT_WORKFLOW = "fixity_audit"
REPAIR_WORKFLOW = "replica_repair"


class AuditReport:
    """What one sweep established."""

    def __init__(self, run_id: str,
                 statuses: Sequence[ReplicaStatus],
                 bytes_audited: int) -> None:
        self.run_id = run_id
        self.statuses = list(statuses)
        self.bytes_audited = bytes_audited

    @property
    def objects_checked(self) -> int:
        return len(self.statuses)

    @property
    def replicas_checked(self) -> int:
        return sum(len(status.states) for status in self.statuses)

    @property
    def corrupt(self) -> list[tuple[str, str]]:
        """``(digest, store)`` pairs whose bytes no longer verify."""
        return [
            (status.digest, store)
            for status in self.statuses
            for store in status.corrupt_stores
        ]

    @property
    def missing(self) -> list[tuple[str, str]]:
        return [
            (status.digest, store)
            for status in self.statuses
            for store in status.missing_stores
        ]

    @property
    def damaged_digests(self) -> list[str]:
        return sorted({
            status.digest for status in self.statuses if not status.intact
        })

    @property
    def healthy(self) -> bool:
        return not self.damaged_digests

    def __repr__(self) -> str:
        return (
            f"AuditReport({self.run_id}, {self.objects_checked} objects, "
            f"{len(self.corrupt)} corrupt, {len(self.missing)} missing)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "objects_checked": self.objects_checked,
            "replicas_checked": self.replicas_checked,
            "bytes_audited": self.bytes_audited,
            "corrupt": [list(pair) for pair in self.corrupt],
            "missing": [list(pair) for pair in self.missing],
            "healthy": self.healthy,
        }


class FixityAuditor:
    """Sweeps a replica group and records each sweep as provenance.

    Parameters
    ----------
    group:
        The replica group under audit.
    provenance:
        Where audit/repair runs are persisted as OPM graphs.
    agent_id:
        The OPM agent owning the verifications.
    clock:
        ``now() -> datetime``; a fresh deterministic
        :class:`~repro.archive.clock.TickClock` by default.
    """

    def __init__(self, group: ReplicaGroup,
                 provenance: ProvenanceRepository | None = None,
                 agent_id: str = "agent/fixity-auditor",
                 clock: Any | None = None) -> None:
        self.group = group
        # `is not None`: an empty (falsy) repository must still be used
        self.provenance = (provenance if provenance is not None
                           else ProvenanceRepository())
        self.agent_id = agent_id
        self.clock = clock or TickClock()
        self._sweeps = 0
        self._repairs = 0

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------

    def sweep(self, digests: Sequence[str] | None = None) -> AuditReport:
        """Re-verify every replica of every object (or of ``digests``),
        and persist the sweep as an OPM provenance run."""
        self._sweeps += 1
        run_id = f"fixity/sweep-{self._sweeps:04d}"
        started = self.clock.now()
        catalog = list(digests) if digests is not None \
            else self.group.digests()

        statuses: list[ReplicaStatus] = []
        bytes_audited = 0
        for digest in catalog:
            status = self.group.replica_status(digest)
            statuses.append(status)
            for member in self.group.stores:
                if member.exists(digest):
                    bytes_audited += member.stat(digest).size_bytes
        report = AuditReport(run_id, statuses, bytes_audited)

        trace = WorkflowTrace(run_id, AUDIT_WORKFLOW, started)
        trace.inputs = {"objects": len(catalog),
                        "stores": [s.name for s in self.group.stores]}
        for member in self.group.stores:
            store_started = self.clock.now()
            trace.record_run(ProcessorRun(
                f"verify:{member.name}", "fixity_sweep",
                store_started, self.clock.now(),
            ))
        finished = self.clock.now()
        trace.outputs = report.to_dict()
        trace.finish(finished,
                     "completed" if report.healthy else "degraded")

        self.provenance.store_run(trace, self._audit_graph(report, started,
                                                           finished))
        return report

    def _audit_graph(self, report: AuditReport, started: Any,
                     finished: Any) -> OPMGraph:
        graph = OPMGraph(report.run_id)
        process_id = f"{report.run_id}/sweep"
        graph.add_process(process_id, label="fixity audit sweep",
                          annotations={
                              "started": str(started),
                              "finished": str(finished),
                              "objects_checked": report.objects_checked,
                              "replicas_checked": report.replicas_checked,
                              "bytes_audited": report.bytes_audited,
                              "corrupt_found": len(report.corrupt),
                              "missing_found": len(report.missing),
                          })
        graph.add_agent(self.agent_id, label="fixity auditor")
        graph.was_controlled_by(process_id, self.agent_id, role="auditor")
        for status in report.statuses:
            artifact_id = f"cas:{status.digest}"
            graph.add_artifact(artifact_id, label=artifact_id,
                               annotations={"fixity": dict(status.states)})
            graph.used(process_id, artifact_id,
                       role="verified" if status.intact else "flagged")
        return graph

    # ------------------------------------------------------------------
    # repair provenance
    # ------------------------------------------------------------------

    def record_repair(self, actions: Sequence[RepairAction]) -> str | None:
        """Persist one repair run covering ``actions``; returns its run
        id (``None`` when there was nothing to record)."""
        if not actions:
            return None
        self._repairs += 1
        run_id = f"fixity/repair-{self._repairs:04d}"
        started = self.clock.now()

        trace = WorkflowTrace(run_id, REPAIR_WORKFLOW, started)
        trace.inputs = {"replicas_to_repair": len(actions)}
        graph = OPMGraph(run_id)
        process_id = f"{run_id}/repair"
        graph.add_process(process_id, label="replica repair",
                          annotations={
                              "replicas_repaired": len(actions),
                          })
        graph.add_agent(self.agent_id, label="fixity auditor")
        graph.was_controlled_by(process_id, self.agent_id, role="repairer")
        for action in actions:
            source_id = f"cas:{action.digest}"
            graph.add_artifact(source_id, label=source_id)
            graph.used(process_id, source_id,
                       role=f"healthy-source:{action.source}")
            copy_id = f"replica:{action.store}/{action.digest}"
            graph.add_artifact(copy_id, label=copy_id,
                               annotations={"was": action.reason,
                                            "attempts": action.attempts})
            graph.was_generated_by(copy_id, process_id, role="restored")
            graph.was_derived_from(copy_id, source_id)
            run_started = self.clock.now()
            trace.record_run(ProcessorRun(
                f"restore:{action.store}", "replica_repair",
                run_started, self.clock.now(),
            ))
        trace.outputs = {"actions": [a.to_dict() for a in actions]}
        trace.finish(self.clock.now(), "completed")
        self.provenance.store_run(trace, graph)
        return run_id
