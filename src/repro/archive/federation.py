"""The federated multi-site vault.

:class:`FederatedVault` scales the single-group
:class:`~repro.archive.replicas.ReplicaGroup` story out to a simulated
:class:`~repro.archive.sites.SiteTopology`:

* **store** — a payload is made redundant per its preservation level's
  :class:`~repro.archive.placement.RedundancyScheme` (full replicas or
  k-of-n erasure shards) and the fragments are spread across regions by
  the :class:`~repro.archive.placement.PlacementPolicy`;
* **fetch** — reads are latency-weighted: the cheapest available sites
  that can serve the object are tried first, shards are gathered until
  ``k`` verify, and the erasure decoder re-checks the payload digest
  before returning;
* **sync** — every site's *actual* Merkle manifest is diffed against
  the *expected* manifest the placement catalog maintains for it, so a
  fixity sync walks O(log n) diverging subtrees instead of re-hashing
  the site; divergent fragments are repaired from surviving replicas
  or reconstructed from surviving shards;
* **audit** — sampling scrubs re-hash a deterministic fraction of each
  site's holdings, making silent bit rot visible to the manifests (and
  therefore to the next sync);
* **rebuild** — when a site is lost, every fragment it held is
  re-materialized onto replacement sites chosen by the same
  region-spreading rule.

Syncs, audits and rebuilds are preservation events, so — exactly like
:class:`~repro.archive.fixity.FixityAuditor` sweeps — each one is
persisted as an OPM run in the provenance repository, and everything is
instrumented through ``federation_*`` telemetry series.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.archive.clock import TickClock
from repro.archive.erasure import Shard, encode, reconstruct
from repro.archive.merkle import MerkleManifest
from repro.archive.placement import (
    ERASURE,
    FULL_REPLICA,
    PlacementPolicy,
    RedundancyScheme,
    replica_durability,
)
from repro.archive.sites import ScrubFinding, Site, SiteTopology
from repro.errors import (
    ArchiveError,
    ErasureError,
    FixityError,
    ObjectMissingError,
    PlacementError,
    SiteUnavailableError,
)
from repro.hashing import canonical_json, sha256_hex
from repro.provenance.opm import OPMGraph
from repro.provenance.repository import ProvenanceRepository
from repro.telemetry import Telemetry, get_telemetry
from repro.workflow.trace import ProcessorRun, WorkflowTrace

__all__ = ["FederatedVault", "FederatedObject", "Placement",
           "SyncReport", "AuditSampleReport", "RebuildReport",
           "SYNC_WORKFLOW", "AUDIT_WORKFLOW", "REBUILD_WORKFLOW"]

SYNC_WORKFLOW = "federation_sync"
AUDIT_WORKFLOW = "federation_audit"
REBUILD_WORKFLOW = "site_rebuild"


class Placement:
    """One fragment of one object on one site."""

    __slots__ = ("site", "role", "stored", "fragment_bytes")

    def __init__(self, site: str, role: str, stored: str,
                 fragment_bytes: int) -> None:
        self.site = site
        self.role = role            # "replica" | "shard:<index>"
        self.stored = stored        # the fragment's key in the site CAS
        self.fragment_bytes = fragment_bytes

    @property
    def shard_index(self) -> int | None:
        if self.role.startswith("shard:"):
            return int(self.role.split(":", 1)[1])
        return None

    def __repr__(self) -> str:
        return f"Placement({self.role} on {self.site})"

    def to_dict(self) -> dict[str, Any]:
        return {"site": self.site, "role": self.role,
                "stored": self.stored,
                "fragment_bytes": self.fragment_bytes}


class FederatedObject:
    """The placement catalog's row for one logical object."""

    __slots__ = ("digest", "level", "scheme", "size_bytes", "placements")

    def __init__(self, digest: str, level: int, scheme: RedundancyScheme,
                 size_bytes: int,
                 placements: Sequence[Placement]) -> None:
        self.digest = digest
        self.level = level
        self.scheme = scheme
        self.size_bytes = size_bytes
        self.placements = list(placements)

    def placements_on(self, site: str) -> list[Placement]:
        return [p for p in self.placements if p.site == site]

    def __repr__(self) -> str:
        return (
            f"FederatedObject({self.digest[:12]}…, level={self.level}, "
            f"{self.scheme!r}, {len(self.placements)} fragments)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "level": self.level,
            "scheme": self.scheme.to_dict(),
            "size_bytes": self.size_bytes,
            "placements": [p.to_dict() for p in self.placements],
        }


class SyncReport:
    """What one cross-site sync established and repaired."""

    def __init__(self, run_id: str | None) -> None:
        self.run_id = run_id
        self.sites_synced: list[str] = []
        self.diverged: list[dict[str, Any]] = []   # {site, stored, prefixes}
        self.repaired: list[dict[str, Any]] = []   # {site, role, digest, reason}
        self.unrecoverable: list[dict[str, Any]] = []
        self.nodes_compared = 0

    @property
    def healthy(self) -> bool:
        return not self.diverged

    def __repr__(self) -> str:
        return (
            f"SyncReport({self.run_id}, {len(self.diverged)} diverged, "
            f"{len(self.repaired)} repaired)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "sites_synced": list(self.sites_synced),
            "diverged": list(self.diverged),
            "repaired": list(self.repaired),
            "unrecoverable": list(self.unrecoverable),
            "nodes_compared": self.nodes_compared,
            "healthy": self.healthy,
        }


class AuditSampleReport:
    """What one sampling scrub pass found."""

    def __init__(self, run_id: str, sample_fraction: float,
                 objects_scrubbed: int,
                 findings: Sequence[ScrubFinding]) -> None:
        self.run_id = run_id
        self.sample_fraction = sample_fraction
        self.objects_scrubbed = objects_scrubbed
        self.findings = list(findings)

    @property
    def healthy(self) -> bool:
        return not self.findings

    def __repr__(self) -> str:
        return (
            f"AuditSampleReport({self.run_id}, "
            f"{self.objects_scrubbed} scrubbed, "
            f"{len(self.findings)} finding(s))"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "sample_fraction": self.sample_fraction,
            "objects_scrubbed": self.objects_scrubbed,
            "findings": [f.to_dict() for f in self.findings],
            "healthy": self.healthy,
        }


class RebuildReport:
    """Fragments re-materialized after a site loss."""

    def __init__(self, run_id: str | None, lost_site: str) -> None:
        self.run_id = run_id
        self.lost_site = lost_site
        self.rebuilt: list[dict[str, Any]] = []
        self.unrecoverable: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.rebuilt)

    def __repr__(self) -> str:
        return (
            f"RebuildReport({self.lost_site}: {len(self.rebuilt)} "
            f"rebuilt, {len(self.unrecoverable)} unrecoverable)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "lost_site": self.lost_site,
            "rebuilt": list(self.rebuilt),
            "unrecoverable": list(self.unrecoverable),
        }


def _shard_envelope(shard: Shard) -> str:
    return canonical_json(shard.to_dict())


class FederatedVault:
    """Erasure-coded, Merkle-audited storage across a site topology.

    Parameters
    ----------
    topology:
        The sites fragments land on.
    policy:
        Per-level redundancy schemes + geo-aware site selection; the
        default policy erasure-codes levels 1–2 (k=4, n=8) and keeps
        three full replicas for levels 3–4.
    provenance:
        Repository receiving sync/audit/rebuild runs as OPM graphs.
    telemetry:
        Metrics sink (``federation_*`` series).
    """

    def __init__(self, topology: SiteTopology,
                 policy: PlacementPolicy | None = None,
                 provenance: ProvenanceRepository | None = None,
                 telemetry: Telemetry | None = None,
                 agent_id: str = "agent/federation",
                 clock: Any | None = None) -> None:
        if not len(topology):
            raise ArchiveError("a federated vault needs at least one site")
        self.topology = topology
        self.policy = policy or PlacementPolicy()
        # `is not None`: an empty (falsy) repository must still be used
        self.provenance = (provenance if provenance is not None
                           else ProvenanceRepository())
        self.telemetry = telemetry or get_telemetry()
        self.agent_id = agent_id
        self.clock = clock or TickClock()
        self._catalog: dict[str, FederatedObject] = {}
        #: per site: the manifest of what the catalog says it SHOULD hold
        self._expected: dict[str, MerkleManifest] = {}
        #: stored fragment key -> (object digest, placement)
        self._fragment_index: dict[str, tuple[str, Placement]] = {}
        self._syncs = 0
        self._audits = 0
        self._rebuilds = 0
        self._refresh_site_gauges()

    def __repr__(self) -> str:
        return (
            f"FederatedVault({len(self.topology)} sites, "
            f"{len(self._catalog)} objects)"
        )

    # ------------------------------------------------------------------
    # catalog bookkeeping
    # ------------------------------------------------------------------

    def expected_manifest(self, site_name: str) -> MerkleManifest:
        manifest = self._expected.get(site_name)
        if manifest is None:
            site = self.topology.site(site_name)
            manifest = MerkleManifest(
                depth=site.manifest().depth)
            self._expected[site_name] = manifest
        return manifest

    def _note_placement(self, digest: str, placement: Placement) -> None:
        self.expected_manifest(placement.site).set(placement.stored,
                                                   placement.stored)
        self._fragment_index[placement.stored] = (digest, placement)

    def _forget_placement(self, placement: Placement) -> None:
        self.expected_manifest(placement.site).remove(placement.stored)

    def object(self, digest: str) -> FederatedObject:
        try:
            return self._catalog[digest]
        except KeyError:
            raise ObjectMissingError(
                f"federation: no object {digest!r} in the catalog"
            ) from None

    def objects(self) -> list[FederatedObject]:
        return [self._catalog[d] for d in sorted(self._catalog)]

    def __len__(self) -> int:
        return len(self._catalog)

    def __contains__(self, digest: str) -> bool:
        return digest in self._catalog

    # ------------------------------------------------------------------
    # store
    # ------------------------------------------------------------------

    def store(self, payload: str, level: int = 3,
              scheme: RedundancyScheme | None = None) -> str:
        """Place ``payload`` per its level's redundancy scheme; returns
        the object digest.  Re-storing a known payload is a no-op."""
        digest = sha256_hex(payload)
        if digest in self._catalog:
            return digest
        scheme = scheme or self.policy.scheme_for_level(level)
        size = len(payload.encode("utf-8"))
        metrics = self.telemetry.metrics
        sites = self.policy.choose_sites(self.topology, scheme.fragments)
        placements: list[Placement] = []
        if scheme.kind == FULL_REPLICA:
            for site in sites:
                stored = site.put(payload)
                placements.append(Placement(site.name, "replica", stored,
                                            size))
                metrics.counter("federation_fragments_stored_total",
                                kind="replica").inc()
        else:
            shards = encode(payload.encode("utf-8"), scheme.k, scheme.n)
            for site, shard in zip(sites, shards):
                envelope = _shard_envelope(shard)
                stored = site.put(envelope,
                                  media_type="application/x-shard+json")
                placements.append(Placement(site.name,
                                            f"shard:{shard.index}",
                                            stored, shard.size))
                metrics.counter("federation_fragments_stored_total",
                                kind="shard").inc()
        record = FederatedObject(digest, int(level), scheme, size,
                                 placements)
        self._catalog[digest] = record
        for placement in placements:
            self._note_placement(digest, placement)
        metrics.counter("federation_objects_stored_total",
                        scheme=scheme.kind).inc()
        metrics.counter("federation_bytes_stored_total",
                        scheme=scheme.kind).inc(
            sum(p.fragment_bytes for p in placements))
        self._refresh_site_gauges()
        return digest

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def fetch(self, digest: str) -> str:
        """The payload, gathered from the cheapest sites that can serve
        it, fixity-verified end to end."""
        record = self.object(digest)
        metrics = self.telemetry.metrics
        if record.scheme.kind == FULL_REPLICA:
            ordered = self.policy.read_order(
                [self.topology.site(p.site) for p in record.placements])
            for site in ordered:
                try:
                    payload = site.get_verified(digest)
                except (SiteUnavailableError, ObjectMissingError,
                        FixityError):
                    continue
                metrics.counter("federation_reads_total",
                                scheme=FULL_REPLICA).inc()
                return payload
            raise ArchiveError(
                f"object {digest[:12]}…: no replica site could serve a "
                f"verified copy (tried {len(ordered)})"
            )
        # cheapest sites first; a site may hold several shards after a
        # degraded rebuild, so walk placements, not sites
        ordered = sorted(
            record.placements,
            key=lambda p: (self.topology.site(p.site).latency_ms,
                           p.site, p.role))
        shards: list[Shard] = []
        seen_indexes: set[int] = set()
        for placement in ordered:
            if len(shards) >= record.scheme.k:
                break
            site = self.topology.site(placement.site)
            if not site.available:
                continue
            try:
                envelope = site.get_verified(placement.stored)
            except (SiteUnavailableError, ObjectMissingError,
                    FixityError):
                continue
            shard = Shard.from_dict(json.loads(envelope))
            if shard.intact() and shard.index not in seen_indexes:
                shards.append(shard)
                seen_indexes.add(shard.index)
        try:
            payload = reconstruct(shards)
        except ErasureError as exc:
            raise ArchiveError(
                f"object {digest[:12]}…: erasure reconstruction failed "
                f"({exc})"
            ) from exc
        metrics.counter("federation_reads_total", scheme=ERASURE).inc()
        return payload.decode("utf-8")

    # ------------------------------------------------------------------
    # fragment repair machinery
    # ------------------------------------------------------------------

    def _materialize_fragment(self, record: FederatedObject,
                              placement: Placement,
                              target: Site) -> None:
        """(Re)create one fragment on ``target`` from surviving copies."""
        if placement.role == "replica":
            payload = self._payload_from_elsewhere(record, exclude=())
            target.restore(placement.stored, payload)
            return
        payload = self.fetch(record.digest)
        shards = encode(payload.encode("utf-8"), record.scheme.k,
                        record.scheme.n)
        shard = shards[placement.shard_index]
        envelope = _shard_envelope(shard)
        if sha256_hex(envelope) != placement.stored:
            raise ArchiveError(
                f"re-encoded shard {placement.role} of "
                f"{record.digest[:12]}… does not match its cataloged "
                "fragment key"
            )
        target.restore(placement.stored, envelope,
                       media_type="application/x-shard+json")

    def _payload_from_elsewhere(self, record: FederatedObject,
                                exclude: Sequence[str]) -> str:
        excluded = set(exclude)
        ordered = self.policy.read_order([
            self.topology.site(p.site) for p in record.placements
            if p.site not in excluded and p.role == "replica"
        ])
        for site in ordered:
            try:
                return site.get_verified(record.digest)
            except (SiteUnavailableError, ObjectMissingError,
                    FixityError):
                continue
        raise ArchiveError(
            f"object {record.digest[:12]}…: no healthy replica left to "
            "repair from"
        )

    # ------------------------------------------------------------------
    # sync
    # ------------------------------------------------------------------

    def sync(self, site_name: str | None = None) -> SyncReport:
        """Diff every site's actual manifest against its expected one,
        repair divergent fragments, and persist the sync as an OPM run.

        The walk is Merkle-cheap: agreeing subtrees cost one hash
        comparison, so a clean 10k-object site syncs in O(1) and a
        damaged one in O(depth · divergent buckets).
        """
        self._syncs += 1
        run_id = f"federation/sync-{self._syncs:04d}"
        report = SyncReport(run_id)
        started = self.clock.now()
        trace = WorkflowTrace(run_id, SYNC_WORKFLOW, started)
        metrics = self.telemetry.metrics
        metrics.counter("federation_sync_runs_total").inc()

        sites = ([self.topology.site(site_name)] if site_name
                 else self.topology.available_sites())
        for site in sites:
            if not site.available:
                continue
            report.sites_synced.append(site.name)
            step_started = self.clock.now()
            diff = site.manifest().diff(self.expected_manifest(site.name))
            report.nodes_compared += diff.nodes_compared
            expected = self.expected_manifest(site.name)
            for stored in diff.digests:
                entry = self._fragment_index.get(stored)
                if entry is None or expected.state(stored) is None:
                    # present at the site but not expected there — a
                    # stray from a retired or relocated placement;
                    # drop it rather than "repair" it back into place
                    if site.store.exists(stored):
                        site.drop(stored)
                    else:
                        site.manifest().remove(stored)
                    report.repaired.append({
                        "site": site.name, "role": "stray",
                        "digest": stored, "reason": "unexpected",
                    })
                    metrics.counter("federation_sync_repairs_total",
                                    reason="unexpected").inc()
                    continue
                digest, placement = entry
                record = self.object(digest)
                actual_state = site.manifest().state(stored)
                reason = ("missing" if actual_state is None
                          else "corrupt")
                report.diverged.append({
                    "site": site.name, "stored": stored,
                    "digest": digest, "reason": reason,
                    "prefixes": [p for p in diff.prefixes
                                 if stored.startswith(p)],
                })
                try:
                    self._materialize_fragment(record, placement, site)
                except ArchiveError as exc:
                    report.unrecoverable.append({
                        "site": site.name, "digest": digest,
                        "role": placement.role, "error": str(exc),
                    })
                    metrics.counter("federation_sync_unrecoverable_total"
                                    ).inc()
                    continue
                report.repaired.append({
                    "site": site.name, "role": placement.role,
                    "digest": digest, "reason": reason,
                })
                metrics.counter("federation_sync_repairs_total",
                                reason=reason).inc()
            trace.record_run(ProcessorRun(
                f"sync:{site.name}", "federation_sync",
                step_started, self.clock.now(),
            ))

        finished = self.clock.now()
        trace.inputs = {"sites": report.sites_synced}
        trace.outputs = report.to_dict()
        trace.finish(finished,
                     "completed" if not report.unrecoverable
                     else "degraded")
        self.provenance.store_run(
            trace, self._sync_graph(report, started, finished))
        self._refresh_site_gauges()
        return report

    def _sync_graph(self, report: SyncReport, started: Any,
                    finished: Any) -> OPMGraph:
        graph = OPMGraph(report.run_id)
        process_id = f"{report.run_id}/sync"
        graph.add_process(process_id, label="federated manifest sync",
                          annotations={
                              "started": str(started),
                              "finished": str(finished),
                              "sites": list(report.sites_synced),
                              "nodes_compared": report.nodes_compared,
                              "diverged": len(report.diverged),
                              "repaired": len(report.repaired),
                          })
        graph.add_agent(self.agent_id, label="federation manager")
        graph.was_controlled_by(process_id, self.agent_id, role="sync")
        for repair in report.repaired:
            if repair["role"] == "stray":
                continue
            source_id = f"cas:{repair['digest']}"
            if not graph.has_node(source_id):
                graph.add_artifact(source_id, label=source_id)
                graph.used(process_id, source_id, role="healthy-source")
            fragment_id = (f"fragment:{repair['site']}/"
                           f"{repair['role']}/{repair['digest']}")
            graph.add_artifact(fragment_id, label=fragment_id,
                               annotations={"was": repair["reason"]})
            graph.was_generated_by(fragment_id, process_id,
                                   role="restored")
            graph.was_derived_from(fragment_id, source_id)
        return graph

    # ------------------------------------------------------------------
    # sampling audit
    # ------------------------------------------------------------------

    def audit_sample(self, sample_fraction: float = 0.1,
                     seed: int = 0) -> AuditSampleReport:
        """Scrub a deterministic sample of every available site's
        holdings; findings update the sites' manifests (so the next
        :meth:`sync` localizes and repairs them) and the pass is
        persisted as an OPM run."""
        self._audits += 1
        run_id = f"federation/audit-{self._audits:04d}"
        started = self.clock.now()
        trace = WorkflowTrace(run_id, AUDIT_WORKFLOW, started)
        metrics = self.telemetry.metrics
        findings: list[ScrubFinding] = []
        scrubbed = 0
        for site in self.topology.available_sites():
            step_started = self.clock.now()
            catalog_size = len(site.store)
            site_findings = site.scrub(sample_fraction=sample_fraction,
                                       seed=seed + self._audits)
            findings.extend(site_findings)
            scrubbed += (max(1, round(catalog_size * sample_fraction))
                         if catalog_size else 0)
            trace.record_run(ProcessorRun(
                f"scrub:{site.name}", "federation_audit",
                step_started, self.clock.now(),
            ))
        report = AuditSampleReport(run_id, sample_fraction, scrubbed,
                                   findings)
        metrics.counter("federation_audit_scrubs_total").inc()
        metrics.counter("federation_objects_scrubbed_total").inc(scrubbed)
        for finding in findings:
            metrics.counter("federation_corruptions_found_total",
                            state=finding.state).inc()

        finished = self.clock.now()
        trace.inputs = {"sample_fraction": sample_fraction,
                        "sites": [s.name for s in
                                  self.topology.available_sites()]}
        trace.outputs = report.to_dict()
        trace.finish(finished,
                     "completed" if report.healthy else "degraded")
        graph = OPMGraph(run_id)
        process_id = f"{run_id}/scrub"
        graph.add_process(process_id, label="federated sampling audit",
                          annotations={
                              "started": str(started),
                              "finished": str(finished),
                              "sample_fraction": sample_fraction,
                              "objects_scrubbed": scrubbed,
                              "findings": len(findings),
                          })
        graph.add_agent(self.agent_id, label="federation manager")
        graph.was_controlled_by(process_id, self.agent_id, role="auditor")
        for finding in findings:
            artifact_id = f"fragment:{finding.site}/{finding.digest}"
            graph.add_artifact(artifact_id, label=artifact_id,
                               annotations={"state": finding.state})
            graph.used(process_id, artifact_id, role="flagged")
        self.provenance.store_run(trace, graph)
        return report

    # ------------------------------------------------------------------
    # rebuild on site loss
    # ------------------------------------------------------------------

    def rebuild_site(self, lost_site: str) -> RebuildReport:
        """Re-materialize every fragment the lost site held onto
        replacement sites (region-spread, excluding the dead site and
        sites already holding a fragment of the same object), update
        the placement catalog, and persist the rebuild as an OPM run."""
        lost = self.topology.site(lost_site)
        if lost.available:
            raise ArchiveError(
                f"site {lost_site} is still available; fail it first "
                "(topology.fail_site) before rebuilding away from it"
            )
        self._rebuilds += 1
        run_id = f"federation/rebuild-{self._rebuilds:04d}"
        report = RebuildReport(run_id, lost_site)
        started = self.clock.now()
        trace = WorkflowTrace(run_id, REBUILD_WORKFLOW, started)
        metrics = self.telemetry.metrics

        graph = OPMGraph(run_id)
        process_id = f"{run_id}/rebuild"
        graph.add_agent(self.agent_id, label="federation manager")

        for record in self.objects():
            for placement in record.placements_on(lost_site):
                step_started = self.clock.now()
                occupied = [p.site for p in record.placements]
                try:
                    try:
                        replacement = self.policy.choose_sites(
                            self.topology, 1,
                            exclude=[lost_site, *occupied])[0]
                    except PlacementError:
                        if placement.role == "replica":
                            # a replica doubled up on a site it already
                            # occupies adds no redundancy — give up
                            raise
                        # too few sites to keep every shard distinct:
                        # degrade gracefully by doubling up (distinct
                        # CAS keys, so nothing collides)
                        replacement = self.policy.choose_sites(
                            self.topology, 1, exclude=[lost_site])[0]
                    self._materialize_fragment(record, placement,
                                               replacement)
                except ArchiveError as exc:
                    report.unrecoverable.append({
                        "digest": record.digest, "role": placement.role,
                        "error": str(exc),
                    })
                    continue
                self._forget_placement(placement)
                placement.site = replacement.name
                self._note_placement(record.digest, placement)
                report.rebuilt.append({
                    "digest": record.digest, "role": placement.role,
                    "from": lost_site, "to": replacement.name,
                })
                metrics.counter("federation_rebuilt_fragments_total").inc()
                source_id = f"cas:{record.digest}"
                if not graph.has_node(source_id):
                    graph.add_artifact(source_id, label=source_id)
                fragment_id = (f"fragment:{replacement.name}/"
                               f"{placement.role}/{record.digest}")
                graph.add_artifact(fragment_id, label=fragment_id,
                                   annotations={"was_on": lost_site})
                graph.was_derived_from(fragment_id, source_id)
                trace.record_run(ProcessorRun(
                    f"rebuild:{placement.role}", "site_rebuild",
                    step_started, self.clock.now(),
                ))

        finished = self.clock.now()
        graph.add_process(process_id, label=f"rebuild of {lost_site}",
                          annotations={
                              "started": str(started),
                              "finished": str(finished),
                              "fragments_rebuilt": len(report.rebuilt),
                              "unrecoverable": len(report.unrecoverable),
                          })
        graph.was_controlled_by(process_id, self.agent_id,
                                role="rebuilder")
        for entry in report.rebuilt:
            fragment_id = (f"fragment:{entry['to']}/{entry['role']}/"
                           f"{entry['digest']}")
            graph.was_generated_by(fragment_id, process_id,
                                   role="rebuilt")
        trace.inputs = {"lost_site": lost_site}
        trace.outputs = report.to_dict()
        trace.finish(finished,
                     "completed" if not report.unrecoverable
                     else "degraded")
        self.provenance.store_run(trace, graph)
        self._refresh_site_gauges()
        return report

    # ------------------------------------------------------------------
    # cost / durability reporting
    # ------------------------------------------------------------------

    def storage_cost(self) -> dict[str, dict[str, float]]:
        """Logical vs stored fragment bytes per redundancy scheme.

        ``fragment_bytes`` counts true fragment payloads (shard data
        bytes, replica payload bytes); the simulated CAS's JSON/hex
        envelope overhead is an artifact of the text-backed store and
        deliberately excluded from the cost model.
        """
        costs: dict[str, dict[str, float]] = {}
        for record in self._catalog.values():
            bucket = costs.setdefault(record.scheme.kind, {
                "objects": 0, "logical_bytes": 0, "stored_bytes": 0,
            })
            bucket["objects"] += 1
            bucket["logical_bytes"] += record.size_bytes
            bucket["stored_bytes"] += sum(
                p.fragment_bytes for p in record.placements)
        for bucket in costs.values():
            bucket["overhead_factor"] = (
                round(bucket["stored_bytes"] / bucket["logical_bytes"], 4)
                if bucket["logical_bytes"] else 0.0
            )
        return costs

    def durability_report(self,
                          site_loss_probability: float = 0.05
                          ) -> dict[str, Any]:
        """The cost/durability trade per preservation level — the
        numbers the DQM preservation report surfaces.

        For each configured level: the scheme, its storage overhead
        factor, its modeled durability under independent site loss, and
        the full-replica cost that would buy *at least* that durability
        (the apples-to-apples comparison erasure is judged against).
        """
        levels: dict[str, Any] = {}
        for level in sorted(self.policy.level_schemes):
            scheme = self.policy.level_schemes[level]
            durability = scheme.durability(site_loss_probability)
            copies = 1
            while replica_durability(site_loss_probability,
                                     copies) < durability:
                copies += 1
                if copies > 64:
                    break
            levels[str(level)] = {
                "scheme": scheme.to_dict(),
                "overhead_factor": round(scheme.overhead_factor, 4),
                "durability": durability,
                "equivalent_replica_copies": copies,
                "equivalent_replica_overhead": float(copies),
            }
        return {
            "site_loss_probability": site_loss_probability,
            "levels": levels,
            "storage_cost": self.storage_cost(),
        }

    # ------------------------------------------------------------------
    # status / telemetry
    # ------------------------------------------------------------------

    def _refresh_site_gauges(self) -> None:
        metrics = self.telemetry.metrics
        metrics.gauge("federation_sites").set(len(self.topology))
        metrics.gauge("federation_sites_available").set(
            len(self.topology.available_sites()))
        metrics.gauge("federation_objects").set(len(self._catalog))

    def status(self) -> dict[str, Any]:
        by_scheme: dict[str, int] = {}
        for record in self._catalog.values():
            by_scheme[record.scheme.kind] = (
                by_scheme.get(record.scheme.kind, 0) + 1)
        runs_by_workflow: dict[str, int] = {}
        for run in self.provenance.runs():
            name = run["workflow_name"]
            runs_by_workflow[name] = runs_by_workflow.get(name, 0) + 1
        return {
            "sites": self.topology.to_dict()["sites"],
            "regions": self.topology.regions(),
            "objects": len(self._catalog),
            "objects_by_scheme": by_scheme,
            "storage_cost": self.storage_cost(),
            "provenance_runs": runs_by_workflow,
            "simulated_io_ms": {
                site.name: round(site.simulated_io_ms, 3)
                for site in self.topology.sites()
            },
        }
