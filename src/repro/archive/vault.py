"""The preservation vault: the paper's promise made executable.

:class:`PreservationVault` is the facade over the archive subsystem —
the durable half of Table I.  ``core.preservation`` decides *what* a
level keeps; the vault actually keeps it:

* **ingest** — build the :class:`PreservationPackage` for a collection
  at a level, then store the package and every record payload
  content-addressed, N-way replicated, with a manifest row per logical
  object on the storage engine;
* **verify** — run a fixity sweep over every replica; the sweep itself
  is recorded as OPM provenance (*who verified what, when, against
  which digest*);
* **repair** — rebuild corrupt/missing replicas from healthy ones
  (quorum reads, retry/backoff), also recorded as provenance;
* **migrate** — flag at-risk formats by production era and re-encode
  under the collection's :class:`PreservationPolicy`, linking each
  derivative to its source digest with ``wasDerivedFrom``;
* **status** — one structured view of objects, replicas, damage and
  provenance runs.

All four paths are instrumented through
:mod:`repro.telemetry` (``vault_*`` counters/gauges/histograms plus
``vault.*`` spans), so audit and repair activity shows up in
``repro stats`` alongside workflow and storage telemetry.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.archive.cas import ContentAddressedStore
from repro.archive.clock import TickClock
from repro.archive.fixity import AuditReport, FixityAuditor
from repro.archive.migration import (
    FormatMigrationPlanner,
    MigrationReport,
    at_risk_formats,
)
from repro.archive.replicas import RepairAction, ReplicaGroup
from repro.core.preservation import (
    PreservationLevel,
    PreservationPolicy,
    archive_collection,
)
from repro.errors import ArchiveError
from repro.hashing import canonical_json, sha256_hex
from repro.provenance.repository import ProvenanceRepository
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct
from repro.telemetry import Telemetry, get_telemetry

__all__ = ["PreservationVault", "IngestReport", "RepairReport"]

_MANIFEST = "vault_manifest"

#: histogram buckets for archived object sizes (bytes)
_SIZE_BUCKETS = (64, 256, 1024, 4096, 16_384, 65_536, 262_144,
                 1_048_576, 4_194_304)


class IngestReport:
    """What one ingest stored."""

    def __init__(self, collection: str, level: PreservationLevel,
                 package_digest: str, records: int, new_objects: int,
                 deduplicated: int, logical_bytes: int) -> None:
        self.collection = collection
        self.level = level
        self.package_digest = package_digest
        self.records = records
        self.new_objects = new_objects
        self.deduplicated = deduplicated
        self.logical_bytes = logical_bytes

    def __repr__(self) -> str:
        return (
            f"IngestReport({self.collection}, level={int(self.level)}, "
            f"{self.new_objects} new, {self.deduplicated} deduplicated)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "collection": self.collection,
            "level": int(self.level),
            "package_digest": self.package_digest,
            "records": self.records,
            "new_objects": self.new_objects,
            "deduplicated": self.deduplicated,
            "logical_bytes": self.logical_bytes,
        }


class RepairReport:
    """What one repair pass rebuilt."""

    def __init__(self, run_id: str | None,
                 actions: Sequence[RepairAction]) -> None:
        self.run_id = run_id
        self.actions = list(actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __repr__(self) -> str:
        return f"RepairReport({self.run_id}, {len(self.actions)} actions)"

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "actions": [action.to_dict() for action in self.actions],
        }


class PreservationVault:
    """Content-addressed, replicated, audited long-term storage.

    Parameters
    ----------
    name:
        Vault identity; store names derive from it (``<name>-r<i>``).
    replicas:
        Member store count (>= 1).
    quorum:
        Verified copies a read needs; majority by default.
    provenance:
        Repository receiving audit/repair/migration runs; a fresh one
        by default (pass the system repository to make preservation
        provenance queryable next to workflow provenance).
    telemetry:
        Metrics/span sink; the process-wide default when omitted.
    catalog_database:
        Backing database for the manifest (in-memory by default; pass a
        journaled one for durability).
    federation:
        Optional :class:`~repro.archive.federation.FederatedVault`.
        When attached, every ingested payload is *also* placed across
        the federated site topology under its level's redundancy
        scheme (erasure for bulk levels, full replicas for the
        analysis levels), so off-site durability rides along with the
        local replica group.
    """

    def __init__(self, name: str = "vault", replicas: int = 3,
                 quorum: int | None = None,
                 provenance: ProvenanceRepository | None = None,
                 telemetry: Telemetry | None = None,
                 catalog_database: Database | None = None,
                 clock: Any | None = None,
                 federation: Any | None = None) -> None:
        if replicas < 1:
            raise ArchiveError("a vault needs at least one replica")
        self.name = name
        self.clock = clock or TickClock()
        self.group = ReplicaGroup(
            [ContentAddressedStore(f"{name}-r{i}") for i in range(replicas)],
            quorum=quorum,
        )
        # `is not None`: an empty (falsy) repository must still be used
        self.provenance = (provenance if provenance is not None
                           else ProvenanceRepository())
        self.telemetry = telemetry or get_telemetry()
        self.auditor = FixityAuditor(self.group, self.provenance,
                                     clock=self.clock)
        self.planner = FormatMigrationPlanner(self.group, self.provenance,
                                              clock=self.clock)
        self.federation = federation
        self.catalog = catalog_database or Database(f"{name}-catalog")
        if not self.catalog.has_table(_MANIFEST):
            self.catalog.create_table(TableSchema(_MANIFEST, [
                Column("object_id", ct.TEXT),
                Column("digest", ct.TEXT, nullable=False),
                Column("kind", ct.TEXT, nullable=False),
                Column("collection", ct.TEXT, nullable=False),
                Column("level", ct.INTEGER, nullable=False),
                Column("format", ct.TEXT),
                Column("source_digest", ct.TEXT),
                Column("superseded", ct.INTEGER, nullable=False),
            ], primary_key="object_id"))
            self.catalog.create_index(_MANIFEST, "kind", "hash")
        self._last_audit: AuditReport | None = None

    def __repr__(self) -> str:
        return (
            f"PreservationVault({self.name}, "
            f"{len(self.group.stores)} replicas, "
            f"{self.object_count()} objects)"
        )

    # ------------------------------------------------------------------
    # manifest helpers
    # ------------------------------------------------------------------

    def _upsert_manifest(self, row: dict[str, Any]) -> None:
        existing = self.catalog.query(_MANIFEST).where(
            col("object_id") == row["object_id"]
        ).first()
        if existing is None:
            self.catalog.insert(_MANIFEST, row)
        else:
            rowid = self.catalog.rowid_for(_MANIFEST, row["object_id"])
            self.catalog.update(_MANIFEST, rowid, row)

    def manifest(self, kind: str | None = None,
                 include_superseded: bool = False) -> list[dict[str, Any]]:
        query = self.catalog.query(_MANIFEST)
        if kind is not None:
            query = query.where(col("kind") == kind)
        if not include_superseded:
            query = query.where(col("superseded") == 0)
        return query.order_by("object_id").all()

    def object_count(self) -> int:
        return len(self.group.digests())

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def ingest(self, collection: Any, level: PreservationLevel,
               workflows: Any | None = None,
               provenance_source: ProvenanceRepository | None = None,
               documentation: str = "") -> IngestReport:
        """Archive ``collection`` at ``level``: one package object plus
        one payload object per record *the level preserves*, replicated
        and manifested.

        Record payloads follow Table I: level 1 archives the package
        (documentation + schema) alone, level 2 adds each record's
        simplified projection, levels 3–4 the full metadata rows — the
        per-record payloads are taken from the package itself, so the
        vault stores exactly what the level promises, nothing more.
        """
        level = PreservationLevel(level)
        metrics = self.telemetry.metrics
        with self.telemetry.tracer.span("vault.ingest", clock=self.clock,
                                        collection=collection.name,
                                        level=int(level)):
            package = archive_collection(
                collection, level, workflows=workflows,
                provenance=provenance_source,
                documentation=documentation,
            )
            new_objects = deduplicated = logical_bytes = 0

            def _store(payload: str, object_id: str, kind: str,
                       fmt: str | None) -> str:
                nonlocal new_objects, deduplicated, logical_bytes
                known = self.group.stores[0].exists(sha256_hex(payload))
                digest = self.group.put(payload)
                size = len(payload.encode("utf-8"))
                if known:
                    deduplicated += 1
                    metrics.counter("vault_objects_deduplicated_total").inc()
                else:
                    new_objects += 1
                    logical_bytes += size
                    metrics.counter("vault_objects_ingested_total",
                                    kind=kind).inc()
                    metrics.counter("vault_bytes_ingested_total").inc(size)
                    metrics.histogram("vault_object_bytes",
                                      buckets=_SIZE_BUCKETS).observe(size)
                self._upsert_manifest({
                    "object_id": object_id,
                    "digest": digest,
                    "kind": kind,
                    "collection": collection.name,
                    "level": int(level),
                    "format": fmt,
                    "source_digest": None,
                    "superseded": 0,
                })
                if self.federation is not None:
                    self.federation.store(payload, level=int(level))
                return digest

            package_digest = _store(
                canonical_json({"subject": package.subject,
                                "level": int(level),
                                "contents": package.contents}),
                f"package/{collection.name}/level{int(level)}",
                "package", None,
            )
            rows = package.contents.get(
                "records", package.contents.get("simplified_records", ()))
            records = 0
            for row in rows:
                records += 1
                _store(canonical_json(row),
                       f"record/{collection.name}/{row['record_id']}",
                       "record", row.get("sound_file_format"))
            self._refresh_lag_gauges()
            return IngestReport(collection.name, level, package_digest,
                                records, new_objects, deduplicated,
                                logical_bytes)

    # ------------------------------------------------------------------
    # verify / repair
    # ------------------------------------------------------------------

    def verify(self) -> AuditReport:
        """Fixity-sweep every replica of every object; the sweep lands
        in the provenance repository as an OPM run."""
        metrics = self.telemetry.metrics
        with self.telemetry.tracer.span("vault.audit", clock=self.clock):
            report = self.auditor.sweep()
        metrics.counter("vault_audit_sweeps_total").inc()
        metrics.counter("vault_objects_audited_total").inc(
            report.objects_checked)
        metrics.counter("vault_bytes_audited_total").inc(
            report.bytes_audited)
        if report.corrupt:
            metrics.counter("vault_corruptions_found_total",
                            reason="corrupt").inc(len(report.corrupt))
        if report.missing:
            metrics.counter("vault_corruptions_found_total",
                            reason="missing").inc(len(report.missing))
        self._refresh_lag_gauges()
        self._last_audit = report
        return report

    def repair(self, report: AuditReport | None = None) -> RepairReport:
        """Rebuild every replica the given (or last, or a fresh) audit
        found damaged; the repair lands in provenance as an OPM run."""
        report = report or self._last_audit or self.verify()
        metrics = self.telemetry.metrics
        actions: list[RepairAction] = []
        with self.telemetry.tracer.span("vault.repair", clock=self.clock):
            for digest in report.damaged_digests:
                actions.extend(self.group.repair(digest))
            run_id = self.auditor.record_repair(actions)
        for action in actions:
            metrics.counter("vault_corruptions_repaired_total",
                            reason=action.reason).inc()
        self._refresh_lag_gauges()
        return RepairReport(run_id, actions)

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------

    def migrate(self, policy: PreservationPolicy | None = None,
                horizon_year: int = 2014,
                target_format: str = "WAV") -> MigrationReport:
        """Migrate every at-risk record payload; derivatives join the
        manifest, sources are marked superseded, provenance links each
        derivative back to its source digest."""
        metrics = self.telemetry.metrics
        with self.telemetry.tracer.span("vault.migrate", clock=self.clock,
                                        horizon=horizon_year,
                                        target=target_format):
            entries = [
                {"object_id": row["object_id"], "digest": row["digest"],
                 "format": row["format"], "level": row["level"]}
                for row in self.manifest(kind="record")
            ]
            plan = self.planner.plan(
                entries,
                policy or PreservationPolicy(
                    PreservationLevel.ANALYSIS_LEVEL),
                horizon_year=horizon_year,
                target_format=target_format,
            )
            report = self.planner.execute(plan)
            for migration in report.migrations:
                source_row = self.catalog.query(_MANIFEST).where(
                    col("object_id") == migration["object_id"]
                ).first()
                collection = source_row["collection"] if source_row \
                    else self.name
                self._upsert_manifest({
                    "object_id": (f"{migration['object_id']}"
                                  f"/migrated-"
                                  f"{migration['to_format'].lower()}"),
                    "digest": migration["derived_digest"],
                    "kind": "record",
                    "collection": collection,
                    "level": migration["level"],
                    "format": migration["to_format"],
                    "source_digest": migration["source_digest"],
                    "superseded": 0,
                })
                if source_row is not None:
                    rowid = self.catalog.rowid_for(
                        _MANIFEST, migration["object_id"])
                    self.catalog.update(_MANIFEST, rowid,
                                        {"superseded": 1})
                metrics.counter(
                    "vault_migrations_total",
                    source=migration["from_format"],
                    target=migration["to_format"],
                ).inc()
        self._refresh_lag_gauges()
        return report

    def at_risk(self, horizon_year: int = 2014) -> list[dict[str, Any]]:
        """Current (non-superseded) record objects in at-risk formats."""
        risky = {era.name for era in at_risk_formats(horizon_year)}
        return [row for row in self.manifest(kind="record")
                if row["format"] in risky]

    # ------------------------------------------------------------------
    # drills
    # ------------------------------------------------------------------

    def inject_corruption(self, digest: str | None = None,
                          store_index: int = 0) -> str:
        """Corrupt one replica of one object (first record object by
        default) — the test/drill hook behind the audit story."""
        if digest is None:
            rows = self.manifest(kind="record") or self.manifest()
            if not rows:
                raise ArchiveError("nothing archived to corrupt")
            digest = rows[0]["digest"]
        self.group.stores[store_index].corrupt(digest)
        return digest

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def _refresh_lag_gauges(self) -> None:
        for store_name, lag in self.group.replica_lag().items():
            self.telemetry.metrics.gauge("vault_replica_lag",
                                         store=store_name).set(lag)

    def lint(self, horizon_year: int = 2014) -> Any:
        """Run the static vault rules and return the analysis report.

        Complements :meth:`verify`: the fixity sweep re-hashes payloads,
        this pass flags structural trouble (sub-quorum objects, manifest
        drift, at-risk formats without migration lineage) plus schema
        defects in the manifest catalog, without reading a byte.
        """
        from repro.analysis import Analyzer

        analyzer = Analyzer(telemetry=self.telemetry)
        report = analyzer.analyze_vault(self, horizon_year=horizon_year)
        report.merge(analyzer.analyze_storage(self.catalog))
        return report

    def status(self) -> dict[str, Any]:
        """One structured view of the vault's health."""
        manifest = self.manifest()
        by_kind: dict[str, int] = {}
        by_level: dict[int, int] = {}
        for row in manifest:
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0) + 1
            by_level[row["level"]] = by_level.get(row["level"], 0) + 1
        runs_by_workflow: dict[str, int] = {}
        for run in self.provenance.runs():
            name = run["workflow_name"]
            runs_by_workflow[name] = runs_by_workflow.get(name, 0) + 1
        metrics = self.telemetry.metrics
        return {
            "name": self.name,
            "stores": [store.name for store in self.group.stores],
            "quorum": self.group.quorum,
            "objects": self.object_count(),
            "logical_bytes": self.group.stores[0].total_bytes(),
            "manifest": {"by_kind": by_kind,
                         "by_level": {str(k): v
                                      for k, v in sorted(by_level.items())}},
            "replica_lag": self.group.replica_lag(),
            "at_risk_records": len(self.at_risk()),
            "last_audit": None if self._last_audit is None
            else self._last_audit.to_dict(),
            "provenance_runs": runs_by_workflow,
            "federation": (None if self.federation is None
                           else self.federation.status()),
            "counters": {
                "corruptions_found":
                    metrics.total("vault_corruptions_found_total"),
                "corruptions_repaired":
                    metrics.total("vault_corruptions_repaired_total"),
                "bytes_audited":
                    metrics.total("vault_bytes_audited_total"),
                "migrations": metrics.total("vault_migrations_total"),
            },
        }
