"""Replica groups: N-way redundancy over named CAS stores.

The vault never trusts a single copy.  A :class:`ReplicaGroup` fans
every write out to all member stores, reads through a **verified
quorum** (at least ``quorum`` replicas whose bytes still hash to the
digest), and can rebuild a failed or corrupt replica from any healthy
one — the repair path the fixity auditor feeds.

Transient store failures are retried with exponential backoff.  The
backoff is *simulated*: the schedule is computed deterministically and
reported (attempt count, total backoff seconds) rather than slept, the
same convention the workflow engine uses for service-call latency — so
tests stay fast and byte-for-byte reproducible while the retry logic is
still genuinely exercised.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ArchiveError, QuorumError
from repro.archive.cas import ContentAddressedStore

__all__ = ["ReplicaGroup", "ReplicaStatus", "RepairAction"]

#: replica states reported by :meth:`ReplicaGroup.replica_status`
OK, CORRUPT, MISSING = "ok", "corrupt", "missing"


class ReplicaStatus:
    """One object's health across every member store."""

    __slots__ = ("digest", "states")

    def __init__(self, digest: str, states: dict[str, str]) -> None:
        self.digest = digest
        self.states = states  # store name -> "ok" | "corrupt" | "missing"

    @property
    def healthy_stores(self) -> list[str]:
        return sorted(s for s, state in self.states.items() if state == OK)

    @property
    def corrupt_stores(self) -> list[str]:
        return sorted(s for s, state in self.states.items()
                      if state == CORRUPT)

    @property
    def missing_stores(self) -> list[str]:
        return sorted(s for s, state in self.states.items()
                      if state == MISSING)

    @property
    def intact(self) -> bool:
        return all(state == OK for state in self.states.values())

    def __repr__(self) -> str:
        return f"ReplicaStatus({self.digest[:12]}…, {self.states})"


class RepairAction:
    """One replica rebuilt from a healthy source."""

    __slots__ = ("digest", "store", "source", "reason", "attempts",
                 "backoff_seconds")

    def __init__(self, digest: str, store: str, source: str, reason: str,
                 attempts: int, backoff_seconds: float) -> None:
        self.digest = digest
        self.store = store
        self.source = source
        self.reason = reason  # the pre-repair state: "corrupt" | "missing"
        self.attempts = attempts
        self.backoff_seconds = backoff_seconds

    def __repr__(self) -> str:
        return (
            f"RepairAction({self.digest[:12]}… on {self.store} "
            f"from {self.source}, was {self.reason})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "store": self.store,
            "source": self.source,
            "reason": self.reason,
            "attempts": self.attempts,
            "backoff_seconds": self.backoff_seconds,
        }


class ReplicaGroup:
    """N named stores behaving as one logical object store.

    Parameters
    ----------
    stores:
        The member :class:`ContentAddressedStore`\\ s (at least one).
    quorum:
        Verified copies a read needs; defaults to a majority
        (``n // 2 + 1``).
    max_attempts:
        Per-store write attempts before the group gives up.
    backoff_base_seconds:
        First retry's simulated backoff; doubles per attempt.
    """

    def __init__(self, stores: Sequence[ContentAddressedStore],
                 quorum: int | None = None, max_attempts: int = 3,
                 backoff_base_seconds: float = 0.05) -> None:
        if not stores:
            raise ArchiveError("a replica group needs at least one store")
        names = [store.name for store in stores]
        if len(set(names)) != len(names):
            raise ArchiveError(f"duplicate store names: {names}")
        self.stores = list(stores)
        self.quorum = quorum if quorum is not None else len(stores) // 2 + 1
        if not 1 <= self.quorum <= len(stores):
            raise ArchiveError(
                f"quorum {self.quorum} out of range for "
                f"{len(stores)} stores"
            )
        self.max_attempts = max_attempts
        self.backoff_base_seconds = backoff_base_seconds

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup({[s.name for s in self.stores]}, "
            f"quorum={self.quorum})"
        )

    def store(self, name: str) -> ContentAddressedStore:
        for member in self.stores:
            if member.name == name:
                return member
        raise ArchiveError(f"no store {name!r} in this group")

    # ------------------------------------------------------------------
    # retry/backoff
    # ------------------------------------------------------------------

    def _with_retry(self, action: Callable[[], Any],
                    what: str) -> tuple[Any, int, float]:
        """Run ``action`` up to ``max_attempts`` times; returns
        ``(result, attempts, simulated backoff seconds)``."""
        backoff = 0.0
        last: Exception | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return action(), attempt, backoff
            except ArchiveError as exc:
                last = exc
                if attempt < self.max_attempts:
                    backoff += self.backoff_base_seconds * 2 ** (attempt - 1)
        raise ArchiveError(
            f"{what} failed after {self.max_attempts} attempts: {last}"
        ) from last

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def put(self, payload: str,
            media_type: str = "application/json") -> str:
        """Write ``payload`` to every member store; returns the digest."""
        digest = ""
        for member in self.stores:
            result, __, __ = self._with_retry(
                lambda m=member: m.put(payload, media_type=media_type),
                f"put on {member.name}",
            )
            digest = result
        return digest

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, digest: str) -> str:
        """Quorum read: the payload, provided at least ``quorum``
        replicas hold bytes that verify against ``digest``.

        A failed read raises a :class:`~repro.errors.QuorumError`
        carrying the *cause breakdown* — which member stores are
        missing the object vs. holding rotten bytes.  The two need
        different responses (a missing replica means a lost store or a
        partial write; a corrupt one means bit rot on live media), so
        conflating them — as this method once did by counting
        ``verify()`` failures — hid the true cause from operators and
        from repair provenance.
        """
        status = self.replica_status(digest)
        healthy = status.healthy_stores
        if len(healthy) < self.quorum:
            breakdown = []
            if status.missing_stores:
                breakdown.append(
                    f"missing on {', '.join(status.missing_stores)}")
            if status.corrupt_stores:
                breakdown.append(
                    f"corrupt on {', '.join(status.corrupt_stores)}")
            raise QuorumError(
                f"object {digest[:12]}…: {len(healthy)} verified "
                f"replica(s), quorum is {self.quorum}"
                + (f" ({'; '.join(breakdown)})" if breakdown else ""),
                missing=tuple(status.missing_stores),
                corrupt=tuple(status.corrupt_stores),
                verified=len(healthy),
            )
        return self.store(healthy[0]).get(digest)

    def digests(self) -> list[str]:
        """Union of object digests across all member stores."""
        union: set[str] = set()
        for member in self.stores:
            union.update(member.digests())
        return sorted(union)

    def replica_status(self, digest: str) -> ReplicaStatus:
        states: dict[str, str] = {}
        for member in self.stores:
            if not member.exists(digest):
                states[member.name] = MISSING
            elif member.verify(digest):
                states[member.name] = OK
            else:
                states[member.name] = CORRUPT
        return ReplicaStatus(digest, states)

    def replica_lag(self) -> dict[str, int]:
        """Per store: objects in the group the store lacks a *healthy*
        copy of (the repair backlog)."""
        catalog = self.digests()
        lag: dict[str, int] = {}
        for member in self.stores:
            lag[member.name] = sum(
                1 for digest in catalog if not member.verify(digest)
            )
        return lag

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------

    def repair(self, digest: str) -> list[RepairAction]:
        """Rebuild every corrupt/missing replica of ``digest`` from a
        healthy one.  Returns the actions taken (empty if intact)."""
        status = self.replica_status(digest)
        if status.intact:
            return []
        if not status.healthy_stores:
            raise QuorumError(
                f"object {digest[:12]}…: no healthy replica to repair "
                f"from ({len(status.missing_stores)} missing, "
                f"{len(status.corrupt_stores)} corrupt)",
                missing=tuple(status.missing_stores),
                corrupt=tuple(status.corrupt_stores),
                verified=0,
            )
        source = self.store(status.healthy_stores[0])
        payload = source.get_verified(digest)
        media_type = source.stat(digest).media_type
        actions: list[RepairAction] = []
        for name, state in sorted(status.states.items()):
            if state == OK:
                continue
            target = self.store(name)
            __, attempts, backoff = self._with_retry(
                lambda t=target: t.restore(digest, payload,
                                           media_type=media_type),
                f"restore on {name}",
            )
            actions.append(RepairAction(digest, name, source.name, state,
                                        attempts, backoff))
        return actions
