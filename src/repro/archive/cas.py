"""The content-addressed object store (CAS).

Every archived payload — a serialized
:class:`~repro.core.preservation.PreservationPackage`, one sound
record's metadata row, a migrated derivative — is keyed by the SHA-256
of its bytes (:func:`repro.hashing.sha256_hex`, the same digest recipe
used everywhere else in the library).  Content addressing buys the
vault three properties at once:

* **deduplication** — storing the same payload twice stores one blob
  and bumps a reference count;
* **fixity for free** — the key *is* the integrity baseline, so an
  audit just re-hashes the payload and compares against its own name;
* **stable provenance identity** — OPM artifact nodes can reference
  ``cas:<digest>`` and the reference survives replica repair and store
  migration, because the name never depends on *where* the bytes live.

Blobs live in an ordinary :class:`~repro.storage.Database` table, so
the vault inherits the engine's journaling, constraints and query
machinery instead of inventing a parallel persistence layer.

For tests and drills the store exposes two *corruption-injection*
hooks, :meth:`ContentAddressedStore.corrupt` and
:meth:`ContentAddressedStore.drop` — the only ways a payload and its
digest can legally disagree.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import FixityError, ObjectMissingError
from repro.hashing import sha256_hex
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct

__all__ = ["ContentAddressedStore", "ObjectStat"]

_OBJECTS = "cas_objects"


class ObjectStat:
    """Metadata of one stored object (no payload)."""

    __slots__ = ("digest", "size_bytes", "media_type", "refs")

    def __init__(self, digest: str, size_bytes: int, media_type: str,
                 refs: int) -> None:
        self.digest = digest
        self.size_bytes = size_bytes
        self.media_type = media_type
        self.refs = refs

    def __repr__(self) -> str:
        return (
            f"ObjectStat({self.digest[:12]}…, {self.size_bytes} B, "
            f"{self.media_type}, refs={self.refs})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "size_bytes": self.size_bytes,
            "media_type": self.media_type,
            "refs": self.refs,
        }


class ContentAddressedStore:
    """One named replica: sha256-keyed blobs on the storage engine.

    Parameters
    ----------
    name:
        The store's identity within a replica group (e.g. ``vault-r0``).
    database:
        Backing database; a fresh in-memory one per store by default,
        so each replica models an independent storage node.  Pass a
        journaled database for durability.
    """

    def __init__(self, name: str, database: Database | None = None) -> None:
        self.name = name
        self.database = database or Database(f"cas:{name}")
        if not self.database.has_table(_OBJECTS):
            self.database.create_table(TableSchema(_OBJECTS, [
                Column("digest", ct.TEXT),
                Column("size_bytes", ct.INTEGER, nullable=False),
                Column("media_type", ct.TEXT, nullable=False),
                Column("refs", ct.INTEGER, nullable=False),
                Column("payload", ct.TEXT, nullable=False),
            ], primary_key="digest"))

    def __repr__(self) -> str:
        return f"ContentAddressedStore({self.name}, {len(self)} objects)"

    def __len__(self) -> int:
        return self.database.count(_OBJECTS)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def put(self, payload: str,
            media_type: str = "application/json") -> str:
        """Store ``payload``; returns its digest.  Re-putting an
        existing payload deduplicates (one blob, ``refs`` + 1)."""
        digest = sha256_hex(payload)
        existing = self._row(digest)
        if existing is not None:
            rowid = self.database.rowid_for(_OBJECTS, digest)
            self.database.update(_OBJECTS, rowid,
                                 {"refs": existing["refs"] + 1})
            return digest
        self.database.insert(_OBJECTS, {
            "digest": digest,
            "size_bytes": len(payload.encode("utf-8")),
            "media_type": media_type,
            "refs": 1,
            "payload": payload,
        })
        return digest

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _row(self, digest: str) -> dict[str, Any] | None:
        return self.database.query(_OBJECTS).where(
            col("digest") == digest
        ).first()

    def exists(self, digest: str) -> bool:
        return self._row(digest) is not None

    def get(self, digest: str) -> str:
        """The raw payload, *without* fixity verification."""
        row = self._row(digest)
        if row is None:
            raise ObjectMissingError(
                f"{self.name}: no object {digest!r}"
            )
        return row["payload"]

    def get_verified(self, digest: str) -> str:
        """The payload, re-hashed against its name first."""
        payload = self.get(digest)
        actual = sha256_hex(payload)
        if actual != digest:
            raise FixityError(
                f"{self.name}: object {digest[:12]}… hashes to "
                f"{actual[:12]}… (bit rot or tampering)"
            )
        return payload

    def verify(self, digest: str) -> bool:
        """``True`` iff the object is present and its bytes still hash
        to its name."""
        row = self._row(digest)
        if row is None:
            return False
        return sha256_hex(row["payload"]) == digest

    def stat(self, digest: str) -> ObjectStat:
        row = self._row(digest)
        if row is None:
            raise ObjectMissingError(
                f"{self.name}: no object {digest!r}"
            )
        return ObjectStat(row["digest"], row["size_bytes"],
                          row["media_type"], row["refs"])

    def digests(self) -> list[str]:
        return sorted(self.database.query(_OBJECTS).values("digest"))

    def objects(self) -> Iterator[ObjectStat]:
        for digest in self.digests():
            yield self.stat(digest)

    def total_bytes(self) -> int:
        return sum(stat.size_bytes for stat in self.objects())

    # ------------------------------------------------------------------
    # corruption injection (tests, fire drills)
    # ------------------------------------------------------------------

    def corrupt(self, digest: str, payload: str = "\x00bitrot\x00") -> None:
        """Overwrite the stored bytes *without* changing the key —
        simulated bit rot for fixity-audit tests."""
        row = self._row(digest)
        if row is None:
            raise ObjectMissingError(
                f"{self.name}: cannot corrupt missing object {digest!r}"
            )
        rowid = self.database.rowid_for(_OBJECTS, digest)
        self.database.update(_OBJECTS, rowid, {"payload": payload})

    def drop(self, digest: str) -> None:
        """Delete a replica's copy — simulated media loss."""
        row = self._row(digest)
        if row is None:
            raise ObjectMissingError(
                f"{self.name}: cannot drop missing object {digest!r}"
            )
        self.database.delete(_OBJECTS, self.database.rowid_for(_OBJECTS,
                                                               digest))

    # ------------------------------------------------------------------
    # repair support
    # ------------------------------------------------------------------

    def restore(self, digest: str, payload: str,
                media_type: str = "application/json") -> None:
        """Overwrite-or-insert a verified copy (used by replica repair).

        Unlike :meth:`put`, the payload must hash to ``digest``.
        """
        actual = sha256_hex(payload)
        if actual != digest:
            raise FixityError(
                f"{self.name}: refusing to restore {digest[:12]}… from a "
                f"payload hashing to {actual[:12]}…"
            )
        row = self._row(digest)
        if row is None:
            self.database.insert(_OBJECTS, {
                "digest": digest,
                "size_bytes": len(payload.encode("utf-8")),
                "media_type": media_type,
                "refs": 1,
                "payload": payload,
            })
        else:
            rowid = self.database.rowid_for(_OBJECTS, digest)
            self.database.update(_OBJECTS, rowid, {
                "payload": payload,
                "size_bytes": len(payload.encode("utf-8")),
                "media_type": media_type,
            })
