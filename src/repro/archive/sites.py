"""Simulated multi-site topology for the federated vault.

A :class:`Site` is one storage location: a
:class:`~repro.archive.cas.ContentAddressedStore` plus the operational
profile a placement policy cares about — a **region** tag (geo
spreading), a simulated **read latency** (latency-weighted reads), and
an **availability** switch (outage drills).  Latency is simulated the
same way the replica group simulates backoff: accounted, never slept,
so tests stay fast and deterministic.

Every site also maintains a :class:`~repro.archive.merkle.MerkleManifest`
of what it believes it holds — leaf state equals the object digest
while the copy is healthy.  Writes through the site API keep the
manifest current in O(depth); *silent* corruption
(:meth:`Site.corrupt`, the bit-rot injection hook) deliberately does
not, which is exactly the gap the sampling scrubber
(:meth:`Site.scrub`) closes: it re-hashes stored payloads, updates the
manifest leaves for anything rotten, and thereby makes the damage
visible to O(log n) cross-site sync.

:class:`SiteTopology` is the registry the placement policy and the
federation facade operate on.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from repro.archive.cas import ContentAddressedStore
from repro.archive.merkle import DEFAULT_DEPTH, MerkleManifest
from repro.errors import ArchiveError, SiteUnavailableError
from repro.hashing import sha256_hex, stable_seed

__all__ = ["Site", "SiteTopology", "ScrubFinding"]


class ScrubFinding:
    """One unhealthy copy a scrub discovered."""

    __slots__ = ("site", "digest", "state")

    def __init__(self, site: str, digest: str, state: str) -> None:
        self.site = site
        self.digest = digest
        self.state = state  # "corrupt" | "missing"

    def __repr__(self) -> str:
        return f"ScrubFinding({self.site}, {self.digest[:12]}…, {self.state})"

    def to_dict(self) -> dict[str, Any]:
        return {"site": self.site, "digest": self.digest,
                "state": self.state}


class Site:
    """One federated storage location.

    Parameters
    ----------
    name:
        Unique site identity (e.g. ``sp-1``).
    region:
        Geo tag placement spreads across (e.g. ``southamerica``).
    latency_ms:
        Simulated per-read latency; reads prefer low-latency sites.
    failure_rate:
        Probability a :meth:`put` is refused transiently (exercises the
        caller's retry path); drawn from a deterministic per-site RNG.
    corruption_rate:
        Probability a stored payload silently rots right after a write
        (drill profiles only; 0 for honest sites).
    manifest_depth:
        Nibbles of the digest used for Merkle bucket addressing.
    """

    def __init__(self, name: str, region: str, latency_ms: float = 10.0,
                 failure_rate: float = 0.0, corruption_rate: float = 0.0,
                 seed: int = 0,
                 manifest_depth: int = DEFAULT_DEPTH) -> None:
        if not name:
            raise ArchiveError("a site needs a name")
        if not region:
            raise ArchiveError(f"site {name!r} needs a region tag")
        for label, rate in (("failure_rate", failure_rate),
                            ("corruption_rate", corruption_rate)):
            if not 0.0 <= rate < 1.0:
                raise ArchiveError(
                    f"site {name!r}: {label} {rate} outside [0, 1)")
        self.name = name
        self.region = region
        self.latency_ms = float(latency_ms)
        self.failure_rate = failure_rate
        self.corruption_rate = corruption_rate
        self.available = True
        self.store = ContentAddressedStore(f"site:{name}")
        self._manifest = MerkleManifest(depth=manifest_depth)
        self._rng = random.Random(stable_seed("site", name, seed))
        self.simulated_io_ms = 0.0

    def __repr__(self) -> str:
        state = "up" if self.available else "DOWN"
        return (
            f"Site({self.name}, {self.region}, {self.latency_ms:g} ms, "
            f"{len(self.store)} objects, {state})"
        )

    # ------------------------------------------------------------------
    # availability / failure profile
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Take the site down (simulated outage / site loss)."""
        self.available = False

    def recover(self) -> None:
        self.available = True

    def _check_up(self, what: str) -> None:
        if not self.available:
            raise SiteUnavailableError(
                f"site {self.name} ({self.region}) is down: {what} refused"
            )

    def _charge(self) -> None:
        self.simulated_io_ms += self.latency_ms

    # ------------------------------------------------------------------
    # object I/O (manifest-maintaining)
    # ------------------------------------------------------------------

    def put(self, payload: str,
            media_type: str = "application/json") -> str:
        self._check_up("put")
        if self.failure_rate and self._rng.random() < self.failure_rate:
            raise ArchiveError(
                f"site {self.name}: transient write fault (simulated)")
        self._charge()
        digest = self.store.put(payload, media_type=media_type)
        self._manifest.set(digest, digest)
        if self.corruption_rate and self._rng.random() < self.corruption_rate:
            # silent rot straight after the write — the scrubber's job
            self.store.corrupt(digest)
        return digest

    def get(self, digest: str) -> str:
        self._check_up("get")
        self._charge()
        return self.store.get(digest)

    def get_verified(self, digest: str) -> str:
        self._check_up("get")
        self._charge()
        return self.store.get_verified(digest)

    def exists(self, digest: str) -> bool:
        self._check_up("stat")
        return self.store.exists(digest)

    def verify(self, digest: str) -> bool:
        self._check_up("verify")
        self._charge()
        return self.store.verify(digest)

    def drop(self, digest: str) -> None:
        self._check_up("drop")
        self.store.drop(digest)
        self._manifest.remove(digest)

    def restore(self, digest: str, payload: str,
                media_type: str = "application/json") -> None:
        self._check_up("restore")
        self._charge()
        self.store.restore(digest, payload, media_type=media_type)
        self._manifest.set(digest, digest)

    def wipe(self) -> int:
        """Lose every object (site destruction drill); returns how many."""
        digests = self.store.digests()
        for digest in digests:
            self.store.drop(digest)
            self._manifest.remove(digest)
        return len(digests)

    def digests(self) -> list[str]:
        return self.store.digests()

    # ------------------------------------------------------------------
    # corruption injection + scrubbing
    # ------------------------------------------------------------------

    def corrupt(self, digest: str,
                payload: str = "\x00bitrot\x00") -> None:
        """Silent bit rot: flips the stored bytes *without* telling the
        manifest — only a scrub makes the damage visible."""
        self.store.corrupt(digest, payload)

    def scrub(self, digests: Sequence[str] | None = None,
              sample_fraction: float | None = None,
              seed: int = 0) -> list[ScrubFinding]:
        """Re-hash stored payloads against their digests and update the
        manifest for anything unhealthy.

        ``digests`` limits the scrub to specific objects; otherwise the
        whole holding is scrubbed, or a deterministic ``sample_fraction``
        of it — the sampling-based continuous audit: a few percent per
        pass, every object eventually.
        """
        self._check_up("scrub")
        catalog = list(digests) if digests is not None \
            else self.store.digests()
        if sample_fraction is not None:
            if not 0.0 < sample_fraction <= 1.0:
                raise ArchiveError(
                    f"sample_fraction {sample_fraction} outside (0, 1]")
            rng = random.Random(stable_seed("scrub", self.name, seed,
                                            len(catalog)))
            count = max(1, round(len(catalog) * sample_fraction)) \
                if catalog else 0
            catalog = sorted(rng.sample(catalog, count)) if count else []
        findings: list[ScrubFinding] = []
        for digest in catalog:
            if not self.store.exists(digest):
                if digest in self._manifest:
                    self._manifest.remove(digest)
                    findings.append(ScrubFinding(self.name, digest,
                                                 "missing"))
                continue
            self._charge()
            payload = self.store.get(digest)
            actual = sha256_hex(payload)
            if actual != digest:
                self._manifest.set(digest, actual)
                findings.append(ScrubFinding(self.name, digest, "corrupt"))
            else:
                self._manifest.set(digest, digest)
        return findings

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def manifest(self) -> MerkleManifest:
        """The maintained Merkle manifest (live object, not a copy)."""
        return self._manifest

    def manifest_root(self) -> str:
        return self._manifest.root


class SiteTopology:
    """The registry of federated sites the placement policy draws from."""

    def __init__(self, sites: Iterable[Site] = ()) -> None:
        self._sites: dict[str, Site] = {}
        for site in sites:
            self.add(site)

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __repr__(self) -> str:
        return (
            f"SiteTopology({len(self._sites)} sites, "
            f"{len(self.regions())} regions)"
        )

    def add(self, site: Site) -> Site:
        if site.name in self._sites:
            raise ArchiveError(f"duplicate site name {site.name!r}")
        self._sites[site.name] = site
        return site

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise ArchiveError(f"no site {name!r} in this topology") \
                from None

    def sites(self) -> list[Site]:
        return [self._sites[name] for name in sorted(self._sites)]

    def available_sites(self) -> list[Site]:
        return [site for site in self.sites() if site.available]

    def regions(self) -> list[str]:
        return sorted({site.region for site in self._sites.values()})

    def in_region(self, region: str) -> list[Site]:
        return [site for site in self.sites() if site.region == region]

    def fail_site(self, name: str) -> Site:
        site = self.site(name)
        site.fail()
        return site

    def recover_site(self, name: str) -> Site:
        site = self.site(name)
        site.recover()
        return site

    def to_dict(self) -> dict[str, Any]:
        return {
            "sites": [
                {
                    "name": site.name,
                    "region": site.region,
                    "latency_ms": site.latency_ms,
                    "available": site.available,
                    "objects": len(site.store),
                    "manifest_root": site.manifest_root(),
                }
                for site in self.sites()
            ],
            "regions": self.regions(),
        }
