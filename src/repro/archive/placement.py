"""Geo-aware placement: which sites hold which fragments.

A :class:`PlacementPolicy` decides, per preservation level, *how* an
object is made redundant (full replicas vs erasure-coded shards, the
cost/durability trade) and *where* the fragments land:

* **spread across regions** — fragments round-robin the topology's
  regions before doubling up inside one, so a whole-region outage
  costs at most ``ceil(fragments / regions)`` fragments;
* **latency-weighted reads** — read plans order candidate sites by
  simulated latency, so a fetch touches the cheapest ``k`` (or 1)
  sites that can serve it;
* **rebuild on site loss** — given a dead site, the policy picks
  replacement sites (same spreading rule, excluding the dead one) for
  every fragment the site held.

The durability model is the standard independent-site-loss one, also
used by the DQM preservation report and pinned by the Monte-Carlo
differential suite: with per-site loss probability *p*,

* ``r`` full replicas survive unless all ``r`` sites die:
  ``1 - p^r``;
* a ``k``-of-``n`` erasure group survives while at least ``k`` shard
  sites live: ``Σ_{i=k}^{n} C(n,i) (1-p)^i p^(n-i)``.
"""

from __future__ import annotations

from math import comb
from typing import Any, Mapping, Sequence

from repro.archive.sites import Site, SiteTopology
from repro.core.preservation import PreservationLevel
from repro.errors import PlacementError

__all__ = ["RedundancyScheme", "PlacementPolicy", "replica_durability",
           "erasure_durability", "FULL_REPLICA", "ERASURE"]

FULL_REPLICA = "full_replica"
ERASURE = "erasure"


def replica_durability(site_loss_probability: float, copies: int) -> float:
    """P(object survives) with ``copies`` full replicas on independent
    sites each lost with ``site_loss_probability``."""
    p = _check_probability(site_loss_probability)
    if copies < 1:
        raise PlacementError(f"copies must be >= 1, got {copies}")
    return 1.0 - p ** copies


def erasure_durability(site_loss_probability: float, k: int,
                       n: int) -> float:
    """P(at least ``k`` of ``n`` shard sites survive) under independent
    loss with ``site_loss_probability``."""
    p = _check_probability(site_loss_probability)
    if not 1 <= k <= n:
        raise PlacementError(f"need 1 <= k <= n, got k={k}, n={n}")
    survive = 1.0 - p
    return sum(
        comb(n, i) * survive ** i * p ** (n - i)
        for i in range(k, n + 1)
    )


def _check_probability(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise PlacementError(f"probability {p} outside [0, 1]")
    return float(p)


class RedundancyScheme:
    """How one object is made redundant: ``full_replica`` with
    ``copies`` sites, or ``erasure`` with ``k`` of ``n`` shards."""

    __slots__ = ("kind", "copies", "k", "n")

    def __init__(self, kind: str, copies: int = 3, k: int = 4,
                 n: int = 8) -> None:
        if kind not in (FULL_REPLICA, ERASURE):
            raise PlacementError(f"unknown redundancy kind {kind!r}")
        if kind == FULL_REPLICA and copies < 1:
            raise PlacementError(f"copies must be >= 1, got {copies}")
        if kind == ERASURE and not 1 <= k <= n:
            raise PlacementError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.kind = kind
        self.copies = copies
        self.k = k
        self.n = n

    @property
    def fragments(self) -> int:
        """Sites one placement needs."""
        return self.copies if self.kind == FULL_REPLICA else self.n

    @property
    def read_fragments(self) -> int:
        """Fragments a read must gather."""
        return 1 if self.kind == FULL_REPLICA else self.k

    @property
    def overhead_factor(self) -> float:
        """Stored bytes per logical byte (asymptotically)."""
        return (float(self.copies) if self.kind == FULL_REPLICA
                else self.n / self.k)

    def durability(self, site_loss_probability: float) -> float:
        if self.kind == FULL_REPLICA:
            return replica_durability(site_loss_probability, self.copies)
        return erasure_durability(site_loss_probability, self.k, self.n)

    def __repr__(self) -> str:
        if self.kind == FULL_REPLICA:
            return f"RedundancyScheme(full_replica x{self.copies})"
        return f"RedundancyScheme(erasure {self.k}-of-{self.n})"

    def to_dict(self) -> dict[str, Any]:
        if self.kind == FULL_REPLICA:
            return {"kind": self.kind, "copies": self.copies}
        return {"kind": self.kind, "k": self.k, "n": self.n}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "RedundancyScheme":
        return cls(str(document.get("kind", FULL_REPLICA)),
                   copies=int(document.get("copies", 3)),
                   k=int(document.get("k", 4)),
                   n=int(document.get("n", 8)))


#: default per-level schemes: the paper's lower levels are bulk/outreach
#: data where erasure's n/k overhead wins; the analysis/reproduction
#: levels keep whole copies so any single site can serve a full read.
_DEFAULT_LEVEL_SCHEMES: dict[int, RedundancyScheme] = {
    1: RedundancyScheme(ERASURE, k=4, n=8),
    2: RedundancyScheme(ERASURE, k=4, n=8),
    3: RedundancyScheme(FULL_REPLICA, copies=3),
    4: RedundancyScheme(FULL_REPLICA, copies=3),
}


class PlacementPolicy:
    """Per-level redundancy schemes + deterministic geo-aware site
    selection over a :class:`~repro.archive.sites.SiteTopology`."""

    def __init__(self,
                 level_schemes: Mapping[int, RedundancyScheme]
                 | None = None,
                 spread_regions: bool = True) -> None:
        self.level_schemes = {
            int(level): scheme
            for level, scheme in (level_schemes
                                  or _DEFAULT_LEVEL_SCHEMES).items()
        }
        self.spread_regions = spread_regions

    def __repr__(self) -> str:
        return f"PlacementPolicy({self.level_schemes})"

    def scheme_for_level(self, level: int) -> RedundancyScheme:
        level = int(PreservationLevel(level))
        try:
            return self.level_schemes[level]
        except KeyError:
            raise PlacementError(
                f"no redundancy scheme configured for level {level}"
            ) from None

    # ------------------------------------------------------------------
    # site selection
    # ------------------------------------------------------------------

    def choose_sites(self, topology: SiteTopology, count: int,
                     exclude: Sequence[str] = (),
                     prefer: Sequence[str] = ()) -> list[Site]:
        """``count`` distinct available sites, spread across regions.

        Selection is deterministic: regions in name order, sites within
        a region by (latency, name), fragments dealt round-robin across
        regions.  ``exclude`` skips sites (a dead site during rebuild);
        ``prefer`` pins specific sites to the front (keeping surviving
        placements where they already are).
        """
        excluded = set(exclude)
        candidates = [site for site in topology.available_sites()
                      if site.name not in excluded]
        if count > len(candidates):
            raise PlacementError(
                f"placement needs {count} sites, topology has "
                f"{len(candidates)} available"
                + (f" (excluding {sorted(excluded)})" if excluded else "")
            )
        chosen: list[Site] = []
        chosen_names: set[str] = set()
        for name in prefer:
            for site in candidates:
                if site.name == name and name not in chosen_names:
                    chosen.append(site)
                    chosen_names.add(name)
                    break
        if not self.spread_regions:
            for site in sorted(candidates,
                               key=lambda s: (s.latency_ms, s.name)):
                if len(chosen) >= count:
                    break
                if site.name not in chosen_names:
                    chosen.append(site)
                    chosen_names.add(site.name)
            return chosen[:count]

        by_region: dict[str, list[Site]] = {}
        for site in candidates:
            by_region.setdefault(site.region, []).append(site)
        for sites in by_region.values():
            sites.sort(key=lambda s: (s.latency_ms, s.name))
        regions = sorted(by_region)
        # round-robin the regions until enough fragments are placed
        cursor = {region: 0 for region in regions}
        while len(chosen) < count:
            progressed = False
            for region in regions:
                if len(chosen) >= count:
                    break
                sites = by_region[region]
                while cursor[region] < len(sites):
                    site = sites[cursor[region]]
                    cursor[region] += 1
                    if site.name not in chosen_names:
                        chosen.append(site)
                        chosen_names.add(site.name)
                        progressed = True
                        break
            if not progressed:
                break
        if len(chosen) < count:
            raise PlacementError(
                f"could not place {count} fragments on distinct sites "
                f"({len(chosen)} available after region spreading)"
            )
        return chosen

    def read_order(self, sites: Sequence[Site]) -> list[Site]:
        """Available sites cheapest-first (latency, then name)."""
        return sorted((site for site in sites if site.available),
                      key=lambda s: (s.latency_ms, s.name))

    def regions_spanned(self, sites: Sequence[Site]) -> int:
        return len({site.region for site in sites})
