"""Workflow decay detection.

The paper's conclusion: "we point out that workflows may also decay —
e.g., see Zhao et al. [38].  This reinforces the notion that quality
assessment must be a continuous task."

Zhao et al. classify why Taverna workflows break; the causes that apply
to our engine are implemented as checks:

* **missing implementation** — the workflow references a processor
  ``kind`` no longer present in the registry (third-party component
  gone);
* **missing function** — a ``python`` processor whose named function
  has disappeared from the function table;
* **dead external service** — an external-source processor whose
  declared/observed availability has collapsed;
* **structural rot** — the stored specification no longer validates
  (dangling links, unfed required ports) after partial edits.

:class:`DecayScanner` runs the checks over a workflow (or a whole
repository) and produces :class:`DecayReport` objects that curators can
act on — the same review-queue pattern the metadata side uses.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkflowError
from repro.workflow.builtins import FUNCTION_TABLE
from repro.workflow.model import ProcessorRegistry, Workflow
from repro.workflow.repository import WorkflowRepository

__all__ = ["DecayCause", "DecayReport", "DecayScanner"]

#: availability below this marks an external service as effectively dead
DEAD_SERVICE_THRESHOLD = 0.2


class _ScanMemo:
    """One memoized repository scan: the spec digest and environment
    facts it was computed under, plus the report they produced."""

    __slots__ = ("digest", "kinds", "functions", "availability", "report")

    def __init__(self, digest: str, kinds: tuple, functions: tuple,
                 availability: tuple, report: "DecayReport") -> None:
        self.digest = digest
        self.kinds = kinds
        self.functions = functions
        #: (kind, availability-at-scan-time) for each kind the workflow
        #: references — re-probed on every memo check so an availability
        #: collapse still invalidates without a spec change
        self.availability = availability
        self.report = report


class DecayCause:
    """One detected decay cause in one workflow."""

    __slots__ = ("kind", "processor", "detail")

    CAUSES = ("missing_implementation", "missing_function",
              "dead_service", "structural")

    def __init__(self, kind: str, processor: str | None,
                 detail: str) -> None:
        if kind not in self.CAUSES:
            raise WorkflowError(f"unknown decay cause {kind!r}")
        self.kind = kind
        self.processor = processor
        self.detail = detail

    def __repr__(self) -> str:
        where = f" @{self.processor}" if self.processor else ""
        return f"DecayCause({self.kind}{where}: {self.detail})"


class DecayReport:
    """All decay found in one workflow."""

    def __init__(self, workflow_name: str) -> None:
        self.workflow_name = workflow_name
        self.causes: list[DecayCause] = []

    def add(self, kind: str, processor: str | None, detail: str) -> None:
        self.causes.append(DecayCause(kind, processor, detail))

    @property
    def decayed(self) -> bool:
        return bool(self.causes)

    @property
    def runnable(self) -> bool:
        """Dead services degrade results but do not stop execution; the
        other causes do."""
        return all(cause.kind == "dead_service" for cause in self.causes)

    def causes_of(self, kind: str) -> list[DecayCause]:
        return [cause for cause in self.causes if cause.kind == kind]

    def summary(self) -> dict[str, int]:
        counts = dict.fromkeys(DecayCause.CAUSES, 0)
        for cause in self.causes:
            counts[cause.kind] += 1
        counts["total"] = len(self.causes)
        return counts

    def render(self) -> str:
        if not self.decayed:
            return f"workflow {self.workflow_name!r}: healthy"
        lines = [f"workflow {self.workflow_name!r}: "
                 f"{len(self.causes)} decay cause(s)"
                 + ("" if self.runnable else " (NOT RUNNABLE)")]
        for cause in self.causes:
            where = f" [{cause.processor}]" if cause.processor else ""
            lines.append(f"  - {cause.kind}{where}: {cause.detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DecayReport({self.workflow_name}, "
            f"{len(self.causes)} causes)"
        )


class DecayScanner:
    """Checks workflows against the current execution environment.

    Parameters
    ----------
    registry:
        The processor registry the workflow would run against.
    service_availability:
        ``processor kind -> availability`` callable (or mapping via
        ``dict.get``) reporting the *current* health of external
        services backing that kind.  ``None`` means unknown (no check).
    function_table:
        The ``python``-kind function table (defaults to the global one).
    """

    def __init__(self, registry: ProcessorRegistry,
                 service_availability: Callable[[str], float | None] | None = None,
                 function_table: dict | None = None) -> None:
        self.registry = registry
        self._service_availability = service_availability or (
            lambda kind: None)
        self.function_table = (FUNCTION_TABLE if function_table is None
                               else function_table)
        #: workflow name -> memoized scan; see :meth:`scan_repository`
        self._memo: dict[str, _ScanMemo] = {}

    def scan(self, workflow: Workflow) -> DecayReport:
        report = DecayReport(workflow.name)
        known_kinds = set(self.registry.kinds())
        for processor in workflow.processors.values():
            if processor.kind not in known_kinds:
                report.add(
                    "missing_implementation", processor.name,
                    f"kind {processor.kind!r} is not registered",
                )
            elif processor.kind == "python":
                function = processor.config.get("function")
                if function not in self.function_table:
                    report.add(
                        "missing_function", processor.name,
                        f"python function {function!r} has disappeared",
                    )
            availability = self._service_availability(processor.kind)
            if (availability is not None
                    and availability < DEAD_SERVICE_THRESHOLD):
                report.add(
                    "dead_service", processor.name,
                    f"backing service availability is {availability:.0%}",
                )
        try:
            workflow.validate()
        except WorkflowError as exc:
            report.add("structural", None, str(exc))
        return report

    def scan_repository(self, repository: WorkflowRepository) -> dict[str, DecayReport]:
        """Latest version of every stored workflow, memoized.

        A scan's verdict depends on the stored specification and on the
        execution environment — registered kinds, the python function
        table, and the availability answer for each kind the workflow
        references.  Per workflow we memoize the report keyed on the
        repository's :meth:`~WorkflowRepository.spec_digest` plus those
        environment facts; an unchanged workflow in an unchanged
        environment is answered from the memo without calling
        ``repository.load`` (no JSON parse, no re-scan), which is what
        makes scheduled re-checks over a large repository cheap.
        """
        kinds_token = tuple(sorted(self.registry.kinds()))
        functions_token = tuple(sorted(self.function_table))
        reports: dict[str, DecayReport] = {}
        for name in repository.names():
            digest = repository.spec_digest(name)
            memo = self._memo.get(name)
            if (memo is not None and digest is not None
                    and memo.digest == digest
                    and memo.kinds == kinds_token
                    and memo.functions == functions_token
                    and all(self._service_availability(kind) == seen
                            for kind, seen in memo.availability)):
                reports[name] = memo.report
                continue
            workflow = repository.load(name)
            report = self.scan(workflow)
            referenced = sorted({
                processor.kind
                for processor in workflow.processors.values()
            })
            if digest is not None:
                self._memo[name] = _ScanMemo(
                    digest, kinds_token, functions_token,
                    tuple((kind, self._service_availability(kind))
                          for kind in referenced),
                    report,
                )
            reports[name] = report
        return reports

    def decayed_workflows(self, repository: WorkflowRepository) -> list[str]:
        return sorted(
            name for name, report in self.scan_repository(repository).items()
            if report.decayed
        )
