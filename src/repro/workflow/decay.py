"""Workflow decay detection.

The paper's conclusion: "we point out that workflows may also decay —
e.g., see Zhao et al. [38].  This reinforces the notion that quality
assessment must be a continuous task."

Zhao et al. classify why Taverna workflows break; the causes that apply
to our engine are implemented as checks:

* **missing implementation** — the workflow references a processor
  ``kind`` no longer present in the registry (third-party component
  gone);
* **missing function** — a ``python`` processor whose named function
  has disappeared from the function table;
* **dead external service** — an external-source processor whose
  declared/observed availability has collapsed;
* **structural rot** — the stored specification no longer validates
  (dangling links, unfed required ports) after partial edits.

:class:`DecayScanner` runs the checks over a workflow (or a whole
repository) and produces :class:`DecayReport` objects that curators can
act on — the same review-queue pattern the metadata side uses.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkflowError
from repro.workflow.builtins import FUNCTION_TABLE
from repro.workflow.model import ProcessorRegistry, Workflow
from repro.workflow.repository import WorkflowRepository

__all__ = ["DecayCause", "DecayReport", "DecayScanner"]

#: availability below this marks an external service as effectively dead
DEAD_SERVICE_THRESHOLD = 0.2


class DecayCause:
    """One detected decay cause in one workflow."""

    __slots__ = ("kind", "processor", "detail")

    CAUSES = ("missing_implementation", "missing_function",
              "dead_service", "structural")

    def __init__(self, kind: str, processor: str | None,
                 detail: str) -> None:
        if kind not in self.CAUSES:
            raise WorkflowError(f"unknown decay cause {kind!r}")
        self.kind = kind
        self.processor = processor
        self.detail = detail

    def __repr__(self) -> str:
        where = f" @{self.processor}" if self.processor else ""
        return f"DecayCause({self.kind}{where}: {self.detail})"


class DecayReport:
    """All decay found in one workflow."""

    def __init__(self, workflow_name: str) -> None:
        self.workflow_name = workflow_name
        self.causes: list[DecayCause] = []

    def add(self, kind: str, processor: str | None, detail: str) -> None:
        self.causes.append(DecayCause(kind, processor, detail))

    @property
    def decayed(self) -> bool:
        return bool(self.causes)

    @property
    def runnable(self) -> bool:
        """Dead services degrade results but do not stop execution; the
        other causes do."""
        return all(cause.kind == "dead_service" for cause in self.causes)

    def causes_of(self, kind: str) -> list[DecayCause]:
        return [cause for cause in self.causes if cause.kind == kind]

    def summary(self) -> dict[str, int]:
        counts = dict.fromkeys(DecayCause.CAUSES, 0)
        for cause in self.causes:
            counts[cause.kind] += 1
        counts["total"] = len(self.causes)
        return counts

    def render(self) -> str:
        if not self.decayed:
            return f"workflow {self.workflow_name!r}: healthy"
        lines = [f"workflow {self.workflow_name!r}: "
                 f"{len(self.causes)} decay cause(s)"
                 + ("" if self.runnable else " (NOT RUNNABLE)")]
        for cause in self.causes:
            where = f" [{cause.processor}]" if cause.processor else ""
            lines.append(f"  - {cause.kind}{where}: {cause.detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DecayReport({self.workflow_name}, "
            f"{len(self.causes)} causes)"
        )


class DecayScanner:
    """Checks workflows against the current execution environment.

    Parameters
    ----------
    registry:
        The processor registry the workflow would run against.
    service_availability:
        ``processor kind -> availability`` callable (or mapping via
        ``dict.get``) reporting the *current* health of external
        services backing that kind.  ``None`` means unknown (no check).
    function_table:
        The ``python``-kind function table (defaults to the global one).
    """

    def __init__(self, registry: ProcessorRegistry,
                 service_availability: Callable[[str], float | None] | None = None,
                 function_table: dict | None = None) -> None:
        self.registry = registry
        self._service_availability = service_availability or (
            lambda kind: None)
        self.function_table = (FUNCTION_TABLE if function_table is None
                               else function_table)

    def scan(self, workflow: Workflow) -> DecayReport:
        report = DecayReport(workflow.name)
        known_kinds = set(self.registry.kinds())
        for processor in workflow.processors.values():
            if processor.kind not in known_kinds:
                report.add(
                    "missing_implementation", processor.name,
                    f"kind {processor.kind!r} is not registered",
                )
            elif processor.kind == "python":
                function = processor.config.get("function")
                if function not in self.function_table:
                    report.add(
                        "missing_function", processor.name,
                        f"python function {function!r} has disappeared",
                    )
            availability = self._service_availability(processor.kind)
            if (availability is not None
                    and availability < DEAD_SERVICE_THRESHOLD):
                report.add(
                    "dead_service", processor.name,
                    f"backing service availability is {availability:.0%}",
                )
        try:
            workflow.validate()
        except WorkflowError as exc:
            report.add("structural", None, str(exc))
        return report

    def scan_repository(self, repository: WorkflowRepository) -> dict[str, DecayReport]:
        """Latest version of every stored workflow."""
        return {
            name: self.scan(repository.load(name))
            for name in repository.names()
        }

    def decayed_workflows(self, repository: WorkflowRepository) -> list[str]:
        return sorted(
            name for name, report in self.scan_repository(repository).items()
            if report.decayed
        )
