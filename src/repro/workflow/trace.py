"""Run traces: what the Provenance Manager consumes.

A :class:`WorkflowTrace` records one execution of one workflow:

* the values that crossed every port, as :class:`DataBinding` entries
  with stable artifact ids,
* one :class:`ProcessorRun` per processor invocation with simulated
  start/end times and status,
* the workflow-level inputs and outputs.

Traces are plain data — they can be stored, serialized and mapped into
OPM graphs long after the run (the paper stores "workflow description and
execution logs" in the provenance repository).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterator, Mapping

__all__ = ["DataBinding", "ProcessorRun", "WorkflowTrace"]


class DataBinding:
    """One value observed on one port during a run."""

    __slots__ = ("artifact_id", "processor", "port", "direction", "value")

    def __init__(self, artifact_id: str, processor: str, port: str,
                 direction: str, value: Any) -> None:
        if direction not in ("input", "output"):
            raise ValueError(f"bad binding direction {direction!r}")
        self.artifact_id = artifact_id
        self.processor = processor
        self.port = port
        self.direction = direction
        self.value = value

    def __repr__(self) -> str:
        return (
            f"DataBinding({self.artifact_id}: {self.processor}.{self.port} "
            f"{self.direction})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "artifact_id": self.artifact_id,
            "processor": self.processor,
            "port": self.port,
            "direction": self.direction,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DataBinding":
        return cls(data["artifact_id"], data["processor"], data["port"],
                   data["direction"], data.get("value"))


class ProcessorRun:
    """One processor invocation inside a run.

    ``cached_from`` is set when the engine served the invocation from
    its result cache instead of executing it; it names the
    ``run_id/processor`` whose execution originally produced the
    outputs, so provenance consumers (OPM export: ``wasCachedFrom``)
    never mistake a replay for a re-execution.
    """

    def __init__(self, processor: str, kind: str,
                 started: _dt.datetime, finished: _dt.datetime,
                 status: str = "completed", error: str | None = None,
                 cached_from: str | None = None) -> None:
        self.processor = processor
        self.kind = kind
        self.started = started
        self.finished = finished
        self.status = status  # "completed" | "failed" | "skipped"
        self.error = error
        self.cached_from = cached_from

    @property
    def duration(self) -> _dt.timedelta:
        return self.finished - self.started

    def __repr__(self) -> str:
        return f"ProcessorRun({self.processor}, {self.status})"

    def to_dict(self) -> dict[str, Any]:
        data = {
            "processor": self.processor,
            "kind": self.kind,
            "started": self.started.isoformat(),
            "finished": self.finished.isoformat(),
            "status": self.status,
            "error": self.error,
        }
        if self.cached_from is not None:
            data["cached_from"] = self.cached_from
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProcessorRun":
        return cls(
            data["processor"],
            data.get("kind", ""),
            _dt.datetime.fromisoformat(data["started"]),
            _dt.datetime.fromisoformat(data["finished"]),
            status=data.get("status", "completed"),
            error=data.get("error"),
            cached_from=data.get("cached_from"),
        )


class WorkflowTrace:
    """The complete execution log of one workflow run."""

    def __init__(self, run_id: str, workflow_name: str,
                 started: _dt.datetime) -> None:
        self.run_id = run_id
        self.workflow_name = workflow_name
        self.started = started
        self.finished: _dt.datetime | None = None
        self.status = "running"  # -> "completed" | "degraded" | "failed"
        self.inputs: dict[str, Any] = {}
        self.outputs: dict[str, Any] = {}
        self.processor_runs: list[ProcessorRun] = []
        self.bindings: list[DataBinding] = []
        self._artifact_counter = 0

    def __repr__(self) -> str:
        return f"WorkflowTrace({self.run_id}, {self.status})"

    # -- recording (used by the engine) ------------------------------------

    def new_artifact_id(self) -> str:
        self._artifact_counter += 1
        return f"{self.run_id}/a{self._artifact_counter}"

    def record_binding(self, processor: str, port: str, direction: str,
                       value: Any, artifact_id: str | None = None) -> DataBinding:
        binding = DataBinding(
            artifact_id or self.new_artifact_id(),
            processor, port, direction, value,
        )
        self.bindings.append(binding)
        return binding

    def record_run(self, run: ProcessorRun) -> None:
        self.processor_runs.append(run)

    def finish(self, finished: _dt.datetime, status: str) -> None:
        self.finished = finished
        self.status = status

    # -- queries -----------------------------------------------------------

    @property
    def duration(self) -> _dt.timedelta | None:
        if self.finished is None:
            return None
        return self.finished - self.started

    def run_for(self, processor: str) -> ProcessorRun | None:
        for run in self.processor_runs:
            if run.processor == processor:
                return run
        return None

    def bindings_for(self, processor: str,
                     direction: str | None = None) -> Iterator[DataBinding]:
        for binding in self.bindings:
            if binding.processor != processor:
                continue
            if direction is not None and binding.direction != direction:
                continue
            yield binding

    def failed_processors(self) -> list[str]:
        return [
            run.processor for run in self.processor_runs
            if run.status == "failed"
        ]

    @property
    def failed_processor_count(self) -> int:
        return len(self.failed_processors())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "workflow_name": self.workflow_name,
            "started": self.started.isoformat(),
            "finished": None if self.finished is None
            else self.finished.isoformat(),
            "status": self.status,
            "inputs": dict(self.inputs),
            "outputs": dict(self.outputs),
            "processor_runs": [r.to_dict() for r in self.processor_runs],
            "bindings": [b.to_dict() for b in self.bindings],
            "artifact_counter": self._artifact_counter,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkflowTrace":
        trace = cls(
            data["run_id"],
            data["workflow_name"],
            _dt.datetime.fromisoformat(data["started"]),
        )
        if data.get("finished"):
            trace.finished = _dt.datetime.fromisoformat(data["finished"])
        trace.status = data.get("status", "completed")
        trace.inputs = dict(data.get("inputs", {}))
        trace.outputs = dict(data.get("outputs", {}))
        trace.processor_runs = [
            ProcessorRun.from_dict(r) for r in data.get("processor_runs", ())
        ]
        trace.bindings = [
            DataBinding.from_dict(b) for b in data.get("bindings", ())
        ]
        trace._artifact_counter = int(data.get("artifact_counter", 0))
        return trace
