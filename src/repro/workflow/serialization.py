"""Workflow serialization: JSON and a t2flow-style XML dialect.

The XML dialect mirrors the shape of the paper's Listing 1 — processors
carry ``<annotations>`` blocks whose ``<text>`` bodies hold
``Q(dimension): value;`` statements::

    <workflow name="outdated_species_name_detection">
      <processor>
        <name>Catalog_of_life</name>
        <annotations>
          <annotationAssertion>
            <text>Q(reputation): 1;
    Q(availability): 0.9;</text>
            <date>2013-11-12T19:58:09</date>
          </annotationAssertion>
        </annotations>
        ...
      </processor>
      <datalink source="..." sourcePort="..." sink="..." sinkPort="..."/>
    </workflow>

Both directions are supported so annotated workflows survive storage in
the workflow repository.
"""

from __future__ import annotations

import datetime as _dt
import json
import xml.etree.ElementTree as ET

from repro.errors import SerializationError
from repro.workflow.annotations import AnnotationAssertion
from repro.workflow.model import DataLink, Processor, Workflow
from repro.workflow.ports import InputPort, OutputPort

__all__ = [
    "workflow_to_json",
    "workflow_from_json",
    "workflow_to_xml",
    "workflow_from_xml",
]


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def workflow_to_json(workflow: Workflow, indent: int | None = 2) -> str:
    """Serialize ``workflow`` to a JSON document."""
    return json.dumps(workflow.to_dict(), indent=indent, sort_keys=True)


def workflow_from_json(document: str) -> Workflow:
    """Parse a workflow from :func:`workflow_to_json` output."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid workflow JSON: {exc}") from None
    return Workflow.from_dict(data)


# ---------------------------------------------------------------------------
# XML (t2flow-style)
# ---------------------------------------------------------------------------

def _annotations_element(annotations: list[AnnotationAssertion]) -> ET.Element:
    container = ET.Element("annotations")
    for assertion in annotations:
        element = ET.SubElement(container, "annotationAssertion")
        ET.SubElement(element, "text").text = assertion.text
        ET.SubElement(element, "date").text = assertion.date.isoformat()
        ET.SubElement(element, "creator").text = assertion.creator
    return container


def _parse_annotations(container: ET.Element | None) -> list[AnnotationAssertion]:
    if container is None:
        return []
    assertions = []
    for element in container.findall("annotationAssertion"):
        text = element.findtext("text") or ""
        date_text = element.findtext("date")
        creator = element.findtext("creator") or ""
        date = _dt.datetime.fromisoformat(date_text) if date_text else None
        assertions.append(AnnotationAssertion(text, date=date, creator=creator))
    return assertions


def workflow_to_xml(workflow: Workflow) -> str:
    """Serialize to the t2flow-style XML dialect (Listing 1 shape)."""
    root = ET.Element("workflow", name=workflow.name)
    if workflow.description:
        ET.SubElement(root, "description").text = workflow.description
    if workflow.annotations:
        root.append(_annotations_element(workflow.annotations))
    for processor in workflow.processors.values():
        element = ET.SubElement(root, "processor")
        ET.SubElement(element, "name").text = processor.name
        ET.SubElement(element, "kind").text = processor.kind
        for port in processor.input_ports.values():
            attrs: dict[str, str] = {"name": port.name}
            if not port.required:
                attrs["default"] = json.dumps(port.default)
            ET.SubElement(element, "inputPort", **attrs)
        for port in processor.output_ports.values():
            ET.SubElement(element, "outputPort", name=port.name)
        if processor.config:
            ET.SubElement(element, "config").text = json.dumps(
                processor.config, sort_keys=True
            )
        if processor.annotations:
            element.append(_annotations_element(processor.annotations))
    for link in workflow.links:
        ET.SubElement(
            root, "datalink",
            source=link.source, sourcePort=link.source_port,
            sink=link.sink, sinkPort=link.sink_port,
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def workflow_from_xml(document: str) -> Workflow:
    """Parse a workflow from :func:`workflow_to_xml` output."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid workflow XML: {exc}") from None
    if root.tag != "workflow":
        raise SerializationError(
            f"expected <workflow> root, found <{root.tag}>"
        )
    workflow = Workflow(
        root.get("name", "unnamed"),
        description=root.findtext("description") or "",
        annotations=_parse_annotations(root.find("annotations")),
    )
    for element in root.findall("processor"):
        name = element.findtext("name")
        kind = element.findtext("kind") or "identity"
        if not name:
            raise SerializationError("processor without a <name>")
        inputs: list[InputPort] = []
        for port in element.findall("inputPort"):
            port_name = port.get("name", "")
            if "default" in port.attrib:
                inputs.append(
                    InputPort(port_name,
                              default=json.loads(port.attrib["default"]))
                )
            else:
                inputs.append(InputPort(port_name))
        outputs = [
            OutputPort(port.get("name", ""))
            for port in element.findall("outputPort")
        ]
        config_text = element.findtext("config")
        config = json.loads(config_text) if config_text else {}
        workflow.add_processor(Processor(
            name, kind, inputs=inputs, outputs=outputs, config=config,
            annotations=_parse_annotations(element.find("annotations")),
        ))
    for element in root.findall("datalink"):
        workflow.links.append(DataLink(
            element.get("source", ""), element.get("sourcePort", ""),
            element.get("sink", ""), element.get("sinkPort", ""),
        ))
    return workflow
