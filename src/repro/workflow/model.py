"""The workflow model: processors, data links, workflows.

A :class:`Workflow` is a DAG of :class:`Processor` nodes wired by
:class:`DataLink` edges.  Workflow-level inputs and outputs are modelled
as links whose processor end is the pseudo-node ``Workflow.IO`` — the
same trick Taverna's t2flow format uses.

Processors are *descriptions*: a ``kind`` (a key into a processor
registry that maps to an implementation) plus a ``config`` dict.  This
keeps workflows serializable; the behaviour lives in the registry
(:mod:`repro.workflow.builtins` registers the standard kinds).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import (
    UnknownPortError,
    UnknownProcessorError,
    WorkflowValidationError,
)
from repro.workflow.annotations import AnnotationAssertion, QualityAnnotation
from repro.workflow.ports import InputPort, OutputPort

__all__ = ["Processor", "DataLink", "Workflow", "ProcessorRegistry"]

RunFunction = Callable[[Mapping[str, Any]], Mapping[str, Any]]


class Processor:
    """One step of a workflow.

    Parameters
    ----------
    name:
        Unique name within the workflow.
    kind:
        Registry key of the implementation (e.g. ``"python"``,
        ``"catalogue_lookup"``).
    inputs / outputs:
        The ports.  Strings are accepted as shorthand for required ports.
    config:
        Implementation parameters; must be JSON-serializable.
    annotations:
        :class:`AnnotationAssertion` list — including quality annotations
        added by the Workflow Adapter.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        inputs: Iterable[InputPort | str] = (),
        outputs: Iterable[OutputPort | str] = (),
        config: Mapping[str, Any] | None = None,
        annotations: Iterable[AnnotationAssertion] = (),
    ) -> None:
        if not name:
            raise WorkflowValidationError("processor needs a name")
        self.name = name
        self.kind = kind
        self.input_ports: dict[str, InputPort] = {}
        for port in inputs:
            if isinstance(port, str):
                port = InputPort(port)
            if port.name in self.input_ports:
                raise WorkflowValidationError(
                    f"processor {name!r}: duplicate input port {port.name!r}"
                )
            self.input_ports[port.name] = port
        self.output_ports: dict[str, OutputPort] = {}
        for port in outputs:
            if isinstance(port, str):
                port = OutputPort(port)
            if port.name in self.output_ports:
                raise WorkflowValidationError(
                    f"processor {name!r}: duplicate output port {port.name!r}"
                )
            self.output_ports[port.name] = port
        self.config: dict[str, Any] = dict(config or {})
        self.annotations: list[AnnotationAssertion] = list(annotations)

    def __repr__(self) -> str:
        return f"Processor({self.name}, kind={self.kind})"

    def annotate(self, assertion: AnnotationAssertion) -> None:
        self.annotations.append(assertion)

    @property
    def quality(self) -> QualityAnnotation:
        """Union of the quality statements across all annotations (later
        assertions override earlier ones on the same dimension)."""
        merged = QualityAnnotation({})
        for assertion in self.annotations:
            merged = merged.merged_with(assertion.quality)
        return merged

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "inputs": [
                {"name": port.name, "required": port.required,
                 "default": None if port.required else port.default,
                 "description": port.description}
                for port in self.input_ports.values()
            ],
            "outputs": [
                {"name": port.name, "description": port.description}
                for port in self.output_ports.values()
            ],
            "config": dict(self.config),
            "annotations": [a.to_dict() for a in self.annotations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Processor":
        inputs = []
        for port in data.get("inputs", ()):
            if port.get("required", True):
                inputs.append(InputPort(port["name"],
                                        description=port.get("description", "")))
            else:
                inputs.append(InputPort(port["name"], default=port.get("default"),
                                        description=port.get("description", "")))
        outputs = [
            OutputPort(port["name"], description=port.get("description", ""))
            for port in data.get("outputs", ())
        ]
        return cls(
            data["name"],
            data["kind"],
            inputs=inputs,
            outputs=outputs,
            config=data.get("config", {}),
            annotations=[
                AnnotationAssertion.from_dict(a)
                for a in data.get("annotations", ())
            ],
        )


class DataLink:
    """A dataflow edge: ``source.source_port -> sink.sink_port``.

    ``Workflow.IO`` as the source means a workflow input; as the sink, a
    workflow output.
    """

    __slots__ = ("source", "source_port", "sink", "sink_port")

    def __init__(self, source: str, source_port: str,
                 sink: str, sink_port: str) -> None:
        self.source = source
        self.source_port = source_port
        self.sink = sink
        self.sink_port = sink_port

    def __repr__(self) -> str:
        return (
            f"DataLink({self.source}.{self.source_port} -> "
            f"{self.sink}.{self.sink_port})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataLink):
            return NotImplemented
        return (
            self.source, self.source_port, self.sink, self.sink_port
        ) == (other.source, other.source_port, other.sink, other.sink_port)

    def __hash__(self) -> int:
        return hash((self.source, self.source_port, self.sink, self.sink_port))

    def to_dict(self) -> dict[str, str]:
        return {
            "source": self.source, "source_port": self.source_port,
            "sink": self.sink, "sink_port": self.sink_port,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "DataLink":
        return cls(data["source"], data["source_port"],
                   data["sink"], data["sink_port"])


class Workflow:
    """A named DAG of processors.

    Build incrementally::

        wf = Workflow("outdated_species_name_detection")
        wf.add_processor(reader)
        wf.add_processor(checker)
        wf.link("reader", "names", "checker", "names")
        wf.map_input("metadata", "reader", "records")
        wf.map_output("summary", "checker", "summary")
        wf.validate()
    """

    #: pseudo-processor name representing the workflow boundary
    IO = "__workflow__"

    def __init__(self, name: str, description: str = "",
                 annotations: Iterable[AnnotationAssertion] = ()) -> None:
        if not name:
            raise WorkflowValidationError("workflow needs a name")
        self.name = name
        self.description = description
        self.processors: dict[str, Processor] = {}
        self.links: list[DataLink] = []
        self.annotations: list[AnnotationAssertion] = list(annotations)

    def __repr__(self) -> str:
        return (
            f"Workflow({self.name}, {len(self.processors)} processors, "
            f"{len(self.links)} links)"
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_processor(self, processor: Processor) -> Processor:
        if processor.name == self.IO:
            raise WorkflowValidationError(
                f"{self.IO!r} is reserved for the workflow boundary"
            )
        if processor.name in self.processors:
            raise WorkflowValidationError(
                f"duplicate processor {processor.name!r}"
            )
        self.processors[processor.name] = processor
        return processor

    def link(self, source: str, source_port: str,
             sink: str, sink_port: str) -> DataLink:
        """Wire ``source.source_port`` into ``sink.sink_port``."""
        data_link = DataLink(source, source_port, sink, sink_port)
        self.links.append(data_link)
        return data_link

    def map_input(self, workflow_port: str, sink: str, sink_port: str) -> DataLink:
        """Expose a workflow-level input feeding ``sink.sink_port``."""
        return self.link(self.IO, workflow_port, sink, sink_port)

    def map_output(self, workflow_port: str, source: str,
                   source_port: str) -> DataLink:
        """Expose ``source.source_port`` as a workflow-level output."""
        return self.link(source, source_port, self.IO, workflow_port)

    def annotate(self, assertion: AnnotationAssertion) -> None:
        self.annotations.append(assertion)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def processor(self, name: str) -> Processor:
        try:
            return self.processors[name]
        except KeyError:
            raise UnknownProcessorError(
                f"workflow {self.name!r} has no processor {name!r}"
            ) from None

    def input_names(self) -> list[str]:
        """Workflow-level input port names, in declaration order."""
        seen: list[str] = []
        for link in self.links:
            if link.source == self.IO and link.source_port not in seen:
                seen.append(link.source_port)
        return seen

    def output_names(self) -> list[str]:
        seen: list[str] = []
        for link in self.links:
            if link.sink == self.IO and link.sink_port not in seen:
                seen.append(link.sink_port)
        return seen

    def incoming_links(self, processor: str) -> list[DataLink]:
        return [link for link in self.links if link.sink == processor]

    def outgoing_links(self, processor: str) -> list[DataLink]:
        return [link for link in self.links if link.source == processor]

    @property
    def quality(self) -> QualityAnnotation:
        merged = QualityAnnotation({})
        for assertion in self.annotations:
            merged = merged.merged_with(assertion.quality)
        return merged

    # ------------------------------------------------------------------
    # validation & ordering
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raises WorkflowValidationError."""
        for link in self.links:
            if link.source != self.IO:
                source = self.processor(link.source)
                if link.source_port not in source.output_ports:
                    raise UnknownPortError(
                        f"{link.source!r} has no output port "
                        f"{link.source_port!r}"
                    )
            if link.sink != self.IO:
                sink = self.processor(link.sink)
                if link.sink_port not in sink.input_ports:
                    raise UnknownPortError(
                        f"{link.sink!r} has no input port {link.sink_port!r}"
                    )
        # one feeder per input port
        fed: set[tuple[str, str]] = set()
        for link in self.links:
            if link.sink == self.IO:
                continue
            key = (link.sink, link.sink_port)
            if key in fed:
                raise WorkflowValidationError(
                    f"input port {link.sink}.{link.sink_port} is fed by "
                    "more than one link"
                )
            fed.add(key)
        # every required input port must be fed
        for processor in self.processors.values():
            for port in processor.input_ports.values():
                if port.required and (processor.name, port.name) not in fed:
                    raise WorkflowValidationError(
                        f"required input port {processor.name}.{port.name} "
                        "is not connected"
                    )
        self.execution_order()  # raises on cycles

    def execution_order(self) -> list[str]:
        """Topological order of processor names (Kahn's algorithm;
        deterministic — ties broken alphabetically)."""
        indegree: dict[str, int] = {name: 0 for name in self.processors}
        dependents: dict[str, set[str]] = {name: set() for name in self.processors}
        for link in self.links:
            if link.source == self.IO or link.sink == self.IO:
                continue
            if link.sink not in dependents.get(link.source, set()):
                dependents[link.source].add(link.sink)
                indegree[link.sink] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dependent in sorted(dependents[name]):
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
            ready.sort()
        if len(order) != len(self.processors):
            cyclic = sorted(set(self.processors) - set(order))
            raise WorkflowValidationError(
                f"workflow {self.name!r} has a cycle involving {cyclic}"
            )
        return order

    def waves(self) -> list[list[str]]:
        """Topological *waves*: level-order Kahn decomposition.

        Each wave lists processors (alphabetically) whose inputs are all
        fed by earlier waves, so members of one wave are mutually
        independent and may execute concurrently.  Concatenated, the
        waves form a valid topological order — the engine's canonical
        execution order for every ``max_workers`` setting.
        """
        indegree: dict[str, int] = {name: 0 for name in self.processors}
        dependents: dict[str, set[str]] = {
            name: set() for name in self.processors
        }
        for link in self.links:
            if link.source == self.IO or link.sink == self.IO:
                continue
            if link.sink not in dependents.get(link.source, set()):
                dependents[link.source].add(link.sink)
                indegree[link.sink] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        waves: list[list[str]] = []
        placed = 0
        while ready:
            waves.append(ready)
            placed += len(ready)
            unblocked: list[str] = []
            for name in ready:
                for dependent in dependents[name]:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0:
                        unblocked.append(dependent)
            ready = sorted(unblocked)
        if placed != len(self.processors):
            scheduled = {name for wave in waves for name in wave}
            cyclic = sorted(set(self.processors) - scheduled)
            raise WorkflowValidationError(
                f"workflow {self.name!r} has a cycle involving {cyclic}"
            )
        return waves

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "processors": [p.to_dict() for p in self.processors.values()],
            "links": [link.to_dict() for link in self.links],
            "annotations": [a.to_dict() for a in self.annotations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Workflow":
        workflow = cls(
            data["name"],
            description=data.get("description", ""),
            annotations=[
                AnnotationAssertion.from_dict(a)
                for a in data.get("annotations", ())
            ],
        )
        for processor_data in data.get("processors", ()):
            workflow.add_processor(Processor.from_dict(processor_data))
        for link_data in data.get("links", ()):
            workflow.links.append(DataLink.from_dict(link_data))
        return workflow


class ProcessorRegistry:
    """Maps processor ``kind`` strings to implementations.

    An implementation is a factory ``(processor) -> RunFunction`` — given
    the :class:`Processor` description it returns the callable executed by
    the engine.  The indirection lets one kind serve many configured
    processors.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[Processor], RunFunction]] = {}

    def register(self, kind: str,
                 factory: Callable[[Processor], RunFunction]) -> None:
        self._factories[kind] = factory

    def register_function(self, kind: str, function: RunFunction) -> None:
        """Register a kind whose behaviour ignores the config."""
        self._factories[kind] = lambda processor: function

    def resolve(self, processor: Processor) -> RunFunction:
        try:
            factory = self._factories[processor.kind]
        except KeyError:
            raise UnknownProcessorError(
                f"no implementation registered for kind "
                f"{processor.kind!r} (processor {processor.name!r})"
            ) from None
        return factory(processor)

    def kinds(self) -> list[str]:
        return sorted(self._factories)

    def copy(self) -> "ProcessorRegistry":
        clone = ProcessorRegistry()
        clone._factories = dict(self._factories)
        return clone
