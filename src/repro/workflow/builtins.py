"""Builtin processor kinds.

These are the reusable "local modules" of the architecture.  Each kind is
a factory registered on the shared builtin registry; workflows reference
them by name so they stay serializable.

Kinds
-----
``constant``
    Emits ``config["value"]`` on the ``value`` output port.
``identity``
    Copies each input port to the output port of the same name.
``rename``
    Copies inputs to outputs following ``config["mapping"]``.
``python``
    Runs a named function from :data:`FUNCTION_TABLE` (safe, explicit
    allow-list — no eval).  ``config["function"]`` picks it.
``select_field``
    Extracts ``config["field"]`` from each dict in the ``records`` input,
    emitting the list on ``values``.
``distinct``
    Deduplicates the ``values`` input preserving first-seen order.
``length``
    Emits ``len(values)`` on ``count``.
``merge_dicts``
    Shallow-merges every input port's dict value into one dict.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import WorkflowError
from repro.workflow.model import Processor, ProcessorRegistry, RunFunction

__all__ = ["builtin_registry", "register_function", "FUNCTION_TABLE"]

#: Named functions usable by ``python`` processors.  Extend via
#: :func:`register_function`.
FUNCTION_TABLE: dict[str, Callable[..., Any]] = {}


def register_function(name: str, function: Callable[..., Any]) -> None:
    """Expose ``function`` to ``python`` processors under ``name``."""
    FUNCTION_TABLE[name] = function


def _constant(processor: Processor) -> RunFunction:
    value = processor.config.get("value")

    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        return {"value": value}

    return run


def _identity(processor: Processor) -> RunFunction:
    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        return dict(inputs)

    return run


def _rename(processor: Processor) -> RunFunction:
    mapping: dict[str, str] = dict(processor.config.get("mapping", {}))

    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        return {
            target: inputs.get(source) for source, target in mapping.items()
        }

    return run


def _python(processor: Processor) -> RunFunction:
    function_name = processor.config.get("function")
    if function_name not in FUNCTION_TABLE:
        raise WorkflowError(
            f"processor {processor.name!r}: unknown python function "
            f"{function_name!r}"
        )
    function = FUNCTION_TABLE[function_name]
    output_port = processor.config.get("output", "result")

    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        result = function(**dict(inputs))
        if isinstance(result, Mapping):
            return dict(result)
        return {output_port: result}

    return run


def _select_field(processor: Processor) -> RunFunction:
    field = processor.config.get("field")
    if not field:
        raise WorkflowError(
            f"processor {processor.name!r}: select_field needs a 'field'"
        )

    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        records = inputs.get("records") or []
        return {"values": [record.get(field) for record in records]}

    return run


def _distinct(processor: Processor) -> RunFunction:
    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        seen: set[Any] = set()
        unique: list[Any] = []
        for value in inputs.get("values") or []:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        return {"values": unique}

    return run


def _length(processor: Processor) -> RunFunction:
    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        values = inputs.get("values")
        return {"count": 0 if values is None else len(values)}

    return run


def _merge_dicts(processor: Processor) -> RunFunction:
    def run(inputs: Mapping[str, Any]) -> dict[str, Any]:
        merged: dict[str, Any] = {}
        for port in sorted(inputs):
            value = inputs[port]
            if isinstance(value, Mapping):
                merged.update(value)
        return {"merged": merged}

    return run


_BUILTINS: dict[str, Callable[[Processor], RunFunction]] = {
    "constant": _constant,
    "identity": _identity,
    "rename": _rename,
    "python": _python,
    "select_field": _select_field,
    "distinct": _distinct,
    "length": _length,
    "merge_dicts": _merge_dicts,
}

_SHARED: ProcessorRegistry | None = None


def builtin_registry() -> ProcessorRegistry:
    """The shared registry holding every builtin kind.

    Engines copy it (so their extra registrations stay local)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ProcessorRegistry()
        for kind, factory in _BUILTINS.items():
            _SHARED.register(kind, factory)
    return _SHARED
