"""A Taverna-like scientific dataflow engine.

The paper runs its curation processes on the Taverna workflow management
system; this package is the from-scratch substitute.  It provides:

* a workflow model — processors with typed ports wired by data links into
  a DAG (:mod:`repro.workflow.model`, :mod:`repro.workflow.ports`),
* annotation assertions carrying ``Q(dimension): value`` quality
  annotations, mirroring the paper's Listing 1
  (:mod:`repro.workflow.annotations`),
* a deterministic execution engine with a simulated clock and a full run
  trace (:mod:`repro.workflow.engine`, :mod:`repro.workflow.trace`),
* serialization to JSON and to a t2flow-style XML document
  (:mod:`repro.workflow.serialization`),
* a workflow repository persisted on the storage engine
  (:mod:`repro.workflow.repository`),
* reusable builtin processors (:mod:`repro.workflow.builtins`).
"""

from repro.workflow.annotations import AnnotationAssertion, QualityAnnotation
from repro.workflow.decay import DecayReport, DecayScanner
from repro.workflow.engine import SimulatedClock, WorkflowEngine
from repro.workflow.model import DataLink, Processor, Workflow
from repro.workflow.ports import InputPort, OutputPort
from repro.workflow.repository import WorkflowRepository
from repro.workflow.trace import ProcessorRun, WorkflowTrace

from repro.workflow.visualize import opm_to_dot, workflow_to_dot

__all__ = [
    "AnnotationAssertion",
    "DataLink",
    "DecayReport",
    "DecayScanner",
    "InputPort",
    "OutputPort",
    "Processor",
    "ProcessorRun",
    "QualityAnnotation",
    "SimulatedClock",
    "Workflow",
    "WorkflowEngine",
    "WorkflowRepository",
    "WorkflowTrace",
    "opm_to_dot",
    "workflow_to_dot",
]
