"""Content-keyed memoization of processor invocations.

The provenance insight (Missier's lifecycle work; the RO-Crate run
profile): once a run's inputs are digested, a byte-identical invocation
can be *reused* instead of re-executed, and the trace can say so
honestly.  :func:`invocation_key` derives a deterministic digest from
(processor name, kind, implementation version, config, bound input
values) via :mod:`repro.hashing`; :class:`ResultCache` is a bounded,
thread-safe LRU from those digests to recorded outputs.

Safety rules, enforced here and by the engine:

* only JSON-plain input values are keyable — anything carrying live
  objects yields no key and is simply re-executed;
* only *successful* invocations are stored (failures always re-run);
* processors may opt out with ``config["cacheable"] = False`` (the
  species-check persister does: it writes to the database);
* entries are deep-copied on both store and fetch, so a downstream
  processor mutating a replayed value can never corrupt the cache.

A hit is spliced into the trace with a ``wasCachedFrom`` marker naming
the run/processor that actually computed the value, so the exported OPM
provenance never claims a re-execution that did not happen.

Entries may carry **tags** — opaque strings such as ``record:1042`` or
``resource:catalogue`` naming the upstream dependencies an invocation
read.  :meth:`ResultCache.invalidate_tags` drops every entry carrying
any of the given tags in one sweep, which is how the streaming layer
(:mod:`repro.streaming`) turns "record X changed" or "the catalogue
advanced" into a dirty set without re-digesting the whole collection.
"""

from __future__ import annotations

import copy
import datetime as _dt
import threading
from collections import OrderedDict
from typing import Any, Iterable, Mapping

from repro.hashing import canonical_digest

__all__ = ["CachedResult", "ResultCache", "invocation_key"]

#: scalars whose canonical JSON form is a pure function of their value
#: (dates/datetimes serialize via ``default=str``, which is stable)
_PLAIN_SCALARS = (bool, int, float, str, _dt.date, _dt.datetime)


def _json_plain(value: Any) -> bool:
    """True when ``value`` digests stably across processes and runs —
    plain JSON data plus date/datetime scalars."""
    if value is None or isinstance(value, _PLAIN_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        return all(_json_plain(item) for item in value)
    if isinstance(value, Mapping):
        return all(
            isinstance(key, str) and _json_plain(item)
            for key, item in value.items()
        )
    return False


def invocation_key(processor: Any, implementation: Any,
                   bound: Mapping[str, Any]) -> str | None:
    """The content key of one invocation, or ``None`` when unkeyable.

    The implementation version comes from
    ``config["implementation_version"]`` when declared, else from a
    ``cache_version`` attribute on the resolved implementation, else
    ``"1"`` — bump either to invalidate stale entries after changing a
    processor's behaviour.
    """
    if not _json_plain(processor.config) or not _json_plain(bound):
        return None
    version = str(processor.config.get(
        "implementation_version",
        getattr(implementation, "cache_version", "1"),
    ))
    return canonical_digest({
        "processor": processor.name,
        "kind": processor.kind,
        "version": version,
        "config": processor.config,
        "inputs": dict(bound),
    })


class CachedResult:
    """One memoized invocation: its output ports and where they came
    from (``run_id/processor`` of the execution that computed them)."""

    __slots__ = ("outputs", "source")

    def __init__(self, outputs: dict[str, Any], source: str) -> None:
        self.outputs = outputs
        self.source = source

    def __repr__(self) -> str:
        return f"CachedResult(from {self.source})"


class ResultCache:
    """A bounded, thread-safe LRU of :class:`CachedResult` entries.

    Share one instance across engines (or runs of one engine) to make
    warm re-runs skip identical work; ``hits``/``misses`` feed the
    ``engine_cache_*`` telemetry counters and ``repro stats`` panel.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("ResultCache needs max_entries >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CachedResult] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: tag -> keys carrying it / key -> its tags, kept in lockstep
        #: with ``_entries`` (eviction and clear() detach both sides)
        self._tag_keys: dict[str, set[str]] = {}
        self._key_tags: dict[str, tuple[str, ...]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )

    def get(self, key: str) -> CachedResult | None:
        """Fetch a hit (deep copy) or ``None``; updates hit/miss stats."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return CachedResult(copy.deepcopy(entry.outputs), entry.source)

    def put(self, key: str, outputs: Mapping[str, Any],
            source: str, tags: Iterable[str] = ()) -> None:
        """Store one successful invocation.

        Values that cannot be deep-copied (they would not replay safely)
        are skipped and counted under ``cache_store_skipped_total``; only
        the failures deep-copy itself signals — ``TypeError``,
        ``copy.Error``, ``RecursionError`` — are treated as "not
        copyable".  Anything else (say a ``KeyboardInterrupt`` or a bug
        in a value's ``__deepcopy__``) propagates.

        ``tags`` name the entry's upstream dependencies;
        :meth:`invalidate_tags` later drops every entry sharing one.
        """
        try:
            stored = copy.deepcopy(dict(outputs))
        except (TypeError, copy.Error, RecursionError):
            from repro.telemetry import get_telemetry

            get_telemetry().metrics.counter(
                "cache_store_skipped_total", source=source).inc()
            return
        tagged = tuple(sorted({str(tag) for tag in tags}))
        with self._lock:
            self._detach_locked(key)
            self._entries[key] = CachedResult(stored, source)
            self._entries.move_to_end(key)
            if tagged:
                self._key_tags[key] = tagged
                for tag in tagged:
                    self._tag_keys.setdefault(tag, set()).add(key)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._detach_locked(evicted)

    def _detach_locked(self, key: str) -> None:
        """Drop ``key``'s tag bookkeeping (caller holds ``_lock``)."""
        for tag in self._key_tags.pop(key, ()):
            keys = self._tag_keys.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._tag_keys[tag]

    def invalidate_tags(self, *tags: str) -> int:
        """Drop every entry carrying any of ``tags``; returns the number
        of entries removed.  Unknown tags are a no-op, so callers can
        invalidate speculatively (``record:<id>`` for a record that was
        never cached simply removes nothing)."""
        with self._lock:
            doomed: set[str] = set()
            for tag in tags:
                doomed.update(self._tag_keys.get(tag, ()))
            for key in doomed:
                self._entries.pop(key, None)
                self._detach_locked(key)
            removed = len(doomed)
            self.invalidations += removed
        if removed:
            from repro.telemetry import get_telemetry

            get_telemetry().metrics.counter(
                "cache_tag_invalidations_total").inc(removed)
        return removed

    def tags_of(self, key: str) -> tuple[str, ...]:
        """The tags stored with ``key`` (empty when untagged/absent)."""
        with self._lock:
            return self._key_tags.get(key, ())

    def keys_for_tag(self, tag: str) -> tuple[str, ...]:
        """The invocation keys currently carrying ``tag``, sorted."""
        with self._lock:
            return tuple(sorted(self._tag_keys.get(tag, ())))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "tags": len(self._tag_keys),
            "invalidations": self.invalidations,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._tag_keys.clear()
            self._key_tags.clear()
