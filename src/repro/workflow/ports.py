"""Processor ports.

Ports are the named connection points of a processor.  An
:class:`InputPort` may declare a default value (making the link optional);
an :class:`OutputPort` is just a named output slot.
"""

from __future__ import annotations

from typing import Any

from repro.errors import MissingDefaultError, WorkflowValidationError

__all__ = ["InputPort", "OutputPort"]

_MISSING = object()


class InputPort:
    """A named input of a processor.

    Parameters
    ----------
    name:
        Port identifier, unique within the processor.
    default:
        Value used when nothing is linked to the port.  Omitting it makes
        the port *required*: validation fails if no link and no workflow
        input feeds it.
    description:
        Human-readable documentation.
    """

    __slots__ = ("name", "_default", "description")

    def __init__(self, name: str, default: Any = _MISSING,
                 description: str = "") -> None:
        if not name:
            raise WorkflowValidationError("input port needs a name")
        self.name = name
        self._default = default
        self.description = description

    @property
    def required(self) -> bool:
        return self._default is _MISSING

    @property
    def default(self) -> Any:
        if self.required:
            raise MissingDefaultError(
                f"input port {self.name!r} is required and declares "
                "no default; link a value to it or construct the port "
                "with default=..."
            )
        return self._default

    def __repr__(self) -> str:
        suffix = "" if self.required else f"={self._default!r}"
        return f"InputPort({self.name}{suffix})"


class OutputPort:
    """A named output of a processor."""

    __slots__ = ("name", "description")

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise WorkflowValidationError("output port needs a name")
        self.name = name
        self.description = description

    def __repr__(self) -> str:
        return f"OutputPort({self.name})"
