"""The workflow execution engine.

Deterministic by construction: time comes from a :class:`SimulatedClock`
(the paper's Listing 1 timestamp, 2013-11-12 19:58:09 UTC, is the default
epoch) and run ids from a per-engine counter.  Processors execute in
*wave order* — the level-order decomposition of the DAG
(:meth:`~repro.workflow.model.Workflow.waves`), alphabetical within each
wave — and every port value is recorded in the
:class:`~repro.workflow.trace.WorkflowTrace` so the Provenance Manager
can later reconstruct full OPM provenance.

Parallelism: ``WorkflowEngine(max_workers=N)`` dispatches the members of
each wave (mutually independent by construction) to a thread pool and
joins before moving on.  ``N=1`` keeps today's exact inline sequential
semantics.  Whatever ``N``, results are *committed* to the trace on the
calling thread in wave+name order, and the simulated clock only advances
at commit — so run ids, artifact ids, trace contents, timestamps and
listener events are identical for every worker count; only wall-clock
time changes.

Caching: pass a :class:`~repro.workflow.cache.ResultCache` and
invocations whose (processor, implementation version, config, bound
inputs) digest has been seen before skip execution entirely.  The trace
still records a :class:`ProcessorRun` for them, with zero simulated
duration and ``cached_from`` naming the original execution — provenance
never lies about re-execution.  Processors opt out via
``config["cacheable"] = False``.

Failure semantics: a processor exception aborts the run (status
``failed``) unless the processor's config sets ``"allow_failure": True``,
in which case downstream ports fed by it see ``None`` and the run
continues — mirroring how Taverna pipelines tolerate flaky services.
Such a run finishes with status ``degraded`` (not ``completed``): the
outputs exist but were produced with at least one processor down, and
:class:`RunResult` exposes both the status and the failed-processor
count so callers never mistake a partial result for a clean one.
With ``max_workers > 1`` a fatal failure still aborts at the failing
processor's commit point: same-wave siblings that already ran are
discarded, later waves never start, and the trace matches the ``N=1``
run byte for byte.

Implicit iteration (Taverna's signature behaviour): a processor whose
config names an input port in ``"iterate_over"`` is invoked once per
item when that port receives a list; the other inputs broadcast, each
output port collects its per-item values into a list, and simulated
durations accumulate.
"""

from __future__ import annotations

import datetime as _dt
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping

from repro.errors import WorkflowExecutionError, WorkflowValidationError
from repro.workflow.cache import ResultCache, invocation_key
from repro.workflow.model import Processor, ProcessorRegistry, Workflow
from repro.workflow.trace import ProcessorRun, WorkflowTrace

__all__ = ["SimulatedClock", "RunResult", "WorkflowEngine"]

#: Listing 1's annotation timestamp — a natural epoch for the simulation.
#: Timezone-aware: the paper's timestamp is UTC, and keeping the epoch
#: aware means every clock-derived instant serializes with its offset.
DEFAULT_EPOCH = _dt.datetime(2013, 11, 12, 19, 58, 9,
                             tzinfo=_dt.timezone.utc)


class SimulatedClock:
    """A deterministic, thread-safe clock.

    ``now()`` returns the current simulated instant; ``advance(seconds)``
    moves it forward.  Processors that model expensive work (e.g. the
    simulated Catalogue of Life's network latency) advance the clock via
    the engine's run context.  Both operations take an internal lock:
    engines share one clock across runs, and with ``max_workers > 1``
    worker threads read it while the scheduler advances it.
    """

    def __init__(self, epoch: _dt.datetime = DEFAULT_EPOCH) -> None:
        self._now = epoch
        self._lock = threading.Lock()

    def now(self) -> _dt.datetime:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> _dt.datetime:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += _dt.timedelta(seconds=seconds)
            return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock({self.now().isoformat()})"


class RunResult:
    """What a run returns: outputs plus the full trace.

    ``wall_seconds`` is the *real* elapsed time of this run, measured
    with a monotonic clock on the calling thread — unlike the simulated
    trace duration it is unaffected by other runs interleaving on the
    shared :class:`SimulatedClock`, so it is the number benchmarks and
    schedulers should compare.
    """

    def __init__(self, outputs: dict[str, Any], trace: WorkflowTrace,
                 wall_seconds: float = 0.0) -> None:
        self.outputs = outputs
        self.trace = trace
        self.wall_seconds = wall_seconds

    @property
    def run_id(self) -> str:
        return self.trace.run_id

    @property
    def status(self) -> str:
        """``completed`` | ``degraded`` | ``failed``."""
        return self.trace.status

    @property
    def succeeded(self) -> bool:
        """True only for a fully clean run — degraded runs don't count."""
        return self.trace.status == "completed"

    @property
    def degraded(self) -> bool:
        """True when an ``allow_failure`` processor failed mid-run."""
        return self.trace.status == "degraded"

    @property
    def failed_processor_count(self) -> int:
        return len(self.trace.failed_processors())

    @property
    def cached_processors(self) -> list[str]:
        """Processors served from the result cache during this run."""
        return [
            run.processor for run in self.trace.processor_runs
            if run.cached_from is not None
        ]

    def __getitem__(self, port: str) -> Any:
        return self.outputs[port]

    def __repr__(self) -> str:
        return f"RunResult({self.run_id}, {self.trace.status})"


class _Invocation:
    """Outcome of executing (or cache-replaying) one processor, produced
    on whichever thread ran it and committed later by the scheduler."""

    __slots__ = ("processor", "outputs", "duration", "status", "error",
                 "error_exc", "cached_from")

    def __init__(self, processor: str) -> None:
        self.processor = processor
        self.outputs: dict[str, Any] = {}
        self.duration = 0.0
        self.status = "completed"
        self.error: str | None = None
        self.error_exc: BaseException | None = None
        self.cached_from: str | None = None


class WorkflowEngine:
    """Executes workflows against a processor registry.

    Parameters
    ----------
    registry:
        Maps processor kinds to implementations.  Defaults to a copy of
        the builtin registry (:mod:`repro.workflow.builtins`).
    clock:
        Simulated time source shared by all runs of this engine.
    default_step_seconds:
        Simulated duration charged to a processor that does not report
        its own duration.
    telemetry:
        Observability sink (metrics + spans + events).  Defaults to the
        process-wide instance from
        :func:`repro.telemetry.get_telemetry`; pass an isolated
        :class:`~repro.telemetry.Telemetry` to keep runs separate.
    max_workers:
        Threads used to execute each wave of independent processors.
        ``1`` (the default) runs inline with the historical sequential
        semantics; any value produces identical traces.
    cache:
        Optional :class:`~repro.workflow.cache.ResultCache`.  When set,
        successful invocations are memoized by content digest and
        replayed on identical re-invocations (see the module docstring).
    """

    def __init__(self, registry: ProcessorRegistry | None = None,
                 clock: SimulatedClock | None = None,
                 default_step_seconds: float = 0.1,
                 telemetry: "Telemetry | None" = None,
                 max_workers: int = 1,
                 cache: ResultCache | None = None) -> None:
        if registry is None:
            from repro.workflow.builtins import builtin_registry
            registry = builtin_registry().copy()
        from repro.telemetry import get_telemetry
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.registry = registry
        self.clock = clock or SimulatedClock()
        self.default_step_seconds = default_step_seconds
        self.telemetry = telemetry or get_telemetry()
        self.max_workers = max_workers
        self.cache = cache
        self._run_counter = 0
        self._counter_lock = threading.Lock()
        self._listeners: list[Callable[[str, dict[str, Any]], None]] = []
        self.telemetry.events.attach(self)

    # ------------------------------------------------------------------
    # listeners (the Provenance Manager subscribes here)
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[str, dict[str, Any]], None]) -> None:
        """Subscribe to run events.  The listener receives
        ``(event_name, payload)`` where event names are ``run_started``,
        ``processor_finished``, ``run_finished``.  Events are emitted on
        the run's calling thread, in deterministic order, exactly once;
        a raising listener is isolated (counted in
        ``engine_listener_errors_total``), never aborting the run."""
        self._listeners.append(listener)

    def _emit(self, event: str, payload: dict[str, Any]) -> None:
        for listener in list(self._listeners):
            try:
                listener(event, payload)
            except Exception:  # noqa: BLE001 - listener faults must not kill runs
                self.telemetry.metrics.counter(
                    "engine_listener_errors_total", event=event,
                ).inc()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, workflow: Workflow,
            inputs: Mapping[str, Any] | None = None) -> RunResult:
        """Execute ``workflow`` with the given workflow-level inputs."""
        workflow.validate()
        inputs = dict(inputs or {})
        expected = set(workflow.input_names())
        unexpected = set(inputs) - expected
        if unexpected:
            raise WorkflowValidationError(
                f"unknown workflow inputs: {sorted(unexpected)}"
            )
        missing = expected - set(inputs)
        if missing:
            raise WorkflowValidationError(
                f"missing workflow inputs: {sorted(missing)}"
            )

        with self._counter_lock:
            self._run_counter += 1
            run_id = f"run-{self._run_counter:04d}"
        wall_started = time.perf_counter()
        trace = WorkflowTrace(run_id, workflow.name, self.clock.now())
        trace.inputs = dict(inputs)
        self._emit("run_started", {"run_id": run_id, "workflow": workflow,
                                   "inputs": dict(inputs)})

        # port value store: (processor, port) -> (value, artifact_id)
        values: dict[tuple[str, str], tuple[Any, str]] = {}
        for name, value in inputs.items():
            artifact = trace.record_binding(Workflow.IO, name, "input", value)
            values[(Workflow.IO, name)] = (value, artifact.artifact_id)

        metrics = self.telemetry.metrics
        status = "completed"
        with self.telemetry.tracer.span(
                "workflow.run", clock=self.clock,
                workflow=workflow.name, run_id=run_id) as run_span:
            for wave in workflow.waves():
                metrics.counter("engine_waves_total",
                                workflow=workflow.name).inc()
                status = self._run_wave(workflow, wave, values, trace,
                                        run_id, status)

            # workflow outputs
            outputs: dict[str, Any] = {}
            for link in workflow.links:
                if link.sink != Workflow.IO:
                    continue
                value, artifact_id = values.get(
                    (link.source, link.source_port), (None, None)
                )
                outputs[link.sink_port] = value
                trace.record_binding(Workflow.IO, link.sink_port, "output",
                                     value, artifact_id=artifact_id)
            trace.outputs = dict(outputs)
            trace.finish(self.clock.now(), status)
            run_span.set_attribute("status", status)
            run_span.set_attribute(
                "failed_processors", len(trace.failed_processors()))
        metrics.counter("workflow_runs_total",
                        workflow=workflow.name, status=status).inc()
        self._emit("run_finished", {"run_id": run_id, "trace": trace})
        return RunResult(outputs, trace,
                         wall_seconds=time.perf_counter() - wall_started)

    # ------------------------------------------------------------------
    # wave scheduling
    # ------------------------------------------------------------------

    def _run_wave(self, workflow: Workflow, wave: list[str],
                  values: dict[tuple[str, str], tuple[Any, str]],
                  trace: WorkflowTrace, run_id: str, status: str) -> str:
        """Execute one wave and commit it in name order; returns the
        updated run status (raises on fatal processor failure)."""
        if self.max_workers == 1 or len(wave) == 1:
            # inline: invoke-then-commit per member, so a fatal failure
            # stops later members before they produce side effects —
            # exactly the historical sequential behaviour.
            for name in wave:
                processor = workflow.processor(name)
                entries = self._collect_inputs(workflow, name, values)
                bound = {port: value for port, value, _ in entries}
                with self.telemetry.tracer.span(
                        "workflow.processor", clock=self.clock,
                        workflow=workflow.name, processor=name,
                        kind=processor.kind) as processor_span:
                    invocation = self._execute(processor, bound, run_id)
                    status = self._commit(workflow, processor, entries,
                                          invocation, values, trace,
                                          run_id, status)
                    processor_span.set_attribute("status", invocation.status)
            return status

        # parallel: dispatch the whole wave, join, then commit in the
        # same canonical order the inline path uses.
        members: list[tuple[Processor, list[tuple[str, Any, str | None]]]] = []
        for name in wave:
            processor = workflow.processor(name)
            entries = self._collect_inputs(workflow, name, values)
            members.append((processor, entries))
        self.telemetry.metrics.counter(
            "engine_parallel_dispatch_total", workflow=workflow.name,
        ).inc(len(members))
        with ThreadPoolExecutor(
                max_workers=min(self.max_workers, len(members)),
                thread_name_prefix=f"{run_id}-wave") as pool:
            futures = [
                pool.submit(
                    self._execute,
                    processor,
                    {port: value for port, value, _ in entries},
                    run_id,
                )
                for processor, entries in members
            ]
            invocations = [future.result() for future in futures]
        for (processor, entries), invocation in zip(members, invocations):
            with self.telemetry.tracer.span(
                    "workflow.processor", clock=self.clock,
                    workflow=workflow.name, processor=processor.name,
                    kind=processor.kind) as processor_span:
                status = self._commit(workflow, processor, entries,
                                      invocation, values, trace,
                                      run_id, status)
                processor_span.set_attribute("status", invocation.status)
        return status

    def _execute(self, processor: Processor, bound: dict[str, Any],
                 run_id: str) -> _Invocation:
        """Resolve + (cache-check +) invoke one processor.  Runs on a
        worker thread under ``max_workers > 1``; never raises — failures
        are captured in the returned :class:`_Invocation`."""
        invocation = _Invocation(processor.name)
        metrics = self.telemetry.metrics
        try:
            implementation = self.registry.resolve(processor)
            key = None
            if (self.cache is not None
                    and processor.config.get("cacheable", True)):
                key = invocation_key(processor, implementation, bound)
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    metrics.counter("engine_cache_hits_total",
                                    processor=processor.name).inc()
                    invocation.outputs = hit.outputs
                    invocation.duration = 0.0
                    invocation.cached_from = hit.source
                    return invocation
                metrics.counter("engine_cache_misses_total",
                                processor=processor.name).inc()
            raw = self._invoke(processor, implementation, bound)
            invocation.outputs, invocation.duration = \
                self._normalize_outputs(processor.name, raw)
            if key is not None:
                # config["cache_tags"] names the invocation's upstream
                # dependencies (record:<id>, resource:<name>, ...) so
                # the streaming layer can invalidate by dirty set
                self.cache.put(key, invocation.outputs,
                               source=f"{run_id}/{processor.name}",
                               tags=processor.config.get("cache_tags")
                               or ())
        except Exception as exc:  # noqa: BLE001 - boundary by design
            invocation.status = "failed"
            invocation.error = f"{type(exc).__name__}: {exc}"
            invocation.error_exc = exc
            invocation.outputs = {}
            invocation.duration = self.default_step_seconds
        return invocation

    def _commit(self, workflow: Workflow, processor: Processor,
                entries: list[tuple[str, Any, str | None]],
                invocation: _Invocation,
                values: dict[tuple[str, str], tuple[Any, str]],
                trace: WorkflowTrace, run_id: str, status: str) -> str:
        """Record one invocation into the trace — always on the calling
        thread, always in wave+name order, so artifact ids, timestamps
        and events are identical for every ``max_workers``."""
        metrics = self.telemetry.metrics
        for port, value, artifact_id in entries:
            trace.record_binding(processor.name, port, "input", value,
                                 artifact_id=artifact_id)
        started = self.clock.now()
        if invocation.status == "failed":
            metrics.counter(
                "workflow_processor_failures_total",
                workflow=workflow.name, processor=processor.name,
            ).inc()
            if not processor.config.get("allow_failure", False):
                finished = self.clock.advance(self.default_step_seconds)
                trace.record_run(ProcessorRun(
                    processor.name, processor.kind, started, finished,
                    status="failed", error=invocation.error,
                ))
                trace.finish(finished, "failed")
                metrics.counter(
                    "workflow_runs_total",
                    workflow=workflow.name, status="failed",
                ).inc()
                self._emit("run_finished", {"run_id": run_id,
                                            "trace": trace})
                raise WorkflowExecutionError(
                    processor.name, invocation.error_exc
                ) from invocation.error_exc
            status = "degraded"
        finished = self.clock.advance(max(invocation.duration, 0.0))
        record = ProcessorRun(processor.name, processor.kind,
                              started, finished,
                              status=invocation.status,
                              error=invocation.error,
                              cached_from=invocation.cached_from)
        trace.record_run(record)
        metrics.histogram(
            "workflow_processor_seconds",
            workflow=workflow.name, processor=processor.name,
            kind=processor.kind,
        ).observe(record.duration.total_seconds())
        metrics.counter(
            "workflow_processor_runs_total",
            workflow=workflow.name, processor=processor.name,
            status=invocation.status,
        ).inc()
        for port in processor.output_ports:
            value = invocation.outputs.get(port)
            binding = trace.record_binding(
                processor.name, port, "output", value
            )
            values[(processor.name, port)] = (value, binding.artifact_id)
        self._emit("processor_finished", {
            "run_id": run_id, "processor": processor,
            "run": record, "outputs": dict(invocation.outputs),
        })
        return status

    # ------------------------------------------------------------------
    # invocation plumbing
    # ------------------------------------------------------------------

    def _normalize_outputs(self, processor_name: str,
                           raw: Any) -> tuple[dict[str, Any], float]:
        """Split a processor's raw return into (ports, duration).

        A non-mapping return stays tolerated (processors returning
        ``None``), but a ``__duration__`` that is not a finite number is
        a *processor failure*: the ``ValueError`` raised here is caught
        by the run loop, recorded in the trace, and wrapped in
        :class:`WorkflowExecutionError` (or tolerated under
        ``allow_failure``) — never surfaced as a raw engine crash.
        """
        if not isinstance(raw, Mapping):
            return {}, self.default_step_seconds
        outputs = dict(raw)
        declared = outputs.pop("__duration__", None)
        if declared is None:
            return outputs, self.default_step_seconds
        try:
            duration = float(declared)
        except (TypeError, ValueError):
            raise ValueError(
                f"processor {processor_name!r} reported non-numeric "
                f"__duration__ {declared!r}"
            ) from None
        if duration != duration or duration in (float("inf"),
                                                float("-inf")):
            raise ValueError(
                f"processor {processor_name!r} reported non-finite "
                f"__duration__ {declared!r}"
            )
        return outputs, duration

    def _invoke(self, processor, implementation,
                bound: dict[str, Any]) -> Mapping[str, Any]:
        """Run one processor, applying implicit iteration when asked."""
        iterate_over = processor.config.get("iterate_over")
        if not iterate_over:
            return implementation(bound) or {}
        items = bound.get(iterate_over)
        if not isinstance(items, (list, tuple)):
            # scalar input: plain invocation, as Taverna does
            return implementation(bound) or {}
        self.telemetry.metrics.counter(
            "workflow_iteration_items_total", processor=processor.name,
        ).inc(len(items))
        self.telemetry.metrics.histogram(
            "workflow_iteration_fanout", processor=processor.name,
        ).observe(len(items))
        collected: dict[str, list[Any]] = {
            port: [] for port in processor.output_ports
        }
        total_duration = 0.0
        for item in items:
            per_item = dict(bound)
            per_item[iterate_over] = item
            outputs = dict(implementation(per_item) or {})
            total_duration += float(outputs.pop("__duration__", 0.0))
            for port in collected:
                collected[port].append(outputs.get(port))
        result: dict[str, Any] = dict(collected)
        if total_duration > 0:
            result["__duration__"] = total_duration
        return result

    def _collect_inputs(
        self, workflow: Workflow, processor_name: str,
        values: Mapping[tuple[str, str], tuple[Any, str]],
    ) -> list[tuple[str, Any, str | None]]:
        """The input bindings of one processor as ``(port, value,
        artifact_id)`` triples, in recording order.  Pure — the trace is
        written at commit time so binding order never depends on worker
        scheduling."""
        processor = workflow.processor(processor_name)
        entries: list[tuple[str, Any, str | None]] = []
        seen: set[str] = set()
        for link in workflow.incoming_links(processor_name):
            value, artifact_id = values.get(
                (link.source, link.source_port), (None, None)
            )
            entries.append((link.sink_port, value, artifact_id))
            seen.add(link.sink_port)
        for port in processor.input_ports.values():
            if port.name not in seen and not port.required:
                entries.append((port.name, port.default, None))
        return entries
