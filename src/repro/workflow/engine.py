"""The workflow execution engine.

Deterministic by construction: time comes from a :class:`SimulatedClock`
(the paper's Listing 1 timestamp, 2013-11-12 19:58:09 UTC, is the default
epoch) and run ids from a per-engine counter.  Processors execute in
topological order; every port value is recorded in the
:class:`~repro.workflow.trace.WorkflowTrace` so the Provenance Manager
can later reconstruct full OPM provenance.

Failure semantics: a processor exception aborts the run (status
``failed``) unless the processor's config sets ``"allow_failure": True``,
in which case downstream ports fed by it see ``None`` and the run
continues — mirroring how Taverna pipelines tolerate flaky services.
Such a run finishes with status ``degraded`` (not ``completed``): the
outputs exist but were produced with at least one processor down, and
:class:`RunResult` exposes both the status and the failed-processor
count so callers never mistake a partial result for a clean one.

Implicit iteration (Taverna's signature behaviour): a processor whose
config names an input port in ``"iterate_over"`` is invoked once per
item when that port receives a list; the other inputs broadcast, each
output port collects its per-item values into a list, and simulated
durations accumulate.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable, Mapping

from repro.errors import WorkflowExecutionError, WorkflowValidationError
from repro.workflow.model import ProcessorRegistry, Workflow
from repro.workflow.trace import ProcessorRun, WorkflowTrace

__all__ = ["SimulatedClock", "RunResult", "WorkflowEngine"]

#: Listing 1's annotation timestamp — a natural epoch for the simulation.
#: Timezone-aware: the paper's timestamp is UTC, and keeping the epoch
#: aware means every clock-derived instant serializes with its offset.
DEFAULT_EPOCH = _dt.datetime(2013, 11, 12, 19, 58, 9,
                             tzinfo=_dt.timezone.utc)


class SimulatedClock:
    """A deterministic clock.

    ``now()`` returns the current simulated instant; ``advance(seconds)``
    moves it forward.  Processors that model expensive work (e.g. the
    simulated Catalogue of Life's network latency) advance the clock via
    the engine's run context.
    """

    def __init__(self, epoch: _dt.datetime = DEFAULT_EPOCH) -> None:
        self._now = epoch

    def now(self) -> _dt.datetime:
        return self._now

    def advance(self, seconds: float) -> _dt.datetime:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += _dt.timedelta(seconds=seconds)
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock({self._now.isoformat()})"


class RunResult:
    """What a run returns: outputs plus the full trace."""

    def __init__(self, outputs: dict[str, Any], trace: WorkflowTrace) -> None:
        self.outputs = outputs
        self.trace = trace

    @property
    def run_id(self) -> str:
        return self.trace.run_id

    @property
    def status(self) -> str:
        """``completed`` | ``degraded`` | ``failed``."""
        return self.trace.status

    @property
    def succeeded(self) -> bool:
        """True only for a fully clean run — degraded runs don't count."""
        return self.trace.status == "completed"

    @property
    def degraded(self) -> bool:
        """True when an ``allow_failure`` processor failed mid-run."""
        return self.trace.status == "degraded"

    @property
    def failed_processor_count(self) -> int:
        return len(self.trace.failed_processors())

    def __getitem__(self, port: str) -> Any:
        return self.outputs[port]

    def __repr__(self) -> str:
        return f"RunResult({self.run_id}, {self.trace.status})"


class WorkflowEngine:
    """Executes workflows against a processor registry.

    Parameters
    ----------
    registry:
        Maps processor kinds to implementations.  Defaults to a copy of
        the builtin registry (:mod:`repro.workflow.builtins`).
    clock:
        Simulated time source shared by all runs of this engine.
    default_step_seconds:
        Simulated duration charged to a processor that does not report
        its own duration.
    telemetry:
        Observability sink (metrics + spans + events).  Defaults to the
        process-wide instance from
        :func:`repro.telemetry.get_telemetry`; pass an isolated
        :class:`~repro.telemetry.Telemetry` to keep runs separate.
    """

    def __init__(self, registry: ProcessorRegistry | None = None,
                 clock: SimulatedClock | None = None,
                 default_step_seconds: float = 0.1,
                 telemetry: "Telemetry | None" = None) -> None:
        if registry is None:
            from repro.workflow.builtins import builtin_registry
            registry = builtin_registry().copy()
        from repro.telemetry import get_telemetry
        self.registry = registry
        self.clock = clock or SimulatedClock()
        self.default_step_seconds = default_step_seconds
        self.telemetry = telemetry or get_telemetry()
        self._run_counter = 0
        self._listeners: list[Callable[[str, dict[str, Any]], None]] = []
        self.telemetry.events.attach(self)

    # ------------------------------------------------------------------
    # listeners (the Provenance Manager subscribes here)
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[str, dict[str, Any]], None]) -> None:
        """Subscribe to run events.  The listener receives
        ``(event_name, payload)`` where event names are ``run_started``,
        ``processor_finished``, ``run_finished``."""
        self._listeners.append(listener)

    def _emit(self, event: str, payload: dict[str, Any]) -> None:
        for listener in self._listeners:
            listener(event, payload)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, workflow: Workflow,
            inputs: Mapping[str, Any] | None = None) -> RunResult:
        """Execute ``workflow`` with the given workflow-level inputs."""
        workflow.validate()
        inputs = dict(inputs or {})
        expected = set(workflow.input_names())
        unexpected = set(inputs) - expected
        if unexpected:
            raise WorkflowValidationError(
                f"unknown workflow inputs: {sorted(unexpected)}"
            )
        missing = expected - set(inputs)
        if missing:
            raise WorkflowValidationError(
                f"missing workflow inputs: {sorted(missing)}"
            )

        self._run_counter += 1
        run_id = f"run-{self._run_counter:04d}"
        trace = WorkflowTrace(run_id, workflow.name, self.clock.now())
        trace.inputs = dict(inputs)
        self._emit("run_started", {"run_id": run_id, "workflow": workflow,
                                   "inputs": dict(inputs)})

        # port value store: (processor, port) -> (value, artifact_id)
        values: dict[tuple[str, str], tuple[Any, str]] = {}
        for name, value in inputs.items():
            artifact = trace.record_binding(Workflow.IO, name, "input", value)
            values[(Workflow.IO, name)] = (value, artifact.artifact_id)

        metrics = self.telemetry.metrics
        status = "completed"
        with self.telemetry.tracer.span(
                "workflow.run", clock=self.clock,
                workflow=workflow.name, run_id=run_id) as run_span:
            for processor_name in workflow.execution_order():
                processor = workflow.processor(processor_name)
                bound = self._bind_inputs(workflow, processor_name, values,
                                          trace)
                started = self.clock.now()
                run_status = "completed"
                error_text: str | None = None
                outputs: dict[str, Any] = {}
                duration = self.default_step_seconds
                with self.telemetry.tracer.span(
                        "workflow.processor", clock=self.clock,
                        workflow=workflow.name, processor=processor_name,
                        kind=processor.kind) as processor_span:
                    try:
                        implementation = self.registry.resolve(processor)
                        raw = self._invoke(processor, implementation, bound)
                        outputs, duration = self._normalize_outputs(
                            processor_name, raw)
                    except Exception as exc:  # noqa: BLE001 - boundary by design
                        run_status = "failed"
                        error_text = f"{type(exc).__name__}: {exc}"
                        outputs = {}
                        duration = self.default_step_seconds
                        metrics.counter(
                            "workflow_processor_failures_total",
                            workflow=workflow.name,
                            processor=processor_name,
                        ).inc()
                        if not processor.config.get("allow_failure", False):
                            finished = self.clock.advance(
                                self.default_step_seconds)
                            trace.record_run(ProcessorRun(
                                processor_name, processor.kind, started,
                                finished, status="failed", error=error_text,
                            ))
                            trace.finish(finished, "failed")
                            metrics.counter(
                                "workflow_runs_total",
                                workflow=workflow.name, status="failed",
                            ).inc()
                            self._emit("run_finished", {"run_id": run_id,
                                                        "trace": trace})
                            raise WorkflowExecutionError(
                                processor_name, exc) from exc
                        status = "degraded"
                    finished = self.clock.advance(max(duration, 0.0))
                    processor_span.set_attribute("status", run_status)
                record = ProcessorRun(processor_name, processor.kind,
                                      started, finished,
                                      status=run_status, error=error_text)
                trace.record_run(record)
                metrics.histogram(
                    "workflow_processor_seconds",
                    workflow=workflow.name, processor=processor_name,
                    kind=processor.kind,
                ).observe(record.duration.total_seconds())
                metrics.counter(
                    "workflow_processor_runs_total",
                    workflow=workflow.name, processor=processor_name,
                    status=run_status,
                ).inc()
                for port in processor.output_ports:
                    value = outputs.get(port)
                    binding = trace.record_binding(
                        processor_name, port, "output", value
                    )
                    values[(processor_name, port)] = (value,
                                                      binding.artifact_id)
                self._emit("processor_finished", {
                    "run_id": run_id, "processor": processor,
                    "run": record, "outputs": dict(outputs),
                })

            # workflow outputs
            outputs: dict[str, Any] = {}
            for link in workflow.links:
                if link.sink != Workflow.IO:
                    continue
                value, artifact_id = values.get(
                    (link.source, link.source_port), (None, None)
                )
                outputs[link.sink_port] = value
                trace.record_binding(Workflow.IO, link.sink_port, "output",
                                     value, artifact_id=artifact_id)
            trace.outputs = dict(outputs)
            trace.finish(self.clock.now(), status)
            run_span.set_attribute("status", status)
            run_span.set_attribute(
                "failed_processors", len(trace.failed_processors()))
        metrics.counter("workflow_runs_total",
                        workflow=workflow.name, status=status).inc()
        self._emit("run_finished", {"run_id": run_id, "trace": trace})
        return RunResult(outputs, trace)

    def _normalize_outputs(self, processor_name: str,
                           raw: Any) -> tuple[dict[str, Any], float]:
        """Split a processor's raw return into (ports, duration).

        A non-mapping return stays tolerated (processors returning
        ``None``), but a ``__duration__`` that is not a finite number is
        a *processor failure*: the ``ValueError`` raised here is caught
        by the run loop, recorded in the trace, and wrapped in
        :class:`WorkflowExecutionError` (or tolerated under
        ``allow_failure``) — never surfaced as a raw engine crash.
        """
        if not isinstance(raw, Mapping):
            return {}, self.default_step_seconds
        outputs = dict(raw)
        declared = outputs.pop("__duration__", None)
        if declared is None:
            return outputs, self.default_step_seconds
        try:
            duration = float(declared)
        except (TypeError, ValueError):
            raise ValueError(
                f"processor {processor_name!r} reported non-numeric "
                f"__duration__ {declared!r}"
            ) from None
        if duration != duration or duration in (float("inf"),
                                                float("-inf")):
            raise ValueError(
                f"processor {processor_name!r} reported non-finite "
                f"__duration__ {declared!r}"
            )
        return outputs, duration

    def _invoke(self, processor, implementation,
                bound: dict[str, Any]) -> Mapping[str, Any]:
        """Run one processor, applying implicit iteration when asked."""
        iterate_over = processor.config.get("iterate_over")
        if not iterate_over:
            return implementation(bound) or {}
        items = bound.get(iterate_over)
        if not isinstance(items, (list, tuple)):
            # scalar input: plain invocation, as Taverna does
            return implementation(bound) or {}
        self.telemetry.metrics.counter(
            "workflow_iteration_items_total", processor=processor.name,
        ).inc(len(items))
        self.telemetry.metrics.histogram(
            "workflow_iteration_fanout", processor=processor.name,
        ).observe(len(items))
        collected: dict[str, list[Any]] = {
            port: [] for port in processor.output_ports
        }
        total_duration = 0.0
        for item in items:
            per_item = dict(bound)
            per_item[iterate_over] = item
            outputs = dict(implementation(per_item) or {})
            total_duration += float(outputs.pop("__duration__", 0.0))
            for port in collected:
                collected[port].append(outputs.get(port))
        result: dict[str, Any] = dict(collected)
        if total_duration > 0:
            result["__duration__"] = total_duration
        return result

    def _bind_inputs(self, workflow: Workflow, processor_name: str,
                     values: Mapping[tuple[str, str], tuple[Any, str]],
                     trace: WorkflowTrace) -> dict[str, Any]:
        processor = workflow.processor(processor_name)
        bound: dict[str, Any] = {}
        for link in workflow.incoming_links(processor_name):
            value, artifact_id = values.get(
                (link.source, link.source_port), (None, None)
            )
            bound[link.sink_port] = value
            trace.record_binding(processor_name, link.sink_port, "input",
                                 value, artifact_id=artifact_id)
        for port in processor.input_ports.values():
            if port.name not in bound and not port.required:
                bound[port.name] = port.default
                trace.record_binding(processor_name, port.name, "input",
                                     port.default)
        return bound
