"""Annotation assertions and quality annotations.

The paper's Listing 1 shows Taverna annotation beans whose free-text body
carries quality statements::

    Q(reputation): 1;
    Q(availability): 0.9;

:class:`QualityAnnotation` is the parsed form — a mapping from quality
*dimension* name to a numeric value in ``[0, 1]``.
:class:`AnnotationAssertion` is the carrier: free text plus author and
timestamp, attached to a processor or a whole workflow.  The Workflow
Adapter (:mod:`repro.core.adapter`) creates these without touching the
workflow's dataflow structure — the paper's key design constraint.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Iterator, Mapping

from repro.errors import WorkflowError

__all__ = ["AnnotationAssertion", "QualityAnnotation"]

_Q_PATTERN = re.compile(
    r"Q\(\s*(?P<dimension>[A-Za-z_][\w.-]*)\s*\)\s*:\s*(?P<value>[-+0-9.eE]+)\s*;"
)


class QualityAnnotation(Mapping[str, float]):
    """Parsed ``Q(dimension): value;`` statements.

    Behaves as an immutable mapping ``{dimension: value}``.  Values are
    clamped to be floats but *not* silently clamped to [0, 1]; out-of-range
    values raise, because a reputation of 7 is a typo, not an opinion.
    """

    def __init__(self, values: Mapping[str, float]) -> None:
        cleaned: dict[str, float] = {}
        for dimension, value in values.items():
            number = float(value)
            if not 0.0 <= number <= 1.0:
                raise WorkflowError(
                    f"quality annotation Q({dimension}) = {number} "
                    "is outside [0, 1]"
                )
            cleaned[dimension] = number
        self._values = cleaned

    # Mapping protocol -------------------------------------------------

    def __getitem__(self, dimension: str) -> float:
        return self._values[dimension]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"QualityAnnotation({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QualityAnnotation):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    # Text round trip ----------------------------------------------------

    def to_text(self) -> str:
        """Render as Listing-1-style statements, one per line."""
        lines = []
        for dimension in self:
            value = self._values[dimension]
            # integral values render paper-style ("1"); everything else
            # uses repr, which round-trips floats exactly
            rendered = str(int(value)) if value == int(value) else repr(value)
            lines.append(f"Q({dimension}): {rendered};")
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "QualityAnnotation":
        """Parse every ``Q(dim): value;`` statement out of ``text``.

        Text that contains no statements parses to an empty annotation —
        annotation bodies may also carry ordinary prose.
        """
        values: dict[str, float] = {}
        for match in _Q_PATTERN.finditer(text):
            values[match.group("dimension")] = float(match.group("value"))
        return cls(values)

    def merged_with(self, other: "QualityAnnotation") -> "QualityAnnotation":
        """Right-biased merge (``other`` wins on shared dimensions)."""
        merged = dict(self._values)
        merged.update(other._values)
        return QualityAnnotation(merged)


class AnnotationAssertion:
    """One annotation attached to a workflow element.

    Mirrors Taverna's ``AnnotationAssertionImpl``: free text, creation
    timestamp and creator.  The quality content, if any, is exposed via
    :attr:`quality`.
    """

    def __init__(self, text: str,
                 date: _dt.datetime | None = None,
                 creator: str = "") -> None:
        self.text = text
        self.date = date or _dt.datetime(2013, 11, 12, 19, 58, 9)
        self.creator = creator

    @property
    def quality(self) -> QualityAnnotation:
        """The ``Q(...)`` statements parsed from :attr:`text`."""
        return QualityAnnotation.parse(self.text)

    @classmethod
    def from_quality(cls, values: Mapping[str, float],
                     date: _dt.datetime | None = None,
                     creator: str = "") -> "AnnotationAssertion":
        """Build an assertion whose text is rendered quality statements."""
        return cls(QualityAnnotation(values).to_text(), date=date,
                   creator=creator)

    def to_dict(self) -> dict[str, Any]:
        return {
            "text": self.text,
            "date": self.date.isoformat(),
            "creator": self.creator,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnnotationAssertion":
        return cls(
            data["text"],
            date=_dt.datetime.fromisoformat(data["date"]),
            creator=data.get("creator", ""),
        )

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 40 else self.text[:37] + "..."
        return f"AnnotationAssertion({preview!r}, {self.date:%Y-%m-%d})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnnotationAssertion):
            return NotImplemented
        return (self.text, self.date, self.creator) == (
            other.text, other.date, other.creator
        )
