"""The Workflow Repository (Fig. 1).

Stores workflow specifications — serialized as JSON documents — in the
storage engine, versioned by (name, version).  Saving the same name again
creates a new version; loading without a version returns the latest.
"""

from __future__ import annotations

from typing import Any

from repro.errors import WorkflowError
from repro.hashing import sha256_hex
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct
from repro.workflow.model import Workflow
from repro.workflow.serialization import workflow_from_json, workflow_to_json

__all__ = ["WorkflowRepository"]

_TABLE = "workflows"


class WorkflowRepository:
    """Versioned workflow storage on a :class:`~repro.storage.Database`."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database or Database("workflow_repository")
        #: report from the most recent ``save(..., lint=True)``
        self.last_lint: Any = None
        if not self.database.has_table(_TABLE):
            self.database.create_table(TableSchema(_TABLE, [
                Column("id", ct.INTEGER),
                Column("name", ct.TEXT, nullable=False),
                Column("version", ct.INTEGER, nullable=False),
                Column("description", ct.TEXT, default=""),
                Column("document", ct.TEXT, nullable=False),
            ], primary_key="id"))
            self.database.create_index(_TABLE, "name", "hash")

    def save(self, workflow: Workflow, lint: bool = False) -> int:
        """Store ``workflow`` as a new version; returns the version.

        With ``lint=True`` the workflow rule family also runs and its
        report lands on :attr:`last_lint` — warnings never block the
        save (``validate`` already rejected anything fatal), they
        surface what a curator may still want to tidy.
        """
        workflow.validate()
        if lint:
            from repro.analysis import Analyzer

            self.last_lint = Analyzer().analyze_workflow(workflow)
        version = self.latest_version(workflow.name) + 1
        next_id = self.database.count(_TABLE) + 1
        # ids may have gaps after deletes; probe forward
        while self._id_exists(next_id):
            next_id += 1
        self.database.insert(_TABLE, {
            "id": next_id,
            "name": workflow.name,
            "version": version,
            "description": workflow.description,
            "document": workflow_to_json(workflow, indent=None),
        })
        return version

    def _id_exists(self, identifier: int) -> bool:
        return self.database.query(_TABLE).where(
            col("id") == identifier
        ).exists()

    def load(self, name: str, version: int | None = None) -> Workflow:
        """Fetch a workflow by name (latest version by default)."""
        query = self.database.query(_TABLE).where(col("name") == name)
        if version is not None:
            query = query.where(col("version") == version)
        row = query.order_by("version", descending=True).first()
        if row is None:
            raise WorkflowError(
                f"workflow {name!r}"
                + (f" version {version}" if version is not None else "")
                + " is not in the repository"
            )
        return workflow_from_json(row["document"])

    def spec_digest(self, name: str) -> str | None:
        """Content digest of the latest stored document for ``name``
        (``None`` when absent).

        This is the cheap change-detection probe: it hashes the raw
        JSON document without parsing it into a :class:`Workflow`, so
        callers (the decay scanner's memo, scheduled re-checks) can tell
        "unchanged since last scan" apart from "new version / edited /
        deleted-and-resaved" without paying for :meth:`load`.
        """
        row = self.database.query(_TABLE).where(
            col("name") == name
        ).order_by("version", descending=True).first()
        if row is None:
            return None
        return sha256_hex(row["document"].encode("utf-8"))

    def latest_version(self, name: str) -> int:
        rows = self.database.query(_TABLE).where(
            col("name") == name
        ).order_by("version", descending=True).limit(1).all()
        return rows[0]["version"] if rows else 0

    def versions(self, name: str) -> list[int]:
        return sorted(
            self.database.query(_TABLE).where(col("name") == name)
            .values("version")
        )

    def names(self) -> list[str]:
        return sorted({
            row["name"] for row in self.database.query(_TABLE).all()
        })

    def delete(self, name: str, version: int | None = None) -> int:
        """Remove a workflow (all versions unless one is given)."""
        predicate: Any = col("name") == name
        if version is not None:
            predicate = predicate & (col("version") == version)
        return self.database.delete_where(_TABLE, predicate)

    def __len__(self) -> int:
        return self.database.count(_TABLE)
