"""Graphviz DOT rendering for workflows and OPM graphs.

Pure string generation — nothing here imports graphviz; the output is
pasteable into any DOT renderer.  Workflows render as the Fig. 3 boxes
(processors + dataflow edges, quality-annotated processors marked);
OPM graphs render with the spec's conventional shapes: ellipses for
artifacts, rectangles for processes, octagons for agents.
"""

from __future__ import annotations

from repro.provenance.opm import OPMGraph
from repro.workflow.model import Workflow

__all__ = ["workflow_to_dot", "opm_to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def workflow_to_dot(workflow: Workflow) -> str:
    """The workflow as a DOT digraph."""
    lines = [
        f"digraph {_quote(workflow.name)} {{",
        "  rankdir=LR;",
        "  node [fontname=Helvetica];",
        f"  label={_quote(workflow.name)};",
    ]
    io_nodes: set[str] = set()
    for processor in workflow.processors.values():
        annotated = len(processor.quality) > 0
        style = 'style=filled, fillcolor="#ffe9b3"' if annotated else (
            'style=filled, fillcolor="#e8eef7"')
        quality = ""
        if annotated:
            statements = "\\n".join(
                f"Q({dim})={processor.quality[dim]:g}"
                for dim in processor.quality
            )
            quality = f"\\n{statements}"
        lines.append(
            f"  {_quote(processor.name)} [shape=box, {style}, "
            f"label={_quote(processor.name + quality)}];"
        )
    for link in workflow.links:
        source, sink = link.source, link.sink
        if source == Workflow.IO:
            source = f"in:{link.source_port}"
            io_nodes.add(source)
        if sink == Workflow.IO:
            sink = f"out:{link.sink_port}"
            io_nodes.add(sink)
        label = _quote(f"{link.source_port}->{link.sink_port}")
        lines.append(
            f"  {_quote(source)} -> {_quote(sink)} "
            f"[label={label}, fontsize=9];"
        )
    for io_node in sorted(io_nodes):
        lines.append(
            f"  {_quote(io_node)} [shape=plaintext];"
        )
    lines.append("}")
    return "\n".join(lines)


_OPM_SHAPES = {"artifact": "ellipse", "process": "box",
               "agent": "octagon"}
_OPM_COLORS = {"artifact": "#e4f2e4", "process": "#e8eef7",
               "agent": "#f7e8e8"}


def opm_to_dot(graph: OPMGraph) -> str:
    """An OPM graph as a DOT digraph (edges point effect -> cause)."""
    lines = [
        f"digraph {_quote(graph.id)} {{",
        "  rankdir=BT;",
        "  node [fontname=Helvetica];",
    ]
    for node in graph.nodes():
        shape = _OPM_SHAPES[node.kind]
        color = _OPM_COLORS[node.kind]
        lines.append(
            f"  {_quote(node.id)} [shape={shape}, style=filled, "
            f'fillcolor="{color}", label={_quote(node.label)}];'
        )
    for edge in graph.edges():
        label = edge.kind + (f" ({edge.role})" if edge.role else "")
        lines.append(
            f"  {_quote(edge.effect)} -> {_quote(edge.cause)} "
            f"[label={_quote(label)}, fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)
