"""Unified observability: metrics, spans and event tracing.

The paper's Data Quality Manager derives scores from *operational
evidence* — the Catalogue of Life processor carries
``Q(availability): 0.9`` precisely because real runs fail.  This package
is where that evidence accumulates, dependency-free and deterministic:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — labeled counters,
  gauges and histograms (processor durations, storage scan/index
  counters, service availability);
* :class:`~repro.telemetry.spans.Tracer` — hierarchical spans
  (``workflow.run -> workflow.processor -> service.call``) keyed to the
  engine's simulated clock, so traces are bit-for-bit reproducible;
* :class:`~repro.telemetry.events.EventLog` — a bounded structured
  record of engine listener events.

The three are bundled by :class:`Telemetry`; a process-wide default
instance (:func:`get_telemetry`) is what the instrumented subsystems
write into unless handed an explicit one.  ``Telemetry.snapshot()``
produces plain data, ``render_report`` the ``repro stats`` panel, and
:func:`~repro.telemetry.report.quality_signals` the bridge by which the
quality manager consumes measured availability as an external source.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Window,
)
from repro.telemetry.report import quality_signals, render_report
from repro.telemetry.spans import CallableClock, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Window",
    "Span", "Tracer", "CallableClock", "EventLog",
    "Telemetry", "get_telemetry", "set_telemetry",
    "render_report", "quality_signals", "snapshot",
]


class Telemetry:
    """One registry + one tracer + one event log, snapshot together."""

    def __init__(self, clock: Any | None = None,
                 max_spans: int = 10_000,
                 max_events: int = 10_000) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock, max_spans=max_spans)
        self.events = EventLog(max_events=max_events)

    def attach(self, engine: Any) -> None:
        """Subscribe the event log to a workflow engine."""
        self.events.attach(engine)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of everything observed so far."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.snapshot(),
            "events": self.events.snapshot(),
        }

    def render_report(self) -> str:
        return render_report(self.snapshot())

    def quality_signals(self) -> dict[str, Any]:
        return quality_signals(self.snapshot())

    def reset(self) -> None:
        """Zero metrics and clear spans/events, in place: instrument
        handles cached by instrumented components stay valid."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()


#: Process-wide default sink.  Replaceable for isolation (tests), but
#: ``reset()`` is usually enough and keeps cached handles working.
_default = Telemetry()


def get_telemetry() -> Telemetry:
    return _default


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    global _default
    _default = telemetry
    return telemetry


def snapshot() -> dict[str, Any]:
    """Convenience: snapshot the default instance."""
    return _default.snapshot()
