"""Hierarchical spans over any clock.

A :class:`Tracer` produces :class:`Span` records shaped like a
distributed-tracing trace, but keyed to whatever clock the caller hands
it — in this codebase that is normally the workflow engine's
:class:`~repro.workflow.engine.SimulatedClock`, which makes traces
exactly reproducible run over run (span ids are a per-tracer counter,
timestamps come from the simulation).

The expected hierarchy is ``workflow.run -> workflow.processor ->
service.call``: the engine opens the first two levels as context
managers, and leaf work that only knows its simulated duration (e.g. a
catalogue web-service call) attaches itself under the currently open
span via :meth:`Tracer.record_span`.
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import Any, Callable, Iterator, Mapping

__all__ = ["Span", "Tracer"]


class _SystemClock:
    """Fallback clock: aware UTC wall time (used only when no simulated
    clock is supplied)."""

    def now(self) -> _dt.datetime:
        return _dt.datetime.now(_dt.timezone.utc)


class Span:
    """One timed operation, possibly nested under a parent span."""

    __slots__ = ("span_id", "parent_id", "name", "attributes",
                 "started", "finished", "status", "error")

    def __init__(self, span_id: str, parent_id: str | None, name: str,
                 started: _dt.datetime,
                 attributes: Mapping[str, Any] | None = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.started = started
        self.finished: _dt.datetime | None = None
        self.status = "open"  # -> "ok" | "failed"
        self.error: str | None = None

    @property
    def duration_seconds(self) -> float | None:
        if self.finished is None:
            return None
        return (self.finished - self.started).total_seconds()

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __repr__(self) -> str:
        return (
            f"Span({self.span_id}, {self.name!r}, {self.status}, "
            f"parent={self.parent_id})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attributes": dict(self.attributes),
            "started": self.started.isoformat(),
            "finished": None if self.finished is None
            else self.finished.isoformat(),
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "error": self.error,
        }


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span,
                 clock: Any) -> None:
        self._tracer = tracer
        self.span = span
        self._clock = clock

    def set_attribute(self, key: str, value: Any) -> None:
        self.span.set_attribute(key, value)

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self._tracer._end_span(self.span, self._clock, exc)
        return False  # never swallow


class Tracer:
    """Creates and collects spans.

    Parameters
    ----------
    clock:
        Any object with ``now() -> datetime``; per-span overrides are
        accepted too (one shared tracer can serve several engines, each
        passing its own simulated clock).
    max_spans:
        Finished spans kept; the oldest are dropped beyond this (the
        drop count is reported in :meth:`snapshot`).
    """

    def __init__(self, clock: Any | None = None,
                 max_spans: int = 10_000) -> None:
        self.clock = clock or _SystemClock()
        self.max_spans = max_spans
        self._finished: list[Span] = []
        self._stack: list[tuple[Span, Any]] = []  # (span, its clock)
        self._counter = 0
        self._dropped = 0
        # reentrant: leaf spans are recorded from engine worker threads
        # while the scheduler holds spans open on the calling thread
        self._lock = threading.RLock()

    # -- creation -----------------------------------------------------------

    def _next_id_locked(self) -> str:
        # caller holds self._lock (enforced by the LK002 naming rule)
        self._counter += 1
        return f"s{self._counter}"

    def span(self, name: str, clock: Any | None = None,
             **attributes: Any) -> _SpanHandle:
        """Open a span under the currently active one (context manager).

        The span's ``clock`` (explicit, else the enclosing span's, else
        the tracer default) is inherited by nested spans, so leaf work
        recorded inside an engine-driven span lands on the engine's
        simulated timeline without having to thread the clock around.
        """
        with self._lock:
            clock = clock or self._active_clock()
            parent = self._stack[-1][0].span_id if self._stack else None
            span = Span(self._next_id_locked(), parent, name, clock.now(),
                        attributes)
            self._stack.append((span, clock))
            return _SpanHandle(self, span, clock)

    def record_span(self, name: str, duration_seconds: float,
                    clock: Any | None = None,
                    **attributes: Any) -> Span:
        """Record an already-elapsed leaf span under the active span.

        Used by components that know how long their (simulated) work
        took but do not drive the clock themselves, e.g. one catalogue
        web-service call inside a processor span.
        """
        with self._lock:
            clock = clock or self._active_clock()
            parent = self._stack[-1][0].span_id if self._stack else None
            finished = clock.now()
            started = finished - _dt.timedelta(
                seconds=max(duration_seconds, 0.0))
            span = Span(self._next_id_locked(), parent, name, started, attributes)
            span.finished = finished
            span.status = "ok"
            self._store_locked(span)
            return span

    def _active_clock(self) -> Any:
        return self._stack[-1][1] if self._stack else self.clock

    def _end_span(self, span: Span, clock: Any,
                  exc: BaseException | None) -> None:
        with self._lock:
            if self._stack and self._stack[-1][0] is span:
                self._stack.pop()
            else:  # out-of-order exit; drop it from wherever it is
                self._stack = [
                    entry for entry in self._stack if entry[0] is not span
                ]
            span.finished = clock.now()
            if exc is None:
                span.status = "ok"
            else:
                span.status = "failed"
                span.error = f"{type(exc).__name__}: {exc}"
            self._store_locked(span)

    def _store_locked(self, span: Span) -> None:
        # caller holds self._lock (enforced by the LK002 naming rule)
        self._finished.append(span)
        if len(self._finished) > self.max_spans:
            overflow = len(self._finished) - self.max_spans
            del self._finished[:overflow]
            self._dropped += overflow

    # -- queries ------------------------------------------------------------

    @property
    def active_span(self) -> Span | None:
        return self._stack[-1][0] if self._stack else None

    def finished_spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self._finished)
        return [span for span in self._finished if span.name == name]

    def children_of(self, span: Span) -> Iterator[Span]:
        for candidate in self._finished:
            if candidate.parent_id == span.span_id:
                yield candidate

    def snapshot(self) -> dict[str, Any]:
        return {
            "spans": [span.to_dict() for span in self._finished],
            "open_spans": len(self._stack),
            "dropped_spans": self._dropped,
        }

    def reset(self) -> None:
        with self._lock:
            self._finished = []
            self._stack = []
            self._counter = 0
            self._dropped = 0


# A tracer-compatible callable clock adapter, used by tests and callers
# that have a plain ``() -> datetime`` function instead of a clock object.
class CallableClock:
    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], _dt.datetime]) -> None:
        self._fn = fn

    def now(self) -> _dt.datetime:
        return self._fn()


__all__.append("CallableClock")
