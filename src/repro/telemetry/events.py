"""The event log: a bounded, structured record of runtime events.

The :class:`EventLog` is the pluggable sink the workflow engine's
listener protocol feeds (``run_started`` / ``processor_finished`` /
``run_finished``); anything else may :meth:`EventLog.record` events
directly.  Payloads are *summarized* on capture — the log stores run
ids, statuses and counts, never full port values — so it stays light
enough to keep for a whole session and can itself be preserved next to
the provenance (the RO-Crate workflow-run profile treats exactly this
kind of run-level record as a first-class preservation artifact).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Mapping

__all__ = ["EventLog"]


class EventLog:
    """Bounded structured event record.

    Parameters
    ----------
    max_events:
        Oldest events are dropped beyond this bound; the number dropped
        is tracked and reported by :meth:`snapshot`.
    """

    def __init__(self, max_events: int = 10_000) -> None:
        self.max_events = max_events
        self._events: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._sequence = 0
        self._dropped = 0
        # events arrive from engine worker threads too; the sequence
        # number must stay gap-free and strictly increasing
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, event: str, payload: Mapping[str, Any] | None = None,
               at: Any = None) -> dict[str, Any]:
        """Append one event; returns the stored entry."""
        with self._lock:
            if len(self._events) == self.max_events:
                self._dropped += 1
            self._sequence += 1
            entry: dict[str, Any] = {
                "seq": self._sequence,
                "event": event,
                **dict(payload or {}),
            }
            if at is not None:
                entry["at"] = (at.isoformat()
                               if hasattr(at, "isoformat") else at)
            self._events.append(entry)
            return entry

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------

    def attach(self, engine: Any) -> None:
        """Subscribe to a :class:`~repro.workflow.engine.WorkflowEngine`."""
        engine.add_listener(self.on_engine_event)

    def on_engine_event(self, event: str,
                        payload: Mapping[str, Any]) -> None:
        """Listener entry point: summarize the engine payload."""
        summary: dict[str, Any] = {}
        run_id = payload.get("run_id")
        if run_id is not None:
            summary["run_id"] = run_id
        workflow = payload.get("workflow")
        if workflow is not None:
            summary["workflow"] = getattr(workflow, "name", str(workflow))
        if event == "run_started":
            summary["inputs"] = sorted(payload.get("inputs", {}))
        elif event == "processor_finished":
            run = payload.get("run")
            if run is not None:
                summary["processor"] = run.processor
                summary["kind"] = run.kind
                summary["status"] = run.status
                summary["duration_seconds"] = run.duration.total_seconds()
                if run.error:
                    summary["error"] = run.error
            summary["output_ports"] = sorted(payload.get("outputs", {}))
        elif event == "run_finished":
            trace = payload.get("trace")
            if trace is not None:
                summary["workflow"] = trace.workflow_name
                summary["status"] = trace.status
                summary["processors"] = len(trace.processor_runs)
                summary["failed_processors"] = len(trace.failed_processors())
                if trace.duration is not None:
                    summary["duration_seconds"] = (
                        trace.duration.total_seconds()
                    )
                summary["finished"] = (
                    None if trace.finished is None
                    else trace.finished.isoformat()
                )
        self.record(event, summary)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def events(self, event: str | None = None) -> list[dict[str, Any]]:
        if event is None:
            return [dict(entry) for entry in self._events]
        return [dict(entry) for entry in self._events
                if entry["event"] == event]

    def last(self, event: str | None = None) -> dict[str, Any] | None:
        matching = self.events(event)
        return matching[-1] if matching else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "events": self.events(),
            "recorded": self._sequence,
            "dropped": self._dropped,
        }

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._sequence = 0
            self._dropped = 0
