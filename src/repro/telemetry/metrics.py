"""Metric instruments and their registry.

Four instrument families, modelled on the OpenMetrics data model but
dependency-free and deterministic:

* :class:`Counter` — monotonically increasing totals (rows inserted,
  service calls, processor failures);
* :class:`Gauge` — point-in-time values that move both ways (measured
  availability, index selectivity of the last planned query);
* :class:`Histogram` — distributions (processor durations, iteration
  fan-out), recorded as count/sum/min/max plus cumulative buckets;
* :class:`Window` — a sliding window over the last N observations
  (streaming quality signals: "accuracy over the last 32 sweeps"),
  where old samples age out instead of accumulating forever.

Every instrument belongs to a *family* (its name) and a *series* within
the family (its sorted label set), so ``counter("service_calls_total",
outcome="failure")`` and ``outcome="success"`` share a family but count
independently.  Instrument handles are stable: callers may cache the
object returned by :meth:`MetricsRegistry.counter` and keep using it
after :meth:`MetricsRegistry.reset` (reset zeroes values in place, it
never discards series).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Window",
           "DEFAULT_BUCKETS", "DEFAULT_WINDOW_SIZE", "format_series"]

#: Default histogram bucket upper bounds, tuned for simulated seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Default sliding-window capacity (samples retained by a Window).
DEFAULT_WINDOW_SIZE = 32

Labels = tuple[tuple[str, str], ...]


def _normalize_labels(labels: Mapping[str, Any]) -> Labels:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def format_series(name: str, labels: Labels) -> str:
    """Render ``name{key=value,...}`` (Prometheus exposition style)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared identity bits for one series of one family.

    Each instrument carries its own lock: the workflow engine updates
    metrics from worker threads under ``max_workers > 1``, and a lost
    increment would silently corrupt totals.
    """

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def series(self) -> str:
        return format_series(self.name, self.labels)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.series})"


class Counter(_Instrument):
    """A monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError(
                f"counter {self.series} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge(_Instrument):
    """A value that can move in both directions."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> float:
        with self._lock:
            self._value = float(value)
            return self._value

    def inc(self, amount: float = 1.0) -> float:
        with self._lock:
            self._value += amount
            return self._value

    def dec(self, amount: float = 1.0) -> float:
        with self._lock:
            self._value -= amount
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram(_Instrument):
    """A distribution: count/sum/min/max plus cumulative buckets."""

    __slots__ = ("buckets", "_bucket_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, labels: Labels,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[position] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float | None:
        if self._count == 0:
            return None
        return self._sum / self._count

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    def _reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * len(self.buckets)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "buckets": {
                f"le={bound}": count
                for bound, count in zip(self.buckets, self._bucket_counts)
            },
        }


class Window(_Instrument):
    """A sliding window over the last ``size`` observations.

    Counters answer "how much ever"; a continuous curation loop needs
    "how good *lately*" — the mean assessment accuracy over the last N
    sweeps, the recent ingest batch sizes.  Old samples age out of the
    fixed-capacity deque, so a long-running stream's quality signal
    tracks the present instead of being flattened by history.
    """

    __slots__ = ("size", "_samples", "_observed")

    def __init__(self, name: str, labels: Labels,
                 size: int = DEFAULT_WINDOW_SIZE) -> None:
        super().__init__(name, labels)
        if size < 1:
            raise ValueError("window needs size >= 1")
        self.size = size
        self._samples: deque[float] = deque(maxlen=size)
        self._observed = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._observed += 1

    @property
    def count(self) -> int:
        """Samples currently *in* the window (<= size)."""
        return len(self._samples)

    @property
    def observed(self) -> int:
        """Samples ever observed, including those aged out."""
        return self._observed

    @property
    def last(self) -> float | None:
        with self._lock:
            return self._samples[-1] if self._samples else None

    @property
    def mean(self) -> float | None:
        with self._lock:
            if not self._samples:
                return None
            return sum(self._samples) / len(self._samples)

    @property
    def min(self) -> float | None:
        with self._lock:
            return min(self._samples) if self._samples else None

    @property
    def max(self) -> float | None:
        with self._lock:
            return max(self._samples) if self._samples else None

    def values(self) -> tuple[float, ...]:
        """The windowed samples, oldest first."""
        with self._lock:
            return tuple(self._samples)

    def _reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._observed = 0

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            samples = tuple(self._samples)
        count = len(samples)
        return {
            "type": "window",
            "size": self.size,
            "count": count,
            "observed": self._observed,
            "last": samples[-1] if samples else None,
            "mean": (sum(samples) / count) if samples else None,
            "min": min(samples) if samples else None,
            "max": max(samples) if samples else None,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument series.

    A family name is bound to one instrument type on first use; asking
    for the same name as a different type is a programming error and
    raises ``TypeError`` immediately rather than corrupting data.
    """

    def __init__(self) -> None:
        self._families: dict[str, type] = {}
        self._series: dict[tuple[str, Labels], _Instrument] = {}
        # guards series/family creation; instrument updates take the
        # per-instrument lock instead, so hot-path contention stays low
        self._lock = threading.Lock()

    # -- instrument accessors ----------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None,
                  **labels: Any) -> Histogram:
        key_labels = _normalize_labels(labels)
        with self._lock:
            existing = self._series.get((name, key_labels))
            if existing is not None:
                self._check_family(Histogram, name)
                return existing  # type: ignore[return-value] - family checked just above
            self._check_family(Histogram, name, bind=True)
            instrument = Histogram(name, key_labels,
                                   buckets=buckets or DEFAULT_BUCKETS)
            self._series[(name, key_labels)] = instrument
            return instrument

    def window(self, name: str, size: int | None = None,
               **labels: Any) -> Window:
        key_labels = _normalize_labels(labels)
        with self._lock:
            existing = self._series.get((name, key_labels))
            if existing is not None:
                self._check_family(Window, name)
                return existing  # type: ignore[return-value] - family checked just above
            self._check_family(Window, name, bind=True)
            instrument = Window(name, key_labels,
                                size=size or DEFAULT_WINDOW_SIZE)
            self._series[(name, key_labels)] = instrument
            return instrument

    def _get_or_create(self, cls: type, name: str,
                       labels: Mapping[str, Any]):
        key_labels = _normalize_labels(labels)
        with self._lock:
            existing = self._series.get((name, key_labels))
            if existing is not None:
                self._check_family(cls, name)
                return existing
            self._check_family(cls, name, bind=True)
            instrument = cls(name, key_labels)
            self._series[(name, key_labels)] = instrument
            return instrument

    def _check_family(self, cls: type, name: str, bind: bool = False) -> None:
        bound = self._families.get(name)
        if bound is None:
            if bind:
                self._families[name] = cls
            return
        if bound is not cls:
            raise TypeError(
                f"metric family {name!r} is a {bound.__name__}, "
                f"requested as {cls.__name__}"
            )

    # -- introspection ------------------------------------------------------

    def __iter__(self) -> Iterator[_Instrument]:
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    def families(self) -> list[str]:
        return sorted(self._families)

    def series(self, name: str) -> list[_Instrument]:
        """Every series of family ``name``, sorted by label set."""
        return [
            self._series[key] for key in sorted(self._series)
            if key[0] == name
        ]

    def value(self, name: str, **labels: Any) -> float | None:
        """Counter/gauge value of one series, or ``None`` if absent."""
        instrument = self._series.get((name, _normalize_labels(labels)))
        if instrument is None:
            return None
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        raise TypeError(f"{name!r} is a histogram; use series()/snapshot()")

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all its series."""
        result = 0.0
        for instrument in self.series(name):
            if isinstance(instrument, (Counter, Gauge)):
                result += instrument.value
            elif isinstance(instrument, Histogram):
                result += instrument.sum
            # Window families carry quality signals, not quantities;
            # they contribute nothing to a family total.
        return result

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-data view: ``{series: {type, value | stats}}``, sorted."""
        return {
            instrument.series: instrument.to_dict() for instrument in self
        }

    def reset(self) -> None:
        """Zero every series in place (handles stay valid)."""
        for instrument in self._series.values():
            instrument._reset()
