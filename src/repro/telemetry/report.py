"""Snapshot rendering and the quality-assessment bridge.

:func:`render_report` turns a :meth:`Telemetry.snapshot` dict into the
text panel behind ``repro stats``.  :func:`quality_signals` distills the
same snapshot into the handful of numbers the Data Quality Manager
consumes as an *external source* — the paper's loop between operations
and quality assessment: the Catalogue processor is annotated
``Q(availability): 0.9`` because real runs fail, and here the failures
observed by the runtime feed straight back into the assessment.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["render_report", "quality_signals"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    return f"{value:,}"


def render_report(snapshot: Mapping[str, Any]) -> str:
    """A human-readable observability panel from one snapshot."""
    metrics: Mapping[str, Any] = snapshot.get("metrics", {})
    lines: list[str] = ["Telemetry report", "=" * 64]

    counters = {
        series: data for series, data in metrics.items()
        if data.get("type") == "counter" and data.get("value")
    }
    gauges = {
        series: data for series, data in metrics.items()
        if data.get("type") == "gauge"
    }
    histograms = {
        series: data for series, data in metrics.items()
        if data.get("type") == "histogram" and data.get("count")
    }
    windows = {
        series: data for series, data in metrics.items()
        if data.get("type") == "window" and data.get("count")
    }

    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / max, seconds or items)")
        lines.append("-" * 64)
        for series in sorted(histograms):
            data = histograms[series]
            lines.append(
                f"  {series:<48} {_fmt(data['count']):>6}"
                f" {_fmt(data['mean']):>10} {_fmt(data['max']):>10}"
            )
    if counters:
        lines.append("")
        lines.append("counters")
        lines.append("-" * 64)
        for series in sorted(counters):
            lines.append(
                f"  {series:<54} {_fmt(counters[series]['value']):>8}"
            )
    if gauges:
        lines.append("")
        lines.append("gauges")
        lines.append("-" * 64)
        for series in sorted(gauges):
            lines.append(
                f"  {series:<54} {_fmt(gauges[series]['value']):>8}"
            )
    if windows:
        lines.append("")
        lines.append("sliding windows (in-window / mean / last)")
        lines.append("-" * 64)
        for series in sorted(windows):
            data = windows[series]
            lines.append(
                f"  {series:<44} {_fmt(data['count']):>4}/{data['size']}"
                f" {_fmt(data['mean']):>9} {_fmt(data['last']):>9}"
            )

    spans = snapshot.get("spans", {})
    span_list = spans.get("spans", ())
    if span_list:
        by_name: dict[str, list[float]] = {}
        for span in span_list:
            duration = span.get("duration_seconds")
            if duration is not None:
                by_name.setdefault(span["name"], []).append(duration)
        lines.append("")
        lines.append("spans (count / total simulated seconds)")
        lines.append("-" * 64)
        for name in sorted(by_name):
            durations = by_name[name]
            lines.append(
                f"  {name:<54} {len(durations):>4}"
                f" {_fmt(sum(durations)):>8}"
            )
        if spans.get("dropped_spans"):
            lines.append(f"  (dropped {spans['dropped_spans']} spans)")

    events = snapshot.get("events", {})
    if events.get("recorded"):
        lines.append("")
        lines.append(
            f"events: {events['recorded']} recorded"
            + (f", {events['dropped']} dropped" if events.get("dropped")
               else "")
        )
        last_run = None
        for entry in reversed(events.get("events", ())):
            if entry.get("event") == "run_finished":
                last_run = entry
                break
        if last_run is not None:
            lines.append(
                f"  last run: {last_run.get('run_id')} "
                f"({last_run.get('workflow')}) -> {last_run.get('status')}"
                f", {last_run.get('failed_processors', 0)} failed "
                f"processor(s)"
            )

    engine_lines = _engine_panel(metrics)
    if engine_lines:
        lines.append("")
        lines.append("engine scheduling & caches")
        lines.append("-" * 64)
        lines.extend(engine_lines)

    curation_lines = _curation_panel(metrics)
    if curation_lines:
        lines.append("")
        lines.append("curation pipeline")
        lines.append("-" * 64)
        lines.extend(curation_lines)

    planner_lines = _planner_panel(metrics)
    if planner_lines:
        lines.append("")
        lines.append("storage query planner")
        lines.append("-" * 64)
        lines.extend(planner_lines)

    vault_lines = _vault_panel(metrics)
    if vault_lines:
        lines.append("")
        lines.append("preservation vault")
        lines.append("-" * 64)
        lines.extend(vault_lines)

    federation_lines = _federation_panel(metrics)
    if federation_lines:
        lines.append("")
        lines.append("federated vault")
        lines.append("-" * 64)
        lines.extend(federation_lines)

    provstore_lines = _provstore_panel(metrics)
    if provstore_lines:
        lines.append("")
        lines.append("provenance store")
        lines.append("-" * 64)
        lines.extend(provstore_lines)

    analysis_lines = _analysis_panel(metrics)
    if analysis_lines:
        lines.append("")
        lines.append("static analysis")
        lines.append("-" * 64)
        lines.extend(analysis_lines)

    service_lines = _service_panel(metrics)
    if service_lines:
        lines.append("")
        lines.append("multi-tenant service")
        lines.append("-" * 64)
        lines.extend(service_lines)

    streaming_lines = _streaming_panel(metrics)
    if streaming_lines:
        lines.append("")
        lines.append("streaming curation")
        lines.append("-" * 64)
        lines.extend(streaming_lines)
    return "\n".join(lines)


def _family_total(metrics: Mapping[str, Any], family: str) -> float:
    """Sum of a counter family's values across all label series."""
    total = 0.0
    for series, data in metrics.items():
        if series.split("{", 1)[0] == family \
                and data.get("type") == "counter":
            total += data["value"]
    return total


def _engine_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Wave-scheduler and cache activity for :func:`render_report`
    (empty when no ``engine_*``/``taxonomy_cache_*`` series exist)."""
    if not any(series.split("{", 1)[0].startswith(("engine_",
                                                   "taxonomy_cache_"))
               for series in metrics):
        return []
    lines = [
        f"  waves scheduled {_fmt(_family_total(metrics, 'engine_waves_total'))},"
        f" parallel dispatches "
        f"{_fmt(_family_total(metrics, 'engine_parallel_dispatch_total'))}",
    ]
    processor_runs = _family_total(metrics,
                                   "workflow_processor_runs_total")
    if processor_runs:
        failures = _family_total(metrics,
                                 "workflow_processor_failures_total")
        items = _family_total(metrics, "workflow_iteration_items_total")
        lines.append(
            f"  processors run {_fmt(processor_runs)}"
            f" ({_fmt(failures)} failed),"
            f" iteration items {_fmt(items)}"
        )
    hits = _family_total(metrics, "engine_cache_hits_total")
    misses = _family_total(metrics, "engine_cache_misses_total")
    lookups = hits + misses
    if lookups:
        skipped = _family_total(metrics, "cache_store_skipped_total")
        lines.append(
            f"  result cache: {_fmt(hits)} hits / {_fmt(misses)} misses"
            f" (hit rate {hits / lookups:.1%},"
            f" {_fmt(skipped)} stores skipped)"
        )
    invalidated = _family_total(metrics, "cache_tag_invalidations_total")
    if invalidated:
        lines.append(
            f"  tag invalidations dropped {_fmt(invalidated)} "
            f"cached entr{'y' if invalidated == 1 else 'ies'}"
        )
    taxonomy_hits = _family_total(metrics, "taxonomy_cache_hits_total")
    if taxonomy_hits:
        lines.append(f"  taxonomy memo hits {_fmt(taxonomy_hits)}")
    catalogue_calls = _family_total(metrics, "service_calls_total")
    if catalogue_calls:
        retries = _family_total(metrics, "service_retries_total")
        lines.append(
            f"  catalogue service calls {_fmt(catalogue_calls)}"
            f" ({_fmt(retries)} retried)"
        )
    listener_errors = _family_total(metrics, "engine_listener_errors_total")
    if listener_errors:
        lines.append(f"  listener errors {_fmt(listener_errors)}")
    return lines


def _curation_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Curation-pipeline throughput for :func:`render_report` (empty
    when no stage has run)."""
    runs = _family_total(metrics, "curation_stage_runs_total")
    if not runs:
        return []
    records = _family_total(metrics, "curation_stage_records_total")
    return [
        f"  stage runs {_fmt(runs)},"
        f" records processed {_fmt(records)}",
    ]


def _planner_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Query-planner activity for :func:`render_report` (empty when the
    planner has made no decisions)."""
    decisions = _family_total(metrics, "storage_planner_decisions_total")
    if not decisions:
        return []
    return [
        f"  planner decisions {_fmt(decisions)}:"
        f" index hits {_fmt(_family_total(metrics, 'storage_index_hits_total'))},"
        f" full scans {_fmt(_family_total(metrics, 'storage_full_scans_total'))}",
        f"  rows scanned {_fmt(_family_total(metrics, 'storage_rows_scanned_total'))}",
    ]


def _vault_panel(metrics: Mapping[str, Any]) -> list[str]:
    """The vault activity summary for :func:`render_report` (empty when
    no ``vault_*`` series have been recorded)."""
    if not any(series.split("{", 1)[0].startswith("vault_")
               for series in metrics):
        return []
    lines = [
        f"  objects ingested {_fmt(_family_total(metrics, 'vault_objects_ingested_total'))}"
        f" ({_fmt(_family_total(metrics, 'vault_bytes_ingested_total'))} bytes,"
        f" {_fmt(_family_total(metrics, 'vault_objects_deduplicated_total'))} deduplicated)",
        f"  audit sweeps {_fmt(_family_total(metrics, 'vault_audit_sweeps_total'))}:"
        f" {_fmt(_family_total(metrics, 'vault_objects_audited_total'))} objects,"
        f" {_fmt(_family_total(metrics, 'vault_bytes_audited_total'))} bytes audited",
        f"  corruptions found {_fmt(_family_total(metrics, 'vault_corruptions_found_total'))},"
        f" repaired {_fmt(_family_total(metrics, 'vault_corruptions_repaired_total'))}",
        f"  format migrations {_fmt(_family_total(metrics, 'vault_migrations_total'))}",
    ]
    lags = [
        data["value"] for series, data in metrics.items()
        if series.split("{", 1)[0] == "vault_replica_lag"
        and data.get("type") == "gauge"
    ]
    if lags:
        lines.append(f"  replica lag max {_fmt(max(lags))} object(s)")
    return lines


def _federation_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Multi-site federation activity for :func:`render_report` (empty
    when no ``federation_*`` series have been recorded)."""
    if not any(series.split("{", 1)[0].startswith("federation_")
               for series in metrics):
        return []
    lines = [
        f"  objects placed {_fmt(_family_total(metrics, 'federation_objects_stored_total'))}"
        f" as {_fmt(_family_total(metrics, 'federation_fragments_stored_total'))} fragments"
        f" ({_fmt(_family_total(metrics, 'federation_bytes_stored_total'))} bytes)",
        f"  syncs {_fmt(_family_total(metrics, 'federation_sync_runs_total'))}:"
        f" {_fmt(_family_total(metrics, 'federation_sync_repairs_total'))} fragment(s) repaired,"
        f" {_fmt(_family_total(metrics, 'federation_sync_unrecoverable_total'))} unrecoverable",
        f"  sampling scrubs {_fmt(_family_total(metrics, 'federation_audit_scrubs_total'))}:"
        f" {_fmt(_family_total(metrics, 'federation_objects_scrubbed_total'))} objects,"
        f" {_fmt(_family_total(metrics, 'federation_corruptions_found_total'))} rotten",
        f"  fragments rebuilt after site loss "
        f"{_fmt(_family_total(metrics, 'federation_rebuilt_fragments_total'))}",
    ]
    reads = _family_total(metrics, "federation_reads_total")
    if reads:
        lines.append(f"  objects read back {_fmt(reads)}")
    for name in ("federation_sites_available", "federation_sites"):
        for series, data in metrics.items():
            if series.split("{", 1)[0] == name \
                    and data.get("type") == "gauge":
                lines.append(
                    f"  {name.removeprefix('federation_').replace('_', ' ')}"
                    f" now {_fmt(data['value'])}"
                )
                break
    return lines


def _provstore_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Archival provenance-store activity for :func:`render_report`
    (empty when no ``provstore_*`` series have been recorded)."""
    if not any(series.split("{", 1)[0].startswith("provstore_")
               for series in metrics):
        return []
    lines = [
        f"  runs ingested {_fmt(_family_total(metrics, 'provstore_runs_ingested_total'))}"
        f" ({_fmt(_family_total(metrics, 'provstore_nodes_ingested_total'))} nodes,"
        f" {_fmt(_family_total(metrics, 'provstore_edges_ingested_total'))} edges,"
        f" {_fmt(_family_total(metrics, 'provstore_reingest_skipped_total'))} re-ingests skipped)",
    ]
    for name, label in (("provstore_sealed_segments", "sealed segments"),
                        ("provstore_tail_runs", "tail runs"),
                        ("provstore_pool_strings", "interned strings")):
        for series, data in metrics.items():
            if series.split("{", 1)[0] == name \
                    and data.get("type") == "gauge":
                lines.append(f"  {label} now {_fmt(data['value'])}")
                break
    seals = _family_total(metrics, "provstore_segments_sealed_total")
    if seals:
        lines.append(f"  segment seal operations {_fmt(seals)}")
    queries = _family_total(metrics, "provstore_queries_total")
    if queries:
        truncated = _family_total(metrics, "provstore_truncations_total")
        lines.append(
            f"  lineage queries {_fmt(queries)}"
            f" ({_fmt(truncated)} budget-truncated)"
        )
    legacy = _family_total(metrics, "provstore_legacy_artifact_scans_total")
    if legacy:
        lines.append(f"  deprecated O(n-runs) artifact scans {_fmt(legacy)}")
    return lines


def _analysis_panel(metrics: Mapping[str, Any]) -> list[str]:
    """The lint activity summary for :func:`render_report` (empty when
    no ``analysis_*`` series have been recorded)."""
    if not any(series.split("{", 1)[0].startswith("analysis_")
               for series in metrics):
        return []
    by_severity: dict[str, float] = {}
    for series, data in metrics.items():
        if (series.split("{", 1)[0] == "analysis_diagnostics_total"
                and data.get("type") == "counter"):
            label = series.split("{", 1)[1].rstrip("}")
            labels = dict(part.split("=", 1) for part in label.split(","))
            severity = labels.get("severity", "unknown")
            by_severity[severity] = (
                by_severity.get(severity, 0) + data["value"]
            )
    severities = ", ".join(
        f"{_fmt(by_severity[severity])} {severity}"
        for severity in ("error", "warning", "info")
        if severity in by_severity
    ) or "none"
    lines = [
        f"  rule passes {_fmt(_family_total(metrics, 'analysis_runs_total'))},"
        f" diagnostics {_fmt(_family_total(metrics, 'analysis_diagnostics_total'))}"
        f" ({severities})",
        f"  baseline-suppressed "
        f"{_fmt(_family_total(metrics, 'analysis_suppressed_total'))}",
    ]
    code_runs = _family_total(metrics, "analysis_code_runs_total")
    if code_runs:
        lines.append(
            f"  source analyzer: {_fmt(code_runs)} run(s) over"
            f" {_fmt(_family_total(metrics, 'analysis_code_files_total'))} file(s) /"
            f" {_fmt(_family_total(metrics, 'analysis_code_functions_total'))} function(s),"
            f" findings {_fmt(_family_total(metrics, 'analysis_code_findings_total'))}"
        )
    return lines


def _service_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Request-façade activity for :func:`render_report` (empty until a
    ``service_requests_total`` series exists — note the taxonomy
    ``service_measured_availability`` gauge shares the prefix but does
    not come from the façade)."""
    if not any(series.split("{", 1)[0] == "service_requests_total"
               for series in metrics):
        return []
    by_outcome: dict[str, float] = {}
    for series, data in metrics.items():
        if (series.split("{", 1)[0] == "service_requests_total"
                and data.get("type") == "counter"):
            label = series.split("{", 1)[1].rstrip("}")
            labels = dict(part.split("=", 1) for part in label.split(","))
            outcome = labels.get("outcome", "unknown")
            by_outcome[outcome] = by_outcome.get(outcome, 0) + data["value"]
    total = sum(by_outcome.values())
    outcomes = ", ".join(
        f"{_fmt(by_outcome[outcome])} {outcome}"
        for outcome in ("ok", "rejected", "conflict", "error")
        if outcome in by_outcome
    ) or "none"
    lines = [f"  requests {_fmt(total)} ({outcomes})"]
    count = 0
    weighted_sum = 0.0
    latency_max: float | None = None
    for series, data in metrics.items():
        if (series.split("{", 1)[0] == "service_request_seconds"
                and data.get("count")):
            count += data["count"]
            weighted_sum += data["sum"]
            if latency_max is None or data["max"] > latency_max:
                latency_max = data["max"]
    if count:
        lines.append(
            f"  latency mean {_fmt(weighted_sum / count)}s,"
            f" max {_fmt(latency_max)}s over {_fmt(count)} request(s)"
        )
    rejected = _family_total(metrics, "service_admission_rejected_total")
    quota = _family_total(metrics, "service_quota_rejected_total")
    if rejected or quota:
        lines.append(
            f"  shed load: admission {_fmt(rejected)},"
            f" quota {_fmt(quota)}"
        )
    errors = _family_total(metrics, "service_errors_total")
    unexpected = _family_total(metrics, "service_unexpected_errors_total")
    if errors or unexpected:
        lines.append(
            f"  operation errors {_fmt(errors)}"
            f" ({_fmt(unexpected)} unexpected)"
        )
    retries = _family_total(metrics, "service_conflict_retries_total")
    conflicts = _family_total(metrics, "storage_transaction_conflicts_total")
    if retries or conflicts:
        lines.append(
            f"  write conflicts {_fmt(conflicts)}"
            f" (ingest retries {_fmt(retries)})"
        )
    snapshots = _family_total(metrics, "storage_snapshots_total")
    if snapshots:
        lines.append(f"  MVCC snapshots taken {_fmt(snapshots)}")
    abandoned = _family_total(metrics, "storage_rollback_failures_total")
    if abandoned:
        lines.append(
            f"  rollback failures (transactions abandoned) {_fmt(abandoned)}"
        )
    for name in ("service_in_flight", "service_queue_depth"):
        for series, data in metrics.items():
            if series.split("{", 1)[0] == name \
                    and data.get("type") == "gauge":
                lines.append(
                    f"  {name.removeprefix('service_')} now "
                    f"{_fmt(data['value'])}"
                )
                break
    return lines


def _streaming_panel(metrics: Mapping[str, Any]) -> list[str]:
    """Continuous-ingest and incremental-curation activity for
    :func:`render_report` (empty until a ``streaming_*`` series
    exists)."""
    if not any(series.split("{", 1)[0].startswith("streaming_")
               for series in metrics):
        return []
    lines: list[str] = []
    ingested = _family_total(metrics, "streaming_ingested_total")
    rejected = _family_total(metrics, "streaming_rejected_total")
    batches = _family_total(metrics, "streaming_batches_total")
    if ingested or rejected:
        depth = None
        for series, data in metrics.items():
            if series.split("{", 1)[0] == "streaming_buffer_depth" \
                    and data.get("type") == "gauge":
                depth = data["value"]
                break
        lines.append(
            f"  ingested {_fmt(ingested)} record(s) in "
            f"{_fmt(batches)} micro-batch(es), "
            f"{_fmt(rejected)} rejected by backpressure"
            + (f", buffer depth now {_fmt(depth)}"
               if depth is not None else "")
        )
    sweeps = _family_total(metrics, "streaming_sweeps_total")
    if sweeps:
        recomputed = _family_total(
            metrics, "streaming_shards_recomputed_total")
        reused = _family_total(metrics, "streaming_shards_reused_total")
        total_shards = recomputed + reused
        lines.append(
            f"  {_fmt(sweeps)} assessment sweep(s): "
            f"{_fmt(recomputed)} shard(s) recomputed, "
            f"{_fmt(reused)} reused"
            + (f" (dirty fraction {recomputed / total_shards:.1%})"
               if total_shards else "")
        )
    dirty = _family_total(metrics, "streaming_dirty_records_total")
    if dirty:
        lines.append(f"  dirty records observed {_fmt(dirty)}")
    rechecks = _family_total(metrics, "streaming_rechecks_total")
    if rechecks:
        by_reason: dict[str, float] = {}
        for series, data in metrics.items():
            if (series.split("{", 1)[0] == "streaming_rechecks_total"
                    and data.get("type") == "counter" and "{" in series):
                label = series.split("{", 1)[1].rstrip("}")
                labels = dict(
                    part.split("=", 1) for part in label.split(","))
                reason = labels.get("reason", "unknown")
                by_reason[reason] = by_reason.get(reason, 0) + data["value"]
        detail = ", ".join(
            f"{_fmt(by_reason[reason])} {reason}"
            for reason in sorted(by_reason)
        )
        lines.append(
            f"  rechecks enqueued {_fmt(rechecks)}"
            + (f" ({detail})" if detail else "")
        )
    for series in sorted(metrics):
        family = series.split("{", 1)[0]
        data = metrics[series]
        if family.startswith("streaming_window_") \
                and data.get("type") == "window" and data.get("count"):
            lines.append(
                f"  {family.removeprefix('streaming_window_')} lately: "
                f"mean {_fmt(data['mean'])}, last {_fmt(data['last'])} "
                f"over {_fmt(data['count'])} sample(s)"
            )
    return lines


def quality_signals(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Distill a snapshot into quality-manager inputs.

    Returns (every key optional — absent when unobserved):

    * ``measured_availability`` — per-service observed success fraction;
    * ``run_counts`` — runs by final status;
    * ``degraded_fraction`` / ``failure_fraction`` — of finished runs;
    * ``processor_seconds`` — per-processor duration stats;
    * ``last_run_finished`` — simulated finish time of the latest run
      (the raw material for timeliness metrics).
    """
    metrics: Mapping[str, Any] = snapshot.get("metrics", {})
    signals: dict[str, Any] = {}

    availability: dict[str, float] = {}
    for series, data in metrics.items():
        if series.startswith("service_measured_availability{"):
            label = series.split("{", 1)[1].rstrip("}")
            service = dict(
                part.split("=", 1) for part in label.split(",")
            ).get("service", label)
            availability[service] = data["value"]
    if availability:
        signals["measured_availability"] = availability

    run_counts: dict[str, float] = {}
    for series, data in metrics.items():
        if series.startswith("workflow_runs_total{"):
            label = series.split("{", 1)[1].rstrip("}")
            labels = dict(part.split("=", 1) for part in label.split(","))
            status = labels.get("status", "unknown")
            run_counts[status] = run_counts.get(status, 0) + data["value"]
    if run_counts:
        signals["run_counts"] = run_counts
        total = sum(run_counts.values())
        if total:
            signals["degraded_fraction"] = (
                run_counts.get("degraded", 0) / total
            )
            signals["failure_fraction"] = run_counts.get("failed", 0) / total

    processor_seconds: dict[str, dict[str, Any]] = {}
    for series, data in metrics.items():
        if (series.startswith("workflow_processor_seconds{")
                and data.get("count")):
            label = series.split("{", 1)[1].rstrip("}")
            labels = dict(part.split("=", 1) for part in label.split(","))
            processor = labels.get("processor", label)
            processor_seconds[processor] = {
                "count": data["count"],
                "mean": data["mean"],
                "max": data["max"],
                "sum": data["sum"],
            }
    if processor_seconds:
        signals["processor_seconds"] = processor_seconds

    for entry in reversed(
            snapshot.get("events", {}).get("events", ())):
        if entry.get("event") == "run_finished" and entry.get("finished"):
            signals["last_run_finished"] = entry["finished"]
            break
    return signals
