"""Markdown rendering for reports.

The FNJV prototype published its results "in the FNJV web site
environment" (Fig. 2 is a screenshot).  This module is the publishing
half: assessment reports, detection summaries and pipeline reports as
Markdown, ready for a site generator or a notebook.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.assessment import AssessmentReport
from repro.curation.pipeline import PipelineReport
from repro.curation.species_check import SpeciesCheckResult

__all__ = ["report_to_markdown", "check_to_markdown",
           "pipeline_to_markdown", "comparison_to_markdown"]


def report_to_markdown(report: AssessmentReport) -> str:
    """An assessment report as a Markdown section."""
    lines = [f"## Quality assessment — {report.subject}", ""]
    if report.run_id:
        lines.append(f"*Workflow trace: `{report.run_id}`*")
        lines.append("")
    lines.append("| dimension | value | source | method |")
    lines.append("|-----------|-------|--------|--------|")
    for value in report:
        lines.append(
            f"| {value.dimension} | {value.value:.1%} | {value.source} "
            f"| {value.method or '—'} |"
        )
    if report.notes:
        lines.append("")
        for note in report.notes:
            lines.append(f"> {note}")
    return "\n".join(lines)


def check_to_markdown(result: SpeciesCheckResult,
                      max_names: int = 10) -> str:
    """A Fig. 2-style detection panel as Markdown."""
    lines = [
        "## Detection of outdated species names", "",
        "| quantity | value |",
        "|----------|-------|",
        f"| records processed | {result.records_processed:,} |",
        f"| distinct species names | {result.distinct_names:,} |",
        f"| outdated species names | {result.outdated_names:,} "
        f"({result.outdated_fraction:.0%}) |",
        f"| unresolved (service down) | {result.unresolved_names:,} |",
    ]
    updated = sorted(result.updated_names.items())
    if updated:
        lines += ["", "### Updated names", "",
                  "| outdated name | up-to-date name |",
                  "|---------------|-----------------|"]
        for old, new in updated[:max_names]:
            lines.append(f"| *{old}* | *{new}* |")
        if len(updated) > max_names:
            lines.append(f"| … | {len(updated) - max_names} more |")
    return "\n".join(lines)


def pipeline_to_markdown(report: PipelineReport) -> str:
    """Every executed stage's summary as Markdown."""
    lines = ["## Curation pipeline report", ""]
    for stage, summary in report.summary().items():
        lines.append(f"### {stage.replace('_', ' ')}")
        lines.append("")
        lines.append("| key | value |")
        lines.append("|-----|-------|")
        for key, value in summary.items():
            if isinstance(value, Mapping):
                value = f"{len(value)} entries"
            lines.append(f"| {key.replace('_', ' ')} | {value} |")
        lines.append("")
    return "\n".join(lines).rstrip()


def comparison_to_markdown(paper: Mapping[str, Any],
                           measured: Mapping[str, Any],
                           title: str = "paper vs. measured") -> str:
    """The paper-vs-measured rows as a Markdown table."""
    from repro.casestudy.reporting import comparison_table

    lines = [f"## {title}", "",
             "| figure | paper | measured | rel. error |",
             "|--------|-------|----------|------------|"]
    for row in comparison_table(paper, measured):
        error = row.get("relative_error")
        error_text = "—" if error is None else f"{error:.2%}"
        lines.append(
            f"| {row['figure'].replace('_', ' ')} | {row['paper']} "
            f"| {row['measured']} | {error_text} |"
        )
    return "\n".join(lines)
