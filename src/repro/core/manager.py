"""The Data Quality Manager (box C of Fig. 1).

Generates quality information from the three sources the paper names:

(a) the provenance stored by the Provenance Manager (process
    annotations, run traces, observed service behaviour),
(b) the quality attributes added to workflows by the Workflow Adapter
    (``Q(reputation)``, ``Q(availability)``),
(c) external data sources (the Catalogue of Life, for accuracy).

End users interact with it in two ways: ask for the case study's
standard report (:meth:`DataQualityManager.assess_species_check_run` —
the §IV-C numbers), or register their own profiles/metrics and evaluate
them (:meth:`DataQualityManager.evaluate_profile`).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.assessment import (
    AssessmentContext,
    AssessmentReport,
    QualityValue,
)
from repro.core.dimensions import DimensionRegistry, standard_registry
from repro.core.metrics import (
    QualityMetric,
    annotated_metric,
    completeness_metric,
    consistency_metric,
    measured_availability_metric,
    name_accuracy_metric,
)
from repro.core.profile import ProfileEvaluation, QualityProfile
from repro.errors import MetricError, QualityError, UnknownDimensionError
from repro.provenance.repository import ProvenanceRepository

__all__ = ["DataQualityManager"]


class DataQualityManager:
    """The end user's entry point for quality assessment."""

    def __init__(self, provenance: ProvenanceRepository | None = None,
                 dimensions: DimensionRegistry | None = None) -> None:
        self.provenance = provenance
        self.dimensions = dimensions or standard_registry()
        self._profiles: dict[str, QualityProfile] = {}
        self._metrics: dict[str, QualityMetric] = {}
        for metric in (
            name_accuracy_metric(),
            completeness_metric(),
            consistency_metric(),
            measured_availability_metric(),
        ):
            self.register_metric(metric)

    # ------------------------------------------------------------------
    # registration (End User role)
    # ------------------------------------------------------------------

    def register_metric(self, metric: QualityMetric) -> QualityMetric:
        """Register a measurement method; its dimension must exist."""
        if metric.dimension not in self.dimensions:
            raise UnknownDimensionError(
                f"metric {metric.name!r} targets unregistered dimension "
                f"{metric.dimension!r}"
            )
        self._metrics[metric.name] = metric
        return metric

    def metric(self, name: str) -> QualityMetric:
        try:
            return self._metrics[name]
        except KeyError:
            raise QualityError(f"no metric {name!r} registered") from None

    def metric_names(self) -> list[str]:
        return sorted(self._metrics)

    def register_profile(self, profile: QualityProfile) -> QualityProfile:
        for goal in profile.goals:
            if goal.metric.dimension not in self.dimensions:
                raise UnknownDimensionError(
                    f"profile {profile.name!r} uses unregistered dimension "
                    f"{goal.metric.dimension!r}"
                )
        self._profiles[profile.name] = profile
        return profile

    def profile(self, name: str) -> QualityProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise QualityError(f"no profile {name!r} registered") from None

    def profile_names(self) -> list[str]:
        return sorted(self._profiles)

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------

    def context_for_run(self, run_id: str, collection=None,
                        catalogue=None,
                        extras: Mapping | None = None) -> AssessmentContext:
        """Build a context around one captured run."""
        if self.provenance is None:
            raise QualityError(
                "manager has no provenance repository attached"
            )
        trace = self.provenance.trace_for(run_id)
        return AssessmentContext(
            collection=collection,
            provenance=self.provenance,
            run_id=run_id,
            workflow_output=trace.outputs,
            catalogue=catalogue,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # assessment
    # ------------------------------------------------------------------

    def assess_species_check_run(self, run_id: str,
                                 collection=None) -> AssessmentReport:
        """The case study's standard report (§IV-C).

        Combines (a) provenance, (b) workflow annotations and (c) the
        workflow's own output into accuracy + reputation + availability.
        """
        context = self.context_for_run(run_id, collection=collection)
        report = AssessmentReport(
            subject=context.trace().workflow_name, run_id=run_id
        )
        # (c) accuracy from the workflow output
        report.add(self.metric("species_name_accuracy").measure(context))
        # (b) reputation/availability as annotated via the adapter,
        # carried by (a) the provenance graph
        for dimension in ("reputation", "availability"):
            try:
                report.add(annotated_metric(dimension).measure(context))
            except MetricError as exc:
                report.note(f"{dimension}: {exc}")
        # (a) observed availability, when the run recorded service stats
        try:
            measured = self.metric("measured_availability").measure(context)
        except MetricError:
            pass
        else:
            measured = QualityValue(
                "observed_availability", measured.value, measured.source,
                method=measured.method, details=measured.details,
            )
            report.add(measured)
        details = report.quality_value("accuracy").details
        if {"distinct_names", "outdated_names"} <= set(details):
            report.note(
                f"{details['distinct_names']} distinct species names "
                f"analyzed; {details['outdated_names']} outdated"
            )
        return report

    def assess_operations(self, snapshot: Mapping,
                          as_of=None,
                          horizon_seconds: float = 7 * 24 * 3600.0
                          ) -> AssessmentReport:
        """Quality information from the telemetry layer (an *external
        source* in the paper's taxonomy).

        ``snapshot`` is a :meth:`repro.telemetry.Telemetry.snapshot`
        dict.  The report carries the availability each service
        *measured* at runtime (vs. the annotated ``Q(availability)``),
        run reliability (fraction of runs that finished clean — a
        ``degraded`` run is not clean), and, when ``as_of`` is given, a
        timeliness score that decays linearly from the last finished
        run to zero at ``horizon_seconds``.
        """
        import datetime as _dt

        from repro.telemetry import quality_signals

        signals = quality_signals(snapshot)
        report = AssessmentReport(subject="operations (telemetry)")
        availability = signals.get("measured_availability", {})
        for service, value in sorted(availability.items()):
            dimension = ("observed_availability" if len(availability) == 1
                         else f"observed_availability ({service})")
            report.add(QualityValue(
                dimension, value, "external",
                method="telemetry: successes / calls",
                details={"service": service},
            ))
        run_counts = signals.get("run_counts")
        if run_counts:
            total = sum(run_counts.values())
            clean = run_counts.get("completed", 0)
            report.add(QualityValue(
                "reliability", clean / total if total else 1.0, "external",
                method="telemetry: completed runs / all runs "
                       "(degraded runs are not clean)",
                details={"run_counts": dict(run_counts)},
            ))
        last_finished = signals.get("last_run_finished")
        if as_of is not None and last_finished is not None:
            finished = _dt.datetime.fromisoformat(last_finished)
            age = max(0.0, (as_of - finished).total_seconds())
            report.add(QualityValue(
                "timeliness", max(0.0, 1.0 - age / horizon_seconds),
                "external",
                method="telemetry: linear decay since last finished run",
                details={"last_run_finished": last_finished,
                         "age_seconds": age,
                         "horizon_seconds": horizon_seconds},
            ))
        if "processor_seconds" in signals:
            slowest = max(signals["processor_seconds"].items(),
                          key=lambda item: item[1]["sum"])
            report.note(
                f"slowest processor: {slowest[0]} "
                f"({slowest[1]['sum']:.2f}s simulated over "
                f"{slowest[1]['count']} run(s))"
            )
        if not len(report):
            report.note("telemetry snapshot carried no quality signals")
        return report

    def assess_preservation(self, federation,
                            site_loss_probability: float = 0.05
                            ) -> AssessmentReport:
        """Quality information from the federated vault (a *computed*
        source): the cost/durability trade each preservation level
        bought.

        ``federation`` is a
        :class:`~repro.archive.federation.FederatedVault` (anything
        with its ``durability_report``).  Per configured level the
        report carries the modeled **durability** (P(object survives)
        under independent site loss) and a **storage efficiency** score
        — the replica overhead that would buy the same durability,
        relative to what the level's scheme actually spends (1.0 means
        the scheme is at least as cheap as plain replication; the
        erasure levels typically clamp there, which is the point).
        """
        document = federation.durability_report(site_loss_probability)
        report = AssessmentReport(subject="preservation (federation)")
        for level, entry in sorted(document["levels"].items()):
            scheme = entry["scheme"]
            kind = scheme["kind"]
            label = (f"{scheme.get('copies')} replicas"
                     if kind == "full_replica"
                     else f"erasure {scheme.get('k')}-of-{scheme.get('n')}")
            report.add(QualityValue(
                f"durability (level {level})", entry["durability"],
                "computed",
                method=f"{label} under independent site loss "
                       f"p={document['site_loss_probability']}",
                details={"scheme": dict(scheme),
                         "overhead_factor": entry["overhead_factor"]},
            ))
            overhead = entry["overhead_factor"]
            efficiency = (min(1.0, entry["equivalent_replica_overhead"]
                              / overhead) if overhead else 0.0)
            report.add(QualityValue(
                f"storage_efficiency (level {level})", efficiency,
                "computed",
                method="equivalent replica overhead / actual overhead "
                       "(clamped to 1)",
                details={
                    "overhead_factor": overhead,
                    "equivalent_replica_copies":
                        entry["equivalent_replica_copies"],
                },
            ))
        for kind, bucket in sorted(document["storage_cost"].items()):
            report.note(
                f"{kind}: {bucket['objects']} object(s), "
                f"{bucket['logical_bytes']} logical bytes stored as "
                f"{bucket['stored_bytes']} fragment bytes "
                f"(x{bucket['overhead_factor']})"
            )
        if not document["storage_cost"]:
            report.note("the federation holds no objects yet")
        return report

    def assess_collection(self, collection, catalogue=None,
                          extras: Mapping | None = None) -> AssessmentReport:
        """Direct (no-run) assessment of a collection: accuracy against
        the catalogue plus completeness and consistency."""
        context = AssessmentContext(collection=collection,
                                    catalogue=catalogue, extras=extras)
        report = AssessmentReport(subject=collection.name)
        for name in ("field_completeness", "domain_consistency"):
            report.add(self.metric(name).measure(context))
        if catalogue is not None:
            report.add(self.metric("species_name_accuracy").measure(context))
        return report

    def evaluate_profile(self, profile_name: str,
                         context: AssessmentContext) -> ProfileEvaluation:
        """Evaluate a registered profile against ``context``."""
        return self.profile(profile_name).evaluate(context)

    # ------------------------------------------------------------------
    # dimension registration passthrough
    # ------------------------------------------------------------------

    def define_dimension(self, name: str, category: str = "intrinsic",
                         description: str = ""):
        """End users may add dimensions before registering metrics on
        them."""
        return self.dimensions.define(name, category, description)
