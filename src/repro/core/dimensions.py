"""Quality dimensions.

"A *quality dimension* can be defined as a set of data quality attributes
that allow to represent a particular characteristic of quality."

The registry ships the dimensions the literature cites most (accuracy,
completeness, timeliness, consistency) plus the provenance-borne ones
the paper uses (reputation, availability) and the simulation-oriented
ones it mentions (correctness, reliability, usability).  End users add
their own — quality "depends on the users and context of use".
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import QualityError, UnknownDimensionError

__all__ = ["QualityDimension", "DimensionRegistry", "standard_registry"]

_CATEGORIES = ("intrinsic", "contextual", "representational",
               "accessibility")


class QualityDimension:
    """One dimension of quality.

    ``category`` follows the classic Wang & Strong grouping.  All
    dimension values in this library live in ``[0, 1]`` with higher
    being better; dimensions whose natural reading is inverse (e.g.
    *staleness*) should be registered in their positive form
    (*timeliness*).
    """

    __slots__ = ("name", "category", "description")

    def __init__(self, name: str, category: str = "intrinsic",
                 description: str = "") -> None:
        if not name or not name.replace("_", "").isalnum():
            raise QualityError(f"bad dimension name {name!r}")
        if category not in _CATEGORIES:
            raise QualityError(
                f"dimension {name!r}: unknown category {category!r} "
                f"(expected one of {_CATEGORIES})"
            )
        self.name = name
        self.category = category
        self.description = description

    def __repr__(self) -> str:
        return f"QualityDimension({self.name}, {self.category})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QualityDimension):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)


_STANDARD: tuple[QualityDimension, ...] = (
    QualityDimension(
        "accuracy", "intrinsic",
        "degree to which values are correct with respect to an "
        "authoritative reference (the paper: % of up-to-date names)"),
    QualityDimension(
        "completeness", "contextual",
        "degree to which required metadata fields are filled"),
    QualityDimension(
        "consistency", "intrinsic",
        "degree to which values respect domain rules and do not "
        "contradict each other"),
    QualityDimension(
        "timeliness", "contextual",
        "degree to which the metadata reflects current knowledge"),
    QualityDimension(
        "reputation", "intrinsic",
        "trustworthiness of the data source, as judged by experts"),
    QualityDimension(
        "availability", "accessibility",
        "fraction of the time the source can actually be reached"),
    QualityDimension(
        "reliability", "intrinsic",
        "degree to which a process produces the same correct result"),
    QualityDimension(
        "correctness", "intrinsic",
        "degree to which a process implements its specification"),
    QualityDimension(
        "usability", "representational",
        "ease with which consumers can interpret and use the data"),
    QualityDimension(
        "believability", "intrinsic",
        "degree to which the data is regarded as true and credible"),
)


class DimensionRegistry:
    """The set of dimensions known to one deployment."""

    def __init__(self, dimensions: Iterator[QualityDimension] | tuple = ()) -> None:
        self._dimensions: dict[str, QualityDimension] = {}
        for dimension in dimensions:
            self.register(dimension)

    def register(self, dimension: QualityDimension) -> QualityDimension:
        """Add (or replace) a dimension."""
        self._dimensions[dimension.name] = dimension
        return dimension

    def define(self, name: str, category: str = "intrinsic",
               description: str = "") -> QualityDimension:
        """Convenience: create and register in one step."""
        return self.register(QualityDimension(name, category, description))

    def get(self, name: str) -> QualityDimension:
        try:
            return self._dimensions[name]
        except KeyError:
            raise UnknownDimensionError(
                f"dimension {name!r} is not registered; known: "
                f"{sorted(self._dimensions)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._dimensions

    def __iter__(self) -> Iterator[QualityDimension]:
        for name in sorted(self._dimensions):
            yield self._dimensions[name]

    def __len__(self) -> int:
        return len(self._dimensions)

    def names(self) -> list[str]:
        return sorted(self._dimensions)

    def by_category(self, category: str) -> list[QualityDimension]:
        return [d for d in self if d.category == category]

    def copy(self) -> "DimensionRegistry":
        clone = DimensionRegistry()
        clone._dimensions = dict(self._dimensions)
        return clone


def standard_registry() -> DimensionRegistry:
    """A fresh registry pre-loaded with the standard dimensions."""
    return DimensionRegistry(_STANDARD)
