"""Assessment contexts, values and reports.

"The results of quality assessment are published in two formats: (i) the
workflow trace; and (ii) computed quality attributes."

:class:`AssessmentContext` bundles everything a measurement method may
draw on — the collection, the provenance repository + run, the workflow
output, and external sources.  :class:`AssessmentReport` is the
published result: the trace reference plus a list of
:class:`QualityValue` entries, each remembering *where* its number came
from (provenance, annotation, computation or an external source).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.errors import QualityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.trace import WorkflowTrace

__all__ = ["QualityValue", "AssessmentContext", "AssessmentReport"]

_SOURCES = ("provenance", "annotation", "computed", "external")


class QualityValue:
    """One assessed quality number and its pedigree."""

    __slots__ = ("dimension", "value", "source", "method", "details")

    def __init__(self, dimension: str, value: float, source: str,
                 method: str = "", details: Mapping[str, Any] | None = None) -> None:
        if source not in _SOURCES:
            raise QualityError(f"unknown value source {source!r}")
        if not 0.0 <= value <= 1.0:
            raise QualityError(
                f"quality value {dimension}={value} outside [0, 1]"
            )
        self.dimension = dimension
        self.value = float(value)
        self.source = source
        self.method = method
        self.details = dict(details or {})

    def __repr__(self) -> str:
        return (
            f"QualityValue({self.dimension}={self.value:.3f} "
            f"[{self.source}])"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "dimension": self.dimension,
            "value": self.value,
            "source": self.source,
            "method": self.method,
            "details": dict(self.details),
        }


class AssessmentContext:
    """Everything a metric may consult.

    All members are optional; a metric that needs an absent member raises
    :class:`~repro.errors.MetricError` with a clear message, so profile
    evaluation reports *which* inputs are missing instead of guessing.
    """

    def __init__(self,
                 collection: "SoundCollection | None" = None,
                 provenance: "ProvenanceRepository | None" = None,
                 run_id: str | None = None,
                 workflow_output: Mapping[str, Any] | None = None,
                 catalogue: "CatalogueOfLife | None" = None,
                 extras: Mapping[str, Any] | None = None) -> None:
        self.collection = collection
        self.provenance = provenance
        self.run_id = run_id
        self.workflow_output = dict(workflow_output or {})
        self.catalogue = catalogue
        self.extras = dict(extras or {})

    def trace(self) -> "WorkflowTrace":
        if self.provenance is None or self.run_id is None:
            raise QualityError("context has no provenance run to consult")
        return self.provenance.trace_for(self.run_id)

    def process_annotations(self) -> dict[str, dict[str, Any]]:
        """Quality annotations per process, from the provenance graph."""
        if self.provenance is None or self.run_id is None:
            return {}
        return self.provenance.process_annotations(self.run_id)

    def annotated_value(self, dimension: str) -> float | None:
        """The value of ``dimension`` across the run's process
        annotations; when several processes declare it, the *minimum*
        wins (a chain is as good as its weakest link)."""
        values = [
            float(quality[dimension])
            for quality in self.process_annotations().values()
            if dimension in quality
        ]
        return min(values) if values else None


class AssessmentReport:
    """The published assessment: trace reference + quality attributes."""

    def __init__(self, subject: str, run_id: str | None = None) -> None:
        self.subject = subject
        self.run_id = run_id
        self._values: dict[str, QualityValue] = {}
        self.notes: list[str] = []

    def add(self, value: QualityValue) -> None:
        self._values[value.dimension] = value

    def note(self, text: str) -> None:
        self.notes.append(text)

    def __contains__(self, dimension: str) -> bool:
        return dimension in self._values

    def __iter__(self) -> Iterator[QualityValue]:
        for dimension in sorted(self._values):
            yield self._values[dimension]

    def __len__(self) -> int:
        return len(self._values)

    def value(self, dimension: str) -> float:
        try:
            return self._values[dimension].value
        except KeyError:
            raise QualityError(
                f"report has no value for dimension {dimension!r}"
            ) from None

    def quality_value(self, dimension: str) -> QualityValue:
        try:
            return self._values[dimension]
        except KeyError:
            raise QualityError(
                f"report has no value for dimension {dimension!r}"
            ) from None

    def as_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "run_id": self.run_id,
            "values": [value.to_dict() for value in self],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """A human-readable report, §IV-C style."""
        lines = [f"Quality assessment — {self.subject}"]
        if self.run_id:
            lines.append(f"workflow trace: {self.run_id}")
        lines.append("-" * 56)
        for value in self:
            lines.append(
                f"{value.dimension:<22} {value.value:6.1%}   "
                f"({value.source}{': ' + value.method if value.method else ''})"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{v.dimension}={v.value:.2f}" for v in self
        )
        return f"AssessmentReport({self.subject}: {inner})"
