"""Quality tracking over time.

"quality assessment must be a continuous task, as long as users deem
the data to be useful — i.e., this task is needed throughout the
preservation life cycle."

The :class:`QualityLedger` persists every assessment report (on the
storage engine) together with the *assessment year*, so curators can
ask how each dimension evolved across re-curations — the 2011 vs 2013
story of §IV-B, as data.  :meth:`QualityLedger.trend` classifies a
dimension's trajectory and :meth:`QualityLedger.degrading_dimensions`
lists what needs attention.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.assessment import AssessmentReport, QualityValue
from repro.errors import QualityError
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct

__all__ = ["QualityLedger", "TrendPoint"]

_TABLE = "quality_ledger"


class TrendPoint:
    """One (year, value) observation of one dimension."""

    __slots__ = ("year", "value", "run_id")

    def __init__(self, year: int, value: float,
                 run_id: str | None = None) -> None:
        self.year = year
        self.value = value
        self.run_id = run_id

    def __repr__(self) -> str:
        return f"TrendPoint({self.year}: {self.value:.3f})"


class QualityLedger:
    """Persistent history of assessments for one subject."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database or Database("quality_ledger")
        if not self.database.has_table(_TABLE):
            self.database.create_table(TableSchema(_TABLE, [
                Column("entry_id", ct.INTEGER),
                Column("subject", ct.TEXT, nullable=False),
                Column("dimension", ct.TEXT, nullable=False),
                Column("value", ct.REAL, nullable=False,
                       check=lambda v: 0.0 <= v <= 1.0),
                Column("source", ct.TEXT, default=""),
                Column("assessed_year", ct.INTEGER, nullable=False),
                Column("run_id", ct.TEXT),
            ], primary_key="entry_id"))
            self.database.create_index(_TABLE, "subject", "hash")
            self.database.create_index(_TABLE, "dimension", "hash")
        self._next_id = self.database.count(_TABLE) + 1

    def __len__(self) -> int:
        return self.database.count(_TABLE)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def record(self, report: AssessmentReport, assessed_year: int) -> int:
        """Persist every value of ``report``; returns entries written."""
        written = 0
        for value in report:
            self.database.insert(_TABLE, {
                "entry_id": self._next_id,
                "subject": report.subject,
                "dimension": value.dimension,
                "value": value.value,
                "source": value.source,
                "assessed_year": assessed_year,
                "run_id": report.run_id,
            })
            self._next_id += 1
            written += 1
        return written

    def record_value(self, subject: str, value: QualityValue,
                     assessed_year: int, run_id: str | None = None) -> None:
        self.database.insert(_TABLE, {
            "entry_id": self._next_id,
            "subject": subject,
            "dimension": value.dimension,
            "value": value.value,
            "source": value.source,
            "assessed_year": assessed_year,
            "run_id": run_id,
        })
        self._next_id += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def subjects(self) -> list[str]:
        return sorted({
            row["subject"]
            for row in self.database.query(_TABLE).select("subject").all()
        })

    def dimensions(self, subject: str) -> list[str]:
        rows = self.database.query(_TABLE).where(
            col("subject") == subject).select("dimension").distinct().all()
        return sorted(row["dimension"] for row in rows)

    def series(self, subject: str, dimension: str) -> list[TrendPoint]:
        """Chronological observations of one dimension."""
        rows = self.database.query(_TABLE).where(
            (col("subject") == subject) & (col("dimension") == dimension)
        ).order_by("assessed_year").order_by("entry_id").all()
        return [
            TrendPoint(row["assessed_year"], row["value"], row["run_id"])
            for row in rows
        ]

    def latest(self, subject: str, dimension: str) -> TrendPoint:
        points = self.series(subject, dimension)
        if not points:
            raise QualityError(
                f"no assessments of {dimension!r} for {subject!r}"
            )
        return points[-1]

    # ------------------------------------------------------------------
    # trends
    # ------------------------------------------------------------------

    def trend(self, subject: str, dimension: str,
              tolerance: float = 0.005) -> str:
        """``"improving"`` / ``"degrading"`` / ``"stable"`` /
        ``"insufficient_data"`` over the recorded window."""
        points = self.series(subject, dimension)
        if len(points) < 2:
            return "insufficient_data"
        delta = points[-1].value - points[0].value
        if delta > tolerance:
            return "improving"
        if delta < -tolerance:
            return "degrading"
        return "stable"

    def degrading_dimensions(self, subject: str) -> list[str]:
        """The continuous-assessment alarm list."""
        return [
            dimension for dimension in self.dimensions(subject)
            if self.trend(subject, dimension) == "degrading"
        ]

    def history(self, subject: str) -> Iterator[dict]:
        """All rows for one subject, chronological."""
        yield from self.database.query(_TABLE).where(
            col("subject") == subject
        ).order_by("assessed_year").order_by("entry_id").all()
