"""Table I: the four preservation models, as executable policy.

| Level | Preservation model                                | Use case              |
|-------|---------------------------------------------------|-----------------------|
| 1     | Provide additional documentation                  | publication search    |
| 2     | Preserve the data in a simplified format          | outreach, training    |
| 3     | Preserve the analysis-level software and data fmt | full analysis         |
| 4     | Preserve reconstruction software and basic data   | full potential        |

:func:`archive_collection` builds a :class:`PreservationPackage` at a
chosen level; the package knows what it contains, what questions it can
still answer (:meth:`PreservationPackage.can_answer`) and what it costs
to store — the capability/cost trade Table I describes, measured by
bench E4.
"""

from __future__ import annotations

import enum
import json
from typing import TYPE_CHECKING, Any

from repro.errors import QualityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sounds.collection import SoundCollection

__all__ = ["PreservationLevel", "PreservationPolicy",
           "PreservationPackage", "archive_collection", "CAPABILITIES"]


class PreservationLevel(enum.IntEnum):
    """Table I's four models, least to most complete."""

    DOCUMENTATION = 1
    SIMPLIFIED_DATA = 2
    ANALYSIS_LEVEL = 3
    FULL_REPRODUCTION = 4

    @property
    def use_case(self) -> str:
        return {
            PreservationLevel.DOCUMENTATION:
                "publication-related information search",
            PreservationLevel.SIMPLIFIED_DATA:
                "outreach, simple training analyses",
            PreservationLevel.ANALYSIS_LEVEL:
                "full scientific analysis based on existing reconstruction",
            PreservationLevel.FULL_REPRODUCTION:
                "full potential of the experimental data",
        }[self]


#: question kind -> minimum level able to answer it
CAPABILITIES: dict[str, PreservationLevel] = {
    "cite_the_dataset": PreservationLevel.DOCUMENTATION,
    "describe_fields": PreservationLevel.DOCUMENTATION,
    "browse_records": PreservationLevel.SIMPLIFIED_DATA,
    "teach_with_sample": PreservationLevel.SIMPLIFIED_DATA,
    "query_by_species": PreservationLevel.ANALYSIS_LEVEL,
    "recompute_quality": PreservationLevel.ANALYSIS_LEVEL,
    "rerun_curation_workflow": PreservationLevel.FULL_REPRODUCTION,
    "audit_provenance": PreservationLevel.FULL_REPRODUCTION,
}

#: the simplified-format projection (level 2): the fields outreach needs
_SIMPLIFIED_FIELDS = ("record_id", "species", "country", "state",
                      "collect_date", "habitat")


class PreservationPolicy:
    """A scientist's preservation decision: level + intended lifetime."""

    def __init__(self, level: PreservationLevel,
                 lifetime_years: int = 30) -> None:
        if lifetime_years <= 0:
            raise QualityError("lifetime must be positive")
        self.level = PreservationLevel(level)
        self.lifetime_years = lifetime_years

    def __repr__(self) -> str:
        return (
            f"PreservationPolicy(level={int(self.level)}, "
            f"lifetime={self.lifetime_years}y)"
        )


class PreservationPackage:
    """What actually gets archived at one level."""

    def __init__(self, level: PreservationLevel, subject: str,
                 contents: dict[str, Any]) -> None:
        self.level = level
        self.subject = subject
        self.contents = contents

    def __repr__(self) -> str:
        return (
            f"PreservationPackage({self.subject}, level={int(self.level)}, "
            f"{self.size_bytes():,} bytes)"
        )

    def size_bytes(self) -> int:
        """Serialized size — the storage cost axis of Table I."""
        return len(json.dumps(self.contents, sort_keys=True, default=str))

    def component_names(self) -> list[str]:
        return sorted(self.contents)

    def can_answer(self, question: str) -> bool:
        """Whether this package suffices for ``question`` (a key of
        :data:`CAPABILITIES`)."""
        try:
            needed = CAPABILITIES[question]
        except KeyError:
            raise QualityError(f"unknown question kind {question!r}") from None
        return self.level >= needed

    def capability_profile(self) -> dict[str, bool]:
        return {
            question: self.can_answer(question)
            for question in sorted(CAPABILITIES)
        }


def archive_collection(
    collection: "SoundCollection",
    level: PreservationLevel,
    workflows: "WorkflowRepository | None" = None,
    provenance: "ProvenanceRepository | None" = None,
    documentation: str = "",
) -> PreservationPackage:
    """Build the preservation package for ``collection`` at ``level``.

    * Level 1 stores documentation and the field schema only.
    * Level 2 adds the records projected to a simplified format.
    * Level 3 adds the full records and the workflow descriptions
      (the "analysis-level software").
    * Level 4 adds the provenance (the "reconstruction" layer: with the
      traces and graphs, every curation run can be re-derived).
    """
    from repro.sounds.fields import FIELDS  # local import: cycle guard

    level = PreservationLevel(level)
    contents: dict[str, Any] = {
        "documentation": documentation or (
            f"Animal sound collection {collection.name!r}; "
            f"{len(collection)} records."
        ),
        "schema": [
            {"name": spec.name, "group": spec.group,
             "type": spec.type.name, "description": spec.description}
            for spec in FIELDS
        ],
    }
    if level >= PreservationLevel.SIMPLIFIED_DATA:
        contents["simplified_records"] = [
            {field: row.get(field) for field in _SIMPLIFIED_FIELDS}
            for row in collection.rows()
        ]
    if level >= PreservationLevel.ANALYSIS_LEVEL:
        contents["records"] = list(collection.rows())
        if workflows is not None:
            contents["workflow_documents"] = {
                name: [
                    {"version": version}
                    for version in workflows.versions(name)
                ]
                for name in workflows.names()
            }
            contents["workflows"] = {
                name: workflows.load(name).to_dict()
                for name in workflows.names()
            }
    if level >= PreservationLevel.FULL_REPRODUCTION and provenance is not None:
        contents["provenance"] = {
            run_id: {
                "trace": provenance.trace_for(run_id).to_dict(),
                "graph": provenance.graph_for(run_id).to_dict(),
            }
            for run_id in provenance.run_ids()
        }
    return PreservationPackage(level, collection.name, contents)
