"""Quality decay under evolving knowledge.

"Curated (meta)data that in the past was reliable may have its content
degraded with time.  Degradation is not only physical but new
discoveries may invalidate (meta)data."

:class:`DecaySimulator` plays a collection's species names forward
through the synonym registry's timeline and measures name accuracy at
every year, under three curation policies:

* ``none`` — annotate once, never curate (accuracy decays);
* ``one_shot`` — curate once in a chosen year (accuracy jumps to 1.0,
  then decays again);
* ``periodic`` — curate every *k* years (accuracy saw-tooths near 1.0).

This quantifies the paper's core motivation for *periodic* quality
assessment (ablation A2).
"""

from __future__ import annotations

from typing import Iterable

from repro.taxonomy.catalogue import CatalogueOfLife

__all__ = ["DecaySeries", "DecaySimulator"]


class DecaySeries:
    """Accuracy per year for one policy."""

    def __init__(self, policy: str, years: list[int],
                 accuracy: list[float],
                 curation_years: list[int]) -> None:
        self.policy = policy
        self.years = years
        self.accuracy = accuracy
        self.curation_years = curation_years

    def __repr__(self) -> str:
        return (
            f"DecaySeries({self.policy}, {self.years[0]}-{self.years[-1]}, "
            f"final={self.final_accuracy:.3f})"
        )

    @property
    def final_accuracy(self) -> float:
        return self.accuracy[-1] if self.accuracy else 1.0

    @property
    def minimum_accuracy(self) -> float:
        return min(self.accuracy) if self.accuracy else 1.0

    def accuracy_at(self, year: int) -> float:
        return self.accuracy[self.years.index(year)]

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.years, self.accuracy))


class DecaySimulator:
    """Plays name sets forward through taxonomy evolution."""

    def __init__(self, catalogue: CatalogueOfLife) -> None:
        self.catalogue = catalogue

    def _outdated_fraction(self, names: Iterable[str], year: int) -> float:
        """Fraction of ``names`` with a published change by ``year``."""
        names = list(names)
        if not names:
            return 0.0
        changed = self.catalogue.registry.changed_names(year)
        outdated = sum(1 for name in names if name in changed)
        return outdated / len(names)

    def _curate(self, names: Iterable[str], year: int) -> list[str]:
        """Replace every outdated name by its accepted form as of
        ``year`` (what the species-check workflow + biologists do)."""
        curated = []
        for name in names:
            current, __ = self.catalogue.registry.current_name(name, year)
            curated.append(current)
        return curated

    def run(self, names: Iterable[str], start_year: int, end_year: int,
            policy: str = "none", period_years: int = 2,
            one_shot_year: int | None = None) -> DecaySeries:
        """Simulate ``policy`` over ``[start_year, end_year]``.

        Accuracy in year *y* is the fraction of the (possibly curated)
        names with no change published since their last curation.
        """
        if policy not in ("none", "one_shot", "periodic"):
            raise ValueError(f"unknown curation policy {policy!r}")
        current_names = list(names)
        years: list[int] = []
        accuracy: list[float] = []
        curated_in: list[int] = []
        for year in range(start_year, end_year + 1):
            curate_now = (
                (policy == "one_shot" and year == (one_shot_year or start_year))
                or (policy == "periodic"
                    and (year - start_year) % period_years == 0)
            )
            if curate_now:
                current_names = self._curate(current_names, year)
                curated_in.append(year)
            years.append(year)
            accuracy.append(1.0 - self._outdated_fraction(current_names, year))
        return DecaySeries(policy, years, accuracy, curated_in)

    def compare_policies(self, names: Iterable[str], start_year: int,
                         end_year: int, period_years: int = 2,
                         one_shot_year: int | None = None) -> dict[str, DecaySeries]:
        """All three policies over the same window."""
        names = list(names)
        return {
            "none": self.run(names, start_year, end_year, "none"),
            "one_shot": self.run(
                names, start_year, end_year, "one_shot",
                one_shot_year=one_shot_year or start_year,
            ),
            "periodic": self.run(
                names, start_year, end_year, "periodic",
                period_years=period_years,
            ),
        }
