"""User-defined quality profiles (Lemos-style metamodel).

"The input is based on the definition of quality goals and a set [of]
quality metrics, and a set of services that compute these metrics ...
quality can be assessed differently by distinct sets of users, who
tailor metrics according to their quality goals."

A :class:`QualityProfile` is a named set of :class:`QualityGoal` items.
Each goal binds a metric to a weight and an acceptance threshold.
Evaluating a profile against an :class:`AssessmentContext` yields a
:class:`ProfileEvaluation`: per-goal values, pass/fail against the
thresholds and the weighted overall score.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.assessment import AssessmentContext, QualityValue
from repro.core.metrics import QualityMetric
from repro.errors import MetricError, ProfileError

__all__ = ["QualityGoal", "QualityProfile", "ProfileEvaluation", "GoalOutcome"]


class QualityGoal:
    """One goal: a metric, its importance and its acceptance bar."""

    __slots__ = ("metric", "weight", "threshold", "required")

    def __init__(self, metric: QualityMetric, weight: float = 1.0,
                 threshold: float = 0.0, required: bool = False) -> None:
        if weight <= 0:
            raise ProfileError(f"goal {metric.name!r}: weight must be > 0")
        if not 0.0 <= threshold <= 1.0:
            raise ProfileError(
                f"goal {metric.name!r}: threshold outside [0, 1]"
            )
        self.metric = metric
        self.weight = weight
        self.threshold = threshold
        self.required = required

    def __repr__(self) -> str:
        return (
            f"QualityGoal({self.metric.name}, weight={self.weight}, "
            f"threshold={self.threshold})"
        )


class GoalOutcome:
    """One goal's evaluated result."""

    __slots__ = ("goal", "value", "passed", "error")

    def __init__(self, goal: QualityGoal, value: QualityValue | None,
                 error: str | None = None) -> None:
        self.goal = goal
        self.value = value
        self.error = error
        if value is None:
            self.passed = False
        else:
            self.passed = value.value >= goal.threshold

    def __repr__(self) -> str:
        if self.value is None:
            return f"GoalOutcome({self.goal.metric.name}: ERROR {self.error})"
        flag = "pass" if self.passed else "FAIL"
        return (
            f"GoalOutcome({self.goal.metric.name}: "
            f"{self.value.value:.3f} {flag})"
        )


class ProfileEvaluation:
    """The result of evaluating one profile."""

    def __init__(self, profile_name: str,
                 outcomes: list[GoalOutcome]) -> None:
        self.profile_name = profile_name
        self.outcomes = outcomes

    def __iter__(self) -> Iterator[GoalOutcome]:
        return iter(self.outcomes)

    @property
    def overall_score(self) -> float:
        """Weighted mean over goals that produced a value."""
        weighted = 0.0
        total_weight = 0.0
        for outcome in self.outcomes:
            if outcome.value is not None:
                weighted += outcome.goal.weight * outcome.value.value
                total_weight += outcome.goal.weight
        if total_weight == 0:
            return 0.0
        return weighted / total_weight

    @property
    def acceptable(self) -> bool:
        """All required goals measured and above their thresholds."""
        for outcome in self.outcomes:
            if outcome.goal.required and not outcome.passed:
                return False
        return True

    @property
    def unmeasured(self) -> list[str]:
        """Metric names that could not be computed (with the reason kept
        on the outcome) — "not all quality dimensions requested by the
        end user may be available"."""
        return [
            outcome.goal.metric.name for outcome in self.outcomes
            if outcome.value is None
        ]

    def outcome_for(self, metric_name: str) -> GoalOutcome:
        for outcome in self.outcomes:
            if outcome.goal.metric.name == metric_name:
                return outcome
        raise ProfileError(f"no goal for metric {metric_name!r}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile_name,
            "overall_score": self.overall_score,
            "acceptable": self.acceptable,
            "goals": [
                {
                    "metric": outcome.goal.metric.name,
                    "dimension": outcome.goal.metric.dimension,
                    "weight": outcome.goal.weight,
                    "threshold": outcome.goal.threshold,
                    "value": None if outcome.value is None
                    else outcome.value.value,
                    "passed": outcome.passed,
                    "error": outcome.error,
                }
                for outcome in self.outcomes
            ],
        }

    def render(self) -> str:
        lines = [
            f"Profile {self.profile_name!r}: "
            f"score {self.overall_score:.1%} "
            f"({'acceptable' if self.acceptable else 'NOT acceptable'})"
        ]
        for outcome in self.outcomes:
            if outcome.value is None:
                lines.append(
                    f"  {outcome.goal.metric.name:<28} unavailable "
                    f"({outcome.error})"
                )
            else:
                flag = "ok" if outcome.passed else "BELOW THRESHOLD"
                lines.append(
                    f"  {outcome.goal.metric.name:<28} "
                    f"{outcome.value.value:6.1%}  {flag}"
                )
        return "\n".join(lines)


class QualityProfile:
    """A named, ordered set of goals belonging to one user/role."""

    def __init__(self, name: str, goals: list[QualityGoal] | None = None,
                 owner: str = "") -> None:
        if not name:
            raise ProfileError("profile needs a name")
        self.name = name
        self.owner = owner
        self._goals: list[QualityGoal] = list(goals or [])
        self._check_unique()

    def _check_unique(self) -> None:
        seen: set[str] = set()
        for goal in self._goals:
            if goal.metric.name in seen:
                raise ProfileError(
                    f"profile {self.name!r}: duplicate metric "
                    f"{goal.metric.name!r}"
                )
            seen.add(goal.metric.name)

    def add_goal(self, metric: QualityMetric, weight: float = 1.0,
                 threshold: float = 0.0,
                 required: bool = False) -> QualityGoal:
        goal = QualityGoal(metric, weight, threshold, required)
        self._goals.append(goal)
        self._check_unique()
        return goal

    @property
    def goals(self) -> tuple[QualityGoal, ...]:
        return tuple(self._goals)

    def dimensions(self) -> list[str]:
        return sorted({goal.metric.dimension for goal in self._goals})

    def evaluate(self, context: AssessmentContext) -> ProfileEvaluation:
        """Measure every goal; metrics that cannot run yield an outcome
        with an error instead of aborting the evaluation."""
        outcomes: list[GoalOutcome] = []
        for goal in self._goals:
            try:
                value = goal.metric.measure(context)
            except MetricError as exc:
                outcomes.append(GoalOutcome(goal, None, error=str(exc)))
            else:
                outcomes.append(GoalOutcome(goal, value))
        return ProfileEvaluation(self.name, outcomes)

    def __repr__(self) -> str:
        return f"QualityProfile({self.name}, {len(self._goals)} goals)"

    def __len__(self) -> int:
        return len(self._goals)
